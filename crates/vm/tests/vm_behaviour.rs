//! Cross-module behaviour tests for the managed runtime: programs,
//! exceptions, inheritance, hooks, and the sandbox.

use pmp_vm::class::NativeCall;
use pmp_vm::hooks::{Dispatcher, Outcome, HOOK_ENTRY, HOOK_EXIT, HOOK_SET};
use pmp_vm::prelude::*;
use pmp_vm::{Limit, VmException};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

fn fresh_vm() -> Vm {
    Vm::new(VmConfig::default())
}

fn math_class() -> ClassDef {
    ClassDef::build("Math")
        // abs(x): x < 0 ? -x : x
        .method("abs", [TypeSig::Int], TypeSig::Int, |b| {
            let neg = b.label();
            b.op(Op::Load(1)).konst(0i64).op(Op::Lt);
            b.jump_if(neg);
            b.op(Op::Load(1)).op(Op::RetVal);
            b.bind(neg);
            b.op(Op::Load(1)).op(Op::Neg).op(Op::RetVal);
        })
        // sum(n): loop accumulating 0..n
        .method("sum", [TypeSig::Int], TypeSig::Int, |b| {
            b.locals(2);
            let top = b.label();
            let done = b.label();
            b.konst(0i64).op(Op::Store(2));
            b.konst(0i64).op(Op::Store(3));
            b.bind(top);
            b.op(Op::Load(3)).op(Op::Load(1)).op(Op::Lt);
            b.jump_if_not(done);
            b.op(Op::Load(2)).op(Op::Load(3)).op(Op::Add).op(Op::Store(2));
            b.op(Op::Load(3)).konst(1i64).op(Op::Add).op(Op::Store(3));
            b.jump(top);
            b.bind(done);
            b.op(Op::Load(2)).op(Op::RetVal);
        })
        // fib(n): recursion through static calls
        .method("fib", [TypeSig::Int], TypeSig::Int, |b| {
            let rec = b.label();
            b.op(Op::Load(1)).konst(2i64).op(Op::Lt);
            b.jump_if_not(rec);
            b.op(Op::Load(1)).op(Op::RetVal);
            b.bind(rec);
            b.op(Op::Load(1)).konst(1i64).op(Op::Sub);
            b.op(Op::CallStatic {
                class: "Math".into(),
                method: "fib".into(),
                argc: 1,
            });
            b.op(Op::Load(1)).konst(2i64).op(Op::Sub);
            b.op(Op::CallStatic {
                class: "Math".into(),
                method: "fib".into(),
                argc: 1,
            });
            b.op(Op::Add).op(Op::RetVal);
        })
        .done()
}

#[test]
fn arithmetic_and_control_flow() {
    let mut vm = fresh_vm();
    vm.register_class(math_class()).unwrap();
    let abs = vm
        .call("Math", "abs", Value::Null, vec![Value::Int(-9)])
        .unwrap();
    assert_eq!(abs, Value::Int(9));
    let sum = vm
        .call("Math", "sum", Value::Null, vec![Value::Int(10)])
        .unwrap();
    assert_eq!(sum, Value::Int(45));
    let fib = vm
        .call("Math", "fib", Value::Null, vec![Value::Int(12)])
        .unwrap();
    assert_eq!(fib, Value::Int(144));
}

#[test]
fn division_by_zero_is_catchable() {
    let mut vm = fresh_vm();
    let class = ClassDef::build("T")
        .method("div", [TypeSig::Int, TypeSig::Int], TypeSig::Int, |b| {
            b.op(Op::Load(1)).op(Op::Load(2)).op(Op::Div).op(Op::RetVal);
        })
        .method("safe_div", [TypeSig::Int, TypeSig::Int], TypeSig::Int, |b| {
            let start = b.label();
            let end = b.label();
            let handler = b.label();
            b.bind(start);
            b.op(Op::Load(1)).op(Op::Load(2)).op(Op::Div).op(Op::RetVal);
            b.bind(end);
            b.bind(handler);
            b.op(Op::Pop);
            b.konst(-1i64).op(Op::RetVal);
            b.guard(start, end, "ArithmeticException", handler);
        })
        .done();
    vm.register_class(class).unwrap();
    let err = vm
        .call("T", "div", Value::Null, vec![1.into(), 0.into()])
        .unwrap_err();
    assert_eq!(
        err.as_exception().unwrap().class.as_ref(),
        "ArithmeticException"
    );
    let v = vm
        .call("T", "safe_div", Value::Null, vec![1.into(), 0.into()])
        .unwrap();
    assert_eq!(v, Value::Int(-1));
}

#[test]
fn explicit_throw_and_typed_handlers() {
    let mut vm = fresh_vm();
    let class = ClassDef::build("T")
        .method("pick", [TypeSig::Int], TypeSig::Str, |b| {
            let start = b.label();
            let end = b.label();
            let h_a = b.label();
            let h_any = b.label();
            let throw_b = b.label();
            b.bind(start);
            b.op(Op::Load(1)).konst(0i64).op(Op::Eq);
            b.jump_if_not(throw_b);
            b.konst("a-message").op(Op::Throw("ErrA".into()));
            b.bind(throw_b);
            b.konst("b-message").op(Op::Throw("ErrB".into()));
            b.bind(end);
            b.bind(h_a);
            b.op(Op::Pop).konst("caught-a").op(Op::RetVal);
            b.bind(h_any);
            // handler receives the message on the stack
            b.op(Op::RetVal);
            b.guard(start, end, "ErrA", h_a);
            b.guard(start, end, "*", h_any);
        })
        .done();
    vm.register_class(class).unwrap();
    let a = vm.call("T", "pick", Value::Null, vec![0.into()]).unwrap();
    assert_eq!(a, Value::str("caught-a"));
    let b = vm.call("T", "pick", Value::Null, vec![1.into()]).unwrap();
    assert_eq!(b, Value::str("b-message"));
}

#[test]
fn exceptions_propagate_through_nested_calls() {
    let mut vm = fresh_vm();
    let class = ClassDef::build("T")
        .method("inner", [], TypeSig::Void, |b| {
            b.konst("boom").op(Op::Throw("Kaboom".into()));
        })
        .method("outer", [], TypeSig::Str, |b| {
            let start = b.label();
            let end = b.label();
            let h = b.label();
            b.bind(start);
            b.op(Op::CallStatic {
                class: "T".into(),
                method: "inner".into(),
                argc: 0,
            });
            b.op(Op::Pop).op(Op::Ret);
            b.bind(end);
            b.bind(h);
            b.op(Op::RetVal);
            b.guard(start, end, "Kaboom", h);
        })
        .done();
    vm.register_class(class).unwrap();
    let v = vm.call("T", "outer", Value::Null, vec![]).unwrap();
    assert_eq!(v, Value::str("boom"));
}

#[test]
fn objects_fields_and_virtual_dispatch() {
    let mut vm = fresh_vm();
    vm.register_class(
        ClassDef::build("Device")
            .field("id", TypeSig::Int)
            .method("describe", [], TypeSig::Str, |b| {
                b.konst("generic device").op(Op::RetVal);
            })
            .method("ident", [], TypeSig::Int, |b| {
                b.op(Op::Load(0))
                    .op(Op::GetField {
                        class: "Device".into(),
                        field: "id".into(),
                    })
                    .op(Op::RetVal);
            })
            .done(),
    )
    .unwrap();
    vm.register_class(
        ClassDef::build("Motor")
            .extends("Device")
            .field("power", TypeSig::Int)
            .method("describe", [], TypeSig::Str, |b| {
                b.konst("motor").op(Op::RetVal);
            })
            .done(),
    )
    .unwrap();

    let motor = vm.new_object("Motor").unwrap();
    let obj = motor.as_ref_id().unwrap();
    vm.set_field(obj, "Motor", "id", Value::Int(7)).unwrap();
    vm.set_field(obj, "Motor", "power", Value::Int(3)).unwrap();

    // Overridden method resolves on the runtime class.
    let desc = vm
        .call("Device", "describe", motor.clone(), vec![])
        .unwrap();
    assert_eq!(desc, Value::str("motor"));
    // Inherited method sees inherited field layout.
    let ident = vm.call("Motor", "ident", motor.clone(), vec![]).unwrap();
    assert_eq!(ident, Value::Int(7));
    assert!(vm.is_subclass(
        vm.class_id("Motor").unwrap(),
        vm.class_id("Device").unwrap()
    ));
    assert!(!vm.is_subclass(
        vm.class_id("Device").unwrap(),
        vm.class_id("Motor").unwrap()
    ));
}

#[test]
fn arrays_and_buffers() {
    let mut vm = fresh_vm();
    let class = ClassDef::build("T")
        .method("rev", [TypeSig::Bytes], TypeSig::Bytes, |b| {
            // Reverse a byte buffer into a new one.
            b.locals(3); // 2: out, 3: i, 4: len
            let top = b.label();
            let done = b.label();
            b.op(Op::Load(1)).op(Op::BufLen).op(Op::Store(4));
            b.op(Op::Load(4)).op(Op::NewBuffer).op(Op::Store(2));
            b.konst(0i64).op(Op::Store(3));
            b.bind(top);
            b.op(Op::Load(3)).op(Op::Load(4)).op(Op::Lt);
            b.jump_if_not(done);
            // out[len-1-i] = in[i]
            b.op(Op::Load(2));
            b.op(Op::Load(4)).konst(1i64).op(Op::Sub).op(Op::Load(3)).op(Op::Sub);
            b.op(Op::Load(1)).op(Op::Load(3)).op(Op::BufGet);
            b.op(Op::BufSet);
            b.op(Op::Load(3)).konst(1i64).op(Op::Add).op(Op::Store(3));
            b.jump(top);
            b.bind(done);
            b.op(Op::Load(2)).op(Op::RetVal);
        })
        .done();
    vm.register_class(class).unwrap();
    let buf = vm.new_buffer(vec![1, 2, 3, 4]);
    let out = vm.call("T", "rev", Value::Null, vec![buf]).unwrap();
    let id = out.as_ref_id().unwrap();
    assert_eq!(vm.heap().buffer_bytes(id).unwrap(), &[4, 3, 2, 1]);

    let arr = vm.new_array(vec![Value::Int(5), Value::str("x")]);
    let id = arr.as_ref_id().unwrap();
    assert_eq!(vm.heap().array_len(id).unwrap(), 2);
    assert_eq!(vm.heap().array_get(id, 1).unwrap(), Value::str("x"));
}

#[test]
fn call_depth_limit_is_enforced() {
    let mut vm = Vm::new(VmConfig {
        max_call_depth: 32,
        ..VmConfig::default()
    });
    let class = ClassDef::build("T")
        .method("spin", [], TypeSig::Void, |b| {
            b.op(Op::CallStatic {
                class: "T".into(),
                method: "spin".into(),
                argc: 0,
            });
            b.op(Op::Pop).op(Op::Ret);
        })
        .done();
    vm.register_class(class).unwrap();
    let err = vm.call("T", "spin", Value::Null, vec![]).unwrap_err();
    assert_eq!(err, VmError::Limit(Limit::CallDepth));
}

#[test]
fn fuel_limits_sandboxed_loops() {
    let mut vm = fresh_vm();
    let class = ClassDef::build("T")
        .method("forever", [], TypeSig::Void, |b| {
            let top = b.label();
            b.bind(top);
            b.jump(top);
        })
        .done();
    vm.register_class(class).unwrap();
    vm.set_fuel(Some(10_000));
    let err = vm.call("T", "forever", Value::Null, vec![]).unwrap_err();
    assert_eq!(err, VmError::Limit(Limit::Fuel));
    vm.set_fuel(None);
}

#[test]
fn sandbox_blocks_sys_ops_without_permission() {
    let mut vm = fresh_vm();
    let class = ClassDef::build("T")
        .method("talk", [], TypeSig::Void, |b| {
            b.konst("hello")
                .op(Op::Sys {
                    name: "print".into(),
                    argc: 1,
                })
                .op(Op::Pop)
                .op(Op::Ret);
        })
        .done();
    vm.register_class(class).unwrap();

    // Full permissions: works.
    vm.call("T", "talk", Value::Null, vec![]).unwrap();
    assert_eq!(vm.take_output(), vec!["hello".to_string()]);

    // Restricted scope: SecurityException.
    let scope = vm.begin_advice(Permissions::none(), None);
    let err = vm.call("T", "talk", Value::Null, vec![]).unwrap_err();
    vm.end_advice(scope);
    assert_eq!(
        err.as_exception().unwrap().class.as_ref(),
        exception_class::SECURITY
    );
}

#[test]
fn native_methods_interoperate_with_bytecode() {
    let mut vm = fresh_vm();
    let counter = Arc::new(AtomicU64::new(0));
    let c2 = counter.clone();
    let class = ClassDef::build("T")
        .native("bump", [], TypeSig::Int, move |_vm, _call: NativeCall| {
            Ok(Value::Int(c2.fetch_add(1, Ordering::SeqCst) as i64))
        })
        .method("bump_twice", [], TypeSig::Int, |b| {
            b.op(Op::CallStatic {
                class: "T".into(),
                method: "bump".into(),
                argc: 0,
            });
            b.op(Op::Pop);
            b.op(Op::CallStatic {
                class: "T".into(),
                method: "bump".into(),
                argc: 0,
            });
            b.op(Op::RetVal);
        })
        .done();
    vm.register_class(class).unwrap();
    let v = vm.call("T", "bump_twice", Value::Null, vec![]).unwrap();
    assert_eq!(v, Value::Int(1));
    assert_eq!(counter.load(Ordering::SeqCst), 2);
}

/// Test dispatcher that records every event and can veto calls.
#[derive(Default)]
struct Recorder {
    events: Mutex<Vec<String>>,
    veto_method: Mutex<Option<String>>,
}

impl Dispatcher for Recorder {
    fn method_entry(
        &self,
        vm: &mut Vm,
        mid: MethodId,
        _this: &Value,
        args: &mut Vec<Value>,
    ) -> Result<(), VmError> {
        let sig = vm.method_sig(mid).to_string();
        self.events.lock().unwrap().push(format!("entry {sig}"));
        if let Some(veto) = &*self.veto_method.lock().unwrap() {
            if sig.contains(veto.as_str()) {
                return Err(VmError::exception("AccessDeniedException", "vetoed"));
            }
        }
        // Demonstrate argument mutation: double the first int arg.
        if let Some(Value::Int(i)) = args.first().cloned() {
            args[0] = Value::Int(i * 2);
        }
        Ok(())
    }

    fn method_exit(
        &self,
        vm: &mut Vm,
        mid: MethodId,
        _this: &Value,
        _args: &[Value],
        outcome: &mut Outcome,
    ) -> Result<(), VmError> {
        let sig = vm.method_sig(mid).to_string();
        self.events
            .lock()
            .unwrap()
            .push(format!("exit {sig} {outcome:?}"));
        if let Outcome::Returned(Value::Int(i)) = outcome {
            *outcome = Outcome::Returned(Value::Int(*i + 1000));
        }
        Ok(())
    }

    fn field_get(
        &self,
        _vm: &mut Vm,
        _fid: FieldId,
        _obj: ObjId,
        _value: &mut Value,
    ) -> Result<(), VmError> {
        Ok(())
    }

    fn field_set(
        &self,
        vm: &mut Vm,
        fid: FieldId,
        _obj: ObjId,
        value: &mut Value,
    ) -> Result<(), VmError> {
        let (class, field) = vm.field_info(fid).unwrap();
        self.events
            .lock()
            .unwrap()
            .push(format!("set {class}.{field} = {value}"));
        Ok(())
    }

    fn exception_throw(
        &self,
        _vm: &mut Vm,
        _site: MethodId,
        exc: &VmException,
    ) -> Result<(), VmError> {
        self.events
            .lock()
            .unwrap()
            .push(format!("throw {}", exc.class));
        Ok(())
    }

    fn exception_catch(
        &self,
        _vm: &mut Vm,
        _site: MethodId,
        exc: &VmException,
    ) -> Result<(), VmError> {
        self.events
            .lock()
            .unwrap()
            .push(format!("catch {}", exc.class));
        Ok(())
    }
}

fn hooked_vm_with_recorder() -> (Vm, Arc<Recorder>) {
    let mut vm = fresh_vm();
    let rec = Arc::new(Recorder::default());
    vm.set_dispatcher(rec.clone());
    vm.register_class(
        ClassDef::build("Svc")
            .field("state", TypeSig::Int)
            .method("twice", [TypeSig::Int], TypeSig::Int, |b| {
                b.op(Op::Load(1)).konst(2i64).op(Op::Mul).op(Op::RetVal);
            })
            .method("store", [TypeSig::Int], TypeSig::Void, |b| {
                b.op(Op::Load(0))
                    .op(Op::Load(1))
                    .op(Op::PutField {
                        class: "Svc".into(),
                        field: "state".into(),
                    })
                    .op(Op::Ret);
            })
            .done(),
    )
    .unwrap();
    (vm, rec)
}

#[test]
fn inactive_hooks_do_not_dispatch() {
    let (mut vm, rec) = hooked_vm_with_recorder();
    let out = vm
        .call("Svc", "twice", Value::Null, vec![Value::Int(5)])
        .unwrap();
    assert_eq!(out, Value::Int(10));
    assert!(rec.events.lock().unwrap().is_empty());
    assert!(vm.stats().hook_checks > 0);
    assert_eq!(vm.stats().advice_dispatches, 0);
}

#[test]
fn entry_and_exit_hooks_fire_and_transform() {
    let (mut vm, rec) = hooked_vm_with_recorder();
    let mid = vm.method_id("Svc", "twice").unwrap();
    vm.hooks().activate_method(mid, HOOK_ENTRY | HOOK_EXIT);
    let out = vm
        .call("Svc", "twice", Value::Null, vec![Value::Int(5)])
        .unwrap();
    // entry doubles the arg (5 -> 10), body doubles (20), exit adds 1000.
    assert_eq!(out, Value::Int(1020));
    let events = rec.events.lock().unwrap();
    assert_eq!(events.len(), 2);
    assert!(events[0].starts_with("entry int Svc.twice(int)"));
    assert!(events[1].starts_with("exit int Svc.twice(int)"));
}

#[test]
fn entry_hook_can_abort_call() {
    let (mut vm, rec) = hooked_vm_with_recorder();
    *rec.veto_method.lock().unwrap() = Some("twice".into());
    let mid = vm.method_id("Svc", "twice").unwrap();
    vm.hooks().activate_method(mid, HOOK_ENTRY);
    let err = vm
        .call("Svc", "twice", Value::Null, vec![Value::Int(5)])
        .unwrap_err();
    assert_eq!(
        err.as_exception().unwrap().class.as_ref(),
        "AccessDeniedException"
    );
}

#[test]
fn field_set_hook_observes_writes() {
    let (mut vm, rec) = hooked_vm_with_recorder();
    let (_, fid) = vm.resolve_field("Svc", "state").unwrap();
    vm.hooks().activate_field(fid, HOOK_SET);
    let obj = vm.new_object("Svc").unwrap();
    vm.call("Svc", "store", obj, vec![Value::Int(42)]).unwrap();
    let events = rec.events.lock().unwrap();
    assert_eq!(events.as_slice(), ["set Svc.state = 42"]);
}

#[test]
fn deactivating_hooks_stops_dispatch() {
    let (mut vm, rec) = hooked_vm_with_recorder();
    let mid = vm.method_id("Svc", "twice").unwrap();
    vm.hooks().activate_method(mid, HOOK_ENTRY | HOOK_EXIT);
    vm.call("Svc", "twice", Value::Null, vec![Value::Int(1)])
        .unwrap();
    vm.hooks().deactivate_method(mid, HOOK_ENTRY | HOOK_EXIT);
    vm.call("Svc", "twice", Value::Null, vec![Value::Int(1)])
        .unwrap();
    assert_eq!(rec.events.lock().unwrap().len(), 2);
}

#[test]
fn hooks_disabled_at_compile_time_never_check() {
    let mut vm = Vm::new(VmConfig::without_hooks());
    let rec = Arc::new(Recorder::default());
    vm.set_dispatcher(rec.clone());
    vm.register_class(
        ClassDef::build("Svc")
            .method("f", [], TypeSig::Int, |b| {
                b.konst(1i64).op(Op::RetVal);
            })
            .done(),
    )
    .unwrap();
    let mid = vm.method_id("Svc", "f").unwrap();
    vm.hooks().activate_method(mid, HOOK_ENTRY | HOOK_EXIT);
    let out = vm.call("Svc", "f", Value::Null, vec![]).unwrap();
    // No stub was compiled in, so even active flags are inert.
    assert_eq!(out, Value::Int(1));
    assert_eq!(vm.stats().hook_checks, 0);
    assert!(rec.events.lock().unwrap().is_empty());
}

#[test]
fn recompilation_toggles_stub_presence() {
    let (mut vm, _rec) = hooked_vm_with_recorder();
    vm.call("Svc", "twice", Value::Null, vec![Value::Int(1)])
        .unwrap();
    assert!(vm.stats().hook_checks > 0);
    vm.reset_stats();
    vm.set_prose_hooks(false);
    vm.call("Svc", "twice", Value::Null, vec![Value::Int(1)])
        .unwrap();
    assert_eq!(vm.stats().hook_checks, 0);
    vm.reset_stats();
    vm.set_prose_hooks(true);
    vm.call("Svc", "twice", Value::Null, vec![Value::Int(1)])
        .unwrap();
    assert!(vm.stats().hook_checks > 0);
}

#[test]
fn exception_joinpoints_fire() {
    let (mut vm, rec) = hooked_vm_with_recorder();
    vm.register_class(
        ClassDef::build("E")
            .method("boom", [], TypeSig::Void, |b| {
                let s = b.label();
                let e = b.label();
                let h = b.label();
                b.bind(s);
                b.konst("x").op(Op::Throw("Kaboom".into()));
                b.bind(e);
                b.bind(h);
                b.op(Op::Pop).op(Op::Ret);
                b.guard(s, e, "*", h);
            })
            .done(),
    )
    .unwrap();
    vm.hooks()
        .activate_exception(pmp_vm::hooks::HOOK_THROW | pmp_vm::hooks::HOOK_CATCH);
    vm.call("E", "boom", Value::Null, vec![]).unwrap();
    let events = rec.events.lock().unwrap();
    assert_eq!(events.as_slice(), ["throw Kaboom", "catch Kaboom"]);
}

#[test]
fn stats_count_invocations_and_ops() {
    let mut vm = fresh_vm();
    vm.register_class(math_class()).unwrap();
    vm.call("Math", "sum", Value::Null, vec![Value::Int(100)])
        .unwrap();
    let stats = vm.stats();
    assert_eq!(stats.invocations, 1);
    assert!(stats.bytecode_ops > 500);
    assert_eq!(stats.compiled_methods, 1);
}

#[test]
fn output_capture_via_print() {
    let mut vm = fresh_vm();
    vm.sys("print", vec![Value::str("a"), Value::Int(1)]).unwrap();
    vm.sys("print", vec![Value::str("b")]).unwrap();
    assert_eq!(vm.take_output(), vec!["a 1".to_string(), "b".to_string()]);
    assert!(vm.take_output().is_empty());
}

#[test]
fn unknown_targets_are_link_errors() {
    let mut vm = fresh_vm();
    assert!(matches!(
        vm.call("Nope", "f", Value::Null, vec![]),
        Err(VmError::Link(_))
    ));
    vm.register_class(ClassDef::build("A").done()).unwrap();
    assert!(matches!(
        vm.call("A", "missing", Value::Null, vec![]),
        Err(VmError::Link(_))
    ));
    // Compile-time resolution failure for bad bytecode.
    vm.register_class(
        ClassDef::build("B")
            .method("bad", [], TypeSig::Void, |b| {
                b.op(Op::New("MissingClass".into())).op(Op::Ret);
            })
            .done(),
    )
    .unwrap();
    assert!(matches!(
        vm.call("B", "bad", Value::Null, vec![]),
        Err(VmError::Link(_))
    ));
}

#[test]
fn arity_mismatch_rejected() {
    let mut vm = fresh_vm();
    vm.register_class(math_class()).unwrap();
    assert!(matches!(
        vm.call("Math", "abs", Value::Null, vec![]),
        Err(VmError::Link(_))
    ));
}

#[test]
fn duplicate_definitions_rejected() {
    let mut vm = fresh_vm();
    vm.register_class(ClassDef::build("A").field("x", TypeSig::Int).done())
        .unwrap();
    assert!(vm.register_class(ClassDef::build("A").done()).is_err());
    assert!(vm
        .register_class(
            ClassDef::build("B")
                .field("x", TypeSig::Int)
                .field("x", TypeSig::Int)
                .done()
        )
        .is_err());
    assert!(vm
        .register_class(ClassDef::build("C").extends("Missing").done())
        .is_err());
}

#[test]
fn string_ops_and_conversions() {
    let mut vm = fresh_vm();
    let class = ClassDef::build("S")
        .method("describe", [TypeSig::Int], TypeSig::Str, |b| {
            b.konst("value=").op(Op::Load(1)).op(Op::Concat).op(Op::RetVal);
        })
        .method("parse", [TypeSig::Str], TypeSig::Int, |b| {
            b.op(Op::Load(1)).op(Op::ToInt).op(Op::RetVal);
        })
        .done();
    vm.register_class(class).unwrap();
    let s = vm
        .call("S", "describe", Value::Null, vec![Value::Int(8)])
        .unwrap();
    assert_eq!(s, Value::str("value=8"));
    let i = vm
        .call("S", "parse", Value::Null, vec![Value::str(" 42 ")])
        .unwrap();
    assert_eq!(i, Value::Int(42));
    let err = vm
        .call("S", "parse", Value::Null, vec![Value::str("nope")])
        .unwrap_err();
    assert_eq!(err.as_exception().unwrap().class.as_ref(), "TypeError");
}
