//! The per-node-cell span factory.

use crate::ctx::TraceCtx;
use crate::flight::FlightRecorder;
use crate::span::{FlightEntry, SpanRecord};
use pmp_telemetry::sync::Mutex;
use std::sync::Arc;

/// A pending first-interception watch: once the node's advice-dispatch
/// counter moves past `baseline`, an `"midas.intercept"` span closes
/// the adaptation chain.
#[derive(Debug)]
struct InterceptWatch {
    parent: TraceCtx,
    detail: String,
    baseline: u64,
}

#[derive(Debug)]
struct TracerInner {
    node: u32,
    seq: u32,
    enabled: bool,
    finished: Vec<SpanRecord>,
    flight: FlightRecorder,
    watches: Vec<InterceptWatch>,
}

/// The span factory owned by one node cell. Cloneable — clones share
/// state, so the platform hands one to the cell's components and keeps
/// another for the barrier drain. Span ids are `(node << 32) | seq`
/// with a per-node sequence starting at 1: no randomness, no clock
/// reads, hence byte-identical traces across execution drivers.
#[derive(Clone, Debug)]
pub struct Tracer {
    inner: Arc<Mutex<TracerInner>>,
}

impl Tracer {
    /// A tracer for `node`, initially disabled (roots and children all
    /// come back [`TraceCtx::NIL`] and nothing is recorded).
    #[must_use]
    pub fn new(node: u32) -> Tracer {
        Tracer {
            inner: Arc::new(Mutex::new(TracerInner {
                node,
                seq: 0,
                enabled: false,
                finished: Vec::new(),
                flight: FlightRecorder::default(),
                watches: Vec::new(),
            })),
        }
    }

    /// Turns span recording on or off. Disabling does not clear
    /// already-recorded spans or the flight ring.
    pub fn set_enabled(&self, on: bool) {
        self.inner.lock().enabled = on;
    }

    /// Whether span recording is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.lock().enabled
    }

    /// The node this tracer stamps spans with.
    #[must_use]
    pub fn node(&self) -> u32 {
        self.inner.lock().node
    }

    fn push(
        inner: &mut TracerInner,
        trace_id: u64,
        parent_id: u64,
        now: u64,
        name: &str,
        detail: &str,
    ) -> TraceCtx {
        inner.seq += 1;
        let span_id = (u64::from(inner.node) << 32) | u64::from(inner.seq);
        let trace_id = if trace_id == 0 { span_id } else { trace_id };
        let rec = SpanRecord {
            trace_id,
            span_id,
            parent_id,
            node: inner.node,
            start: now,
            end: now,
            name: name.to_string(),
            detail: detail.to_string(),
        };
        inner.flight.record(FlightEntry::Span(rec.clone()));
        inner.finished.push(rec);
        TraceCtx { trace_id, span_id }
    }

    /// Starts a new trace rooted at this node. Returns
    /// [`TraceCtx::NIL`] when disabled.
    pub fn root(&self, now: u64, name: &str, detail: &str) -> TraceCtx {
        let mut inner = self.inner.lock();
        if !inner.enabled {
            return TraceCtx::NIL;
        }
        Self::push(&mut inner, 0, 0, now, name, detail)
    }

    /// Records a child span of `parent`. A nil parent yields a nil
    /// child — so a context minted on a node with tracing off
    /// propagates "off" across the wire for free.
    pub fn child(&self, parent: TraceCtx, now: u64, name: &str, detail: &str) -> TraceCtx {
        let mut inner = self.inner.lock();
        if !inner.enabled || parent.is_nil() {
            return TraceCtx::NIL;
        }
        Self::push(&mut inner, parent.trace_id, parent.span_id, now, name, detail)
    }

    /// Mirrors a point event into the flight ring (no span, no id).
    pub fn note(&self, at: u64, name: &str, detail: &str) {
        let mut inner = self.inner.lock();
        if !inner.enabled {
            return;
        }
        inner.flight.record(FlightEntry::Event {
            at,
            name: name.to_string(),
            detail: detail.to_string(),
        });
    }

    /// Arms a first-interception watch under `parent`: the next time
    /// [`Tracer::poll_interception`] observes the advice-dispatch
    /// counter above `baseline`, a `"midas.intercept"` span is
    /// recorded. Nil parents are ignored.
    pub fn watch_interception(&self, parent: TraceCtx, detail: &str, baseline: u64) {
        let mut inner = self.inner.lock();
        if !inner.enabled || parent.is_nil() {
            return;
        }
        inner.watches.push(InterceptWatch {
            parent,
            detail: detail.to_string(),
            baseline,
        });
    }

    /// Checks armed watches against the current advice-dispatch count,
    /// recording `"midas.intercept"` spans (in arming order) for every
    /// watch whose baseline has been passed.
    pub fn poll_interception(&self, now: u64, dispatches: u64) {
        let mut inner = self.inner.lock();
        let fired: Vec<InterceptWatch> = {
            let mut kept = Vec::new();
            let mut fired = Vec::new();
            for w in inner.watches.drain(..) {
                if dispatches > w.baseline {
                    fired.push(w);
                } else {
                    kept.push(w);
                }
            }
            inner.watches = kept;
            fired
        };
        for w in fired {
            Self::push(
                &mut inner,
                w.parent.trace_id,
                w.parent.span_id,
                now,
                "midas.intercept",
                &w.detail,
            );
        }
    }

    /// Number of armed (unfired) interception watches.
    #[must_use]
    pub fn pending_watches(&self) -> usize {
        self.inner.lock().watches.len()
    }

    /// Takes every span finished since the last drain (the barrier
    /// feed for the [`crate::Collector`]).
    #[must_use]
    pub fn drain(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.inner.lock().finished)
    }

    /// Number of finished-but-undrained spans.
    #[must_use]
    pub fn undrained(&self) -> usize {
        self.inner.lock().finished.len()
    }

    /// A copy of the node's flight ring, oldest first.
    #[must_use]
    pub fn flight_snapshot(&self) -> Vec<FlightEntry> {
        self.inner.lock().flight.snapshot()
    }

    /// `(retained, capacity, dropped)` of the flight ring — the
    /// ring-growth oracle's raw numbers.
    #[must_use]
    pub fn flight_stats(&self) -> (usize, usize, u64) {
        let inner = self.inner.lock();
        (
            inner.flight.len(),
            inner.flight.cap(),
            inner.flight.dropped(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_mints_nil_and_records_nothing() {
        let t = Tracer::new(3);
        let root = t.root(10, "midas.publish", "ext/m");
        assert!(root.is_nil());
        assert!(t.drain().is_empty());
        assert!(t.flight_snapshot().is_empty());
    }

    #[test]
    fn ids_are_node_and_sequence() {
        let t = Tracer::new(3);
        t.set_enabled(true);
        let root = t.root(10, "midas.publish", "ext/m");
        assert_eq!(root.span_id, (3u64 << 32) | 1);
        assert_eq!(root.trace_id, root.span_id);
        let child = t.child(root, 10, "midas.sign", "ext/m");
        assert_eq!(child.span_id, (3u64 << 32) | 2);
        assert_eq!(child.trace_id, root.trace_id);
        let spans = t.drain();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].parent_id, root.span_id);
        assert!(t.drain().is_empty(), "drain takes");
        assert_eq!(t.flight_snapshot().len(), 2, "flight keeps a copy");
    }

    #[test]
    fn nil_parent_propagates_off() {
        let t = Tracer::new(1);
        t.set_enabled(true);
        let c = t.child(TraceCtx::NIL, 5, "midas.verify", "");
        assert!(c.is_nil());
        assert!(t.drain().is_empty());
    }

    #[test]
    fn interception_watch_fires_once_past_baseline() {
        let t = Tracer::new(2);
        t.set_enabled(true);
        let root = t.root(0, "midas.publish", "");
        let weave = t.child(root, 40, "midas.weave", "ext/m");
        t.watch_interception(weave, "ext/m", 5);
        let _ = t.drain();
        t.poll_interception(50, 5);
        assert!(t.drain().is_empty(), "at baseline: not fired");
        assert_eq!(t.pending_watches(), 1);
        t.poll_interception(60, 6);
        let spans = t.drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "midas.intercept");
        assert_eq!(spans[0].parent_id, weave.span_id);
        assert_eq!(spans[0].start, 60);
        assert_eq!(t.pending_watches(), 0);
        t.poll_interception(70, 9);
        assert!(t.drain().is_empty(), "a watch fires once");
    }
}
