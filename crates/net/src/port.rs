//! The component-facing network port.
//!
//! Protocol components (discovery, MIDAS, the host wiring) talk to the
//! world through the narrow [`NetPort`] surface: read the clock, send,
//! broadcast, arm a timer. Two implementations exist:
//!
//! * [`Simulator`](crate::Simulator) — the direct path: effects apply
//!   immediately against the global event queue (legacy serial loop,
//!   component unit tests, out-of-band operations such as publishing an
//!   extension between pump calls);
//! * [`PortBuf`] — the sharded path: effects are buffered as
//!   [`NetCmd`]s while a node computes inside an epoch, then merged
//!   into the scheduler in a deterministic `(time, source, seq)` order
//!   at the epoch barrier, so a parallel run inserts exactly the same
//!   events as a serial one.
//!
//! `&mut Simulator` coerces implicitly to `&mut dyn NetPort`, so call
//! sites that own a simulator keep working unchanged.

use crate::clock::{ClockHandle, SimTime};
use crate::node::NodeId;

/// What a protocol component may do to the network.
pub trait NetPort {
    /// Current simulated time as seen by this component.
    fn now(&self) -> SimTime;

    /// Sends a unicast message. On the direct path the return value
    /// reports whether a copy was queued; a buffering port cannot know
    /// yet and optimistically returns `true` (the link model is applied
    /// at the merge). Components must not branch on it.
    fn send(&mut self, from: NodeId, to: NodeId, channel: &str, payload: Vec<u8>) -> bool;

    /// Broadcasts to every node in range; returns the number of copies
    /// queued on the direct path and `0` on a buffering port.
    fn broadcast(&mut self, from: NodeId, channel: &str, payload: Vec<u8>) -> usize;

    /// Arms a one-shot timer and returns its token. Tokens from a
    /// buffering port come from a disjoint per-node namespace so they
    /// never collide with the simulator's sequential tokens.
    fn set_timer(&mut self, node: NodeId, delay_ns: u64, tag: &str) -> u64;
}

/// A buffered network effect, replayed against the scheduler at an
/// epoch barrier. `at` is the simulated instant the component issued
/// the call (its event's timestamp), which the scheduler uses as the
/// send/arm time when it applies the command.
#[derive(Debug, Clone, PartialEq)]
pub enum NetCmd {
    /// A unicast send issued at `at`.
    Send {
        /// Issue time.
        at: SimTime,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Channel name.
        channel: String,
        /// Payload bytes.
        payload: Vec<u8>,
    },
    /// A broadcast issued at `at`.
    Broadcast {
        /// Issue time.
        at: SimTime,
        /// Sender.
        from: NodeId,
        /// Channel name.
        channel: String,
        /// Payload bytes.
        payload: Vec<u8>,
    },
    /// A timer armed at `at`, firing `delay_ns` later.
    Timer {
        /// Arm time.
        at: SimTime,
        /// Owning node.
        node: NodeId,
        /// Pre-allocated token (the component already holds it).
        token: u64,
        /// Delay from `at` to firing.
        delay_ns: u64,
        /// Tag echoed in the firing.
        tag: String,
    },
}

impl NetCmd {
    /// The simulated instant the command was issued.
    pub fn at(&self) -> SimTime {
        match self {
            NetCmd::Send { at, .. } | NetCmd::Broadcast { at, .. } | NetCmd::Timer { at, .. } => {
                *at
            }
        }
    }
}

/// Timer tokens handed out by a [`PortBuf`] live in a per-node high
/// namespace (`(node + 1) << PORT_TOKEN_SHIFT | counter`) so they are
/// deterministic per node — independent of scheduling — and disjoint
/// from the simulator's small sequential tokens on the direct path.
pub const PORT_TOKEN_SHIFT: u32 = 40;

/// A buffering [`NetPort`] owned by one node's cell.
///
/// Reads time from a per-cell [`ClockHandle`] (set by the driver to the
/// timestamp of the event being dispatched) and records every effect as
/// a [`NetCmd`] for the barrier merge.
#[derive(Debug)]
pub struct PortBuf {
    node: NodeId,
    clock: ClockHandle,
    token_base: u64,
    token_counter: u64,
    cmds: Vec<NetCmd>,
}

impl PortBuf {
    /// Creates a port for `node` reading `clock`.
    pub fn new(node: NodeId, clock: ClockHandle) -> Self {
        Self {
            node,
            clock,
            token_base: (u64::from(node.0) + 1) << PORT_TOKEN_SHIFT,
            token_counter: 0,
            cmds: Vec::new(),
        }
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The per-cell clock this port reads.
    pub fn clock(&self) -> ClockHandle {
        self.clock.clone()
    }

    /// `true` when no effects are buffered.
    pub fn is_empty(&self) -> bool {
        self.cmds.is_empty()
    }

    /// Takes the buffered effects, in issue order.
    pub fn drain(&mut self) -> Vec<NetCmd> {
        std::mem::take(&mut self.cmds)
    }
}

impl NetPort for PortBuf {
    fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn send(&mut self, from: NodeId, to: NodeId, channel: &str, payload: Vec<u8>) -> bool {
        self.cmds.push(NetCmd::Send {
            at: self.clock.now(),
            from,
            to,
            channel: channel.to_string(),
            payload,
        });
        true
    }

    fn broadcast(&mut self, from: NodeId, channel: &str, payload: Vec<u8>) -> usize {
        self.cmds.push(NetCmd::Broadcast {
            at: self.clock.now(),
            from,
            channel: channel.to_string(),
            payload,
        });
        0
    }

    fn set_timer(&mut self, node: NodeId, delay_ns: u64, tag: &str) -> u64 {
        self.token_counter += 1;
        let token = self.token_base | self.token_counter;
        self.cmds.push(NetCmd::Timer {
            at: self.clock.now(),
            node,
            token,
            delay_ns,
            tag: tag.to_string(),
        });
        token
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_effects_with_issue_time() {
        let clock = ClockHandle::new();
        let mut port = PortBuf::new(NodeId(2), clock.clone());
        clock.set(SimTime(500));
        assert!(port.send(NodeId(2), NodeId(0), "c", vec![1]));
        clock.set(SimTime(900));
        let token = port.set_timer(NodeId(2), 1_000, "t");
        assert_eq!(token, (3u64 << PORT_TOKEN_SHIFT) | 1);
        let cmds = port.drain();
        assert_eq!(cmds.len(), 2);
        assert_eq!(cmds[0].at(), SimTime(500));
        assert_eq!(cmds[1].at(), SimTime(900));
        assert!(port.is_empty());
    }

    #[test]
    fn tokens_are_per_node_deterministic() {
        let mut p1 = PortBuf::new(NodeId(0), ClockHandle::new());
        let mut p2 = PortBuf::new(NodeId(1), ClockHandle::new());
        let t1 = p1.set_timer(NodeId(0), 1, "a");
        let t2 = p2.set_timer(NodeId(1), 1, "a");
        assert_ne!(t1, t2);
        // Re-creating the port reproduces the same token sequence.
        let mut p1b = PortBuf::new(NodeId(0), ClockHandle::new());
        assert_eq!(p1b.set_timer(NodeId(0), 1, "a"), t1);
    }
}
