//! The weave-time optimizing pipeline.
//!
//! Runs at the MIDAS base between admission analysis and shipping:
//! each advice method is rewritten by [`devirt`] (class-hierarchy
//! devirtualisation), then [`constprop`] + [`dce`] to a fixpoint, and
//! the optimized body is *translation-validated* by re-running the
//! admission stack-depth verifier ([`crate::verifier::verify_method`]).
//! A method that fails validation is reverted to its original body and
//! flagged in the report — optimization can therefore never ship a
//! body the receiver's own verifier would reject. [`hoist`] finally
//! computes which methods of the optimized class qualify for hook-check
//! hoisting on the receiving VM.
//!
//! The whole pipeline is deterministic: same input aspect, same
//! [`OptReport`] — the report's `Display` form is stable and used as a
//! golden artifact in tests.

pub mod constprop;
pub mod dce;
pub mod devirt;
pub mod hoist;

use crate::AnalyzeOptions;
use crate::Severity;
use pmp_prose::PortableAspect;
use std::fmt;

/// Upper bound on constprop/DCE fixpoint rounds per method. Each
/// round either rewrites something or terminates the loop, and a
/// method body only shrinks, so this is a safety valve, not a tuning
/// knob.
const MAX_ROUNDS: usize = 8;

/// Per-method outcome of the optimizing pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodOptReport {
    /// Method name.
    pub method: String,
    /// Op count before optimization.
    pub before: usize,
    /// Op count after optimization (equals `before` when reverted).
    pub after: usize,
    /// `CallV` sites devirtualised to `CallDirect`.
    pub devirtualized: usize,
    /// Pure ops folded to constants.
    pub folded: usize,
    /// Conditional branches resolved statically.
    pub branches_folded: usize,
    /// Calls to constant-summary siblings eliminated.
    pub calls_inlined: usize,
    /// Ops removed by dead-code elimination.
    pub removed: usize,
    /// Whether the optimized body re-passed the admission verifier.
    /// `false` means the method was reverted to its original body.
    pub validated: bool,
}

/// Deterministic report of one class's optimization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptReport {
    /// The optimized class name.
    pub class: String,
    /// Per-method reports, in class declaration order.
    pub methods: Vec<MethodOptReport>,
    /// Methods whose hook checks may be hoisted, sorted.
    pub hoisted: Vec<String>,
}

impl OptReport {
    /// Total ops removed across all validated methods.
    pub fn total_removed(&self) -> usize {
        self.methods
            .iter()
            .filter(|m| m.validated)
            .map(|m| m.before - m.after)
            .sum()
    }

    /// Whether every optimized method re-passed the verifier.
    pub fn all_validated(&self) -> bool {
        self.methods.iter().all(|m| m.validated)
    }
}

impl fmt::Display for OptReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "class {}", self.class)?;
        for m in &self.methods {
            write!(
                f,
                "  {}: {} -> {} ops (devirt {}, fold {}, branch {}, inline {}, dce {})",
                m.method,
                m.before,
                m.after,
                m.devirtualized,
                m.folded,
                m.branches_folded,
                m.calls_inlined,
                m.removed,
            )?;
            if !m.validated {
                write!(f, " [reverted]")?;
            }
            writeln!(f)?;
        }
        if self.hoisted.is_empty() {
            writeln!(f, "  hoist: -")
        } else {
            writeln!(f, "  hoist: {}", self.hoisted.join(", "))
        }
    }
}

/// Optimizes every method of `aspect`'s class and returns the
/// optimized aspect plus the report. Bindings and metadata are
/// untouched — only method bodies change, so crosscut matching,
/// permission inference, and signatures are unaffected.
pub fn optimize_aspect(aspect: &PortableAspect) -> (PortableAspect, OptReport) {
    let mut out = aspect.clone();
    let opts = AnalyzeOptions::default();
    let sums = constprop::summaries(&aspect.class);

    let mut methods = Vec::with_capacity(out.class.methods.len());
    for idx in 0..out.class.methods.len() {
        let original = out.class.methods[idx].body.clone();
        let before = original.ops.len();

        let devirtualized = devirt::devirtualize(&mut out.class, idx);
        let mut stats = constprop::ConstpropStats::default();
        let mut removed = 0usize;
        for _ in 0..MAX_ROUNDS {
            let (round, nops) = constprop::propagate(&mut out.class, idx, &sums);
            stats.folded += round.folded;
            stats.branches += round.branches;
            stats.calls += round.calls;
            let swept = dce::eliminate(&mut out.class.methods[idx].body);
            removed += swept;
            if !round.any(nops) && swept == 0 {
                break;
            }
        }

        let m = &mut out.class.methods[idx];
        let changed = m.body != original;
        // Translation validation: the optimized body must re-pass the
        // exact verifier admission runs. Any Error reverts the method.
        let validated = !changed
            || !crate::verifier::verify_method(m, &opts)
                .iter()
                .any(|fdg| fdg.severity == Severity::Error);
        if !validated {
            m.body = original;
        }
        let after = m.body.ops.len();
        methods.push(MethodOptReport {
            method: m.name.clone(),
            before,
            after,
            devirtualized,
            folded: stats.folded,
            branches_folded: stats.branches,
            calls_inlined: stats.calls,
            removed,
            validated,
        });
    }

    let hoisted = hoist::hoistable_methods(&out.class);
    let report = OptReport {
        class: out.class.name.clone(),
        methods,
        hoisted,
    };
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_prose::{Crosscut, PortableBinding, PortableClass, PortableMethod};
    use pmp_vm::op::{BytecodeBody, Const, Op};

    fn method(name: &str, nparams: usize, ops: Vec<Op>) -> PortableMethod {
        PortableMethod {
            name: name.into(),
            params: vec!["any".into(); nparams],
            ret: "any".into(),
            body: BytecodeBody {
                extra_locals: 0,
                ops,
                handlers: vec![],
            },
        }
    }

    fn aspect(methods: Vec<PortableMethod>) -> PortableAspect {
        PortableAspect {
            name: "t".into(),
            class: PortableClass {
                name: "T".into(),
                fields: vec![],
                methods,
            },
            bindings: vec![PortableBinding {
                crosscut: Crosscut::parse("before * X.*(..)").unwrap(),
                method: "onCall".into(),
                priority: 0,
            }],
        }
    }

    #[test]
    fn pipeline_folds_branches_and_shrinks() {
        // if (1 + 1 == 2) return "fast"; else return "slow";
        let a = aspect(vec![method(
            "onCall",
            0,
            vec![
                Op::Const(Const::Int(1)),           // 0
                Op::Const(Const::Int(1)),           // 1
                Op::Add,                            // 2
                Op::Const(Const::Int(2)),           // 3
                Op::Eq,                             // 4
                Op::JumpIfNot(8),                   // 5
                Op::Const(Const::Str("fast".into())), // 6
                Op::RetVal,                         // 7
                Op::Const(Const::Str("slow".into())), // 8
                Op::RetVal,                         // 9
            ],
        )]);
        let (opt, report) = optimize_aspect(&a);
        assert!(report.all_validated());
        let m = &report.methods[0];
        assert!(m.folded >= 2, "{report}");
        assert_eq!(m.branches_folded, 1, "{report}");
        assert_eq!(
            opt.class.methods[0].body.ops,
            vec![Op::Const(Const::Str("fast".into())), Op::RetVal],
            "{report}"
        );
    }

    #[test]
    fn whole_pipeline_devirtualises_and_inlines() {
        let a = aspect(vec![
            method(
                "onCall",
                0,
                vec![
                    Op::Load(0),
                    Op::CallV {
                        method: "limit".into(),
                        argc: 0,
                    },
                    Op::RetVal,
                ],
            ),
            method("limit", 0, vec![Op::Const(Const::Int(99)), Op::RetVal]),
        ]);
        let (opt, report) = optimize_aspect(&a);
        assert!(report.all_validated());
        assert_eq!(report.methods[0].devirtualized, 1, "{report}");
        assert_eq!(report.methods[0].calls_inlined, 1, "{report}");
        assert_eq!(
            opt.class.methods[0].body.ops,
            vec![Op::Const(Const::Int(99)), Op::RetVal],
            "{report}"
        );
        // Both methods are pure: hook checks hoist.
        assert_eq!(report.hoisted, vec!["limit", "onCall"]);
    }

    #[test]
    fn report_rendering_is_stable() {
        let a = aspect(vec![method("onCall", 0, vec![Op::Ret])]);
        let (_, report) = optimize_aspect(&a);
        assert_eq!(
            report.to_string(),
            "class T\n  onCall: 1 -> 1 ops (devirt 0, fold 0, branch 0, inline 0, dce 0)\n  hoist: onCall\n"
        );
    }

    #[test]
    fn optimization_is_deterministic() {
        let a = aspect(vec![
            method(
                "onCall",
                2,
                vec![
                    Op::Const(Const::Int(6)),
                    Op::Const(Const::Int(7)),
                    Op::Mul,
                    Op::Pop,
                    Op::Load(0),
                    Op::CallV {
                        method: "k".into(),
                        argc: 0,
                    },
                    Op::RetVal,
                ],
            ),
            method("k", 0, vec![Op::Const(Const::Bool(false)), Op::RetVal]),
        ]);
        let (o1, r1) = optimize_aspect(&a);
        let (o2, r2) = optimize_aspect(&a);
        assert_eq!(o1.class.methods[0].body, o2.class.methods[0].body);
        assert_eq!(r1, r2);
        assert_eq!(r1.to_string(), r2.to_string());
    }

    #[test]
    fn side_effecting_bodies_survive_unchanged() {
        let a = aspect(vec![method(
            "onCall",
            0,
            vec![
                Op::Const(Const::Str("x".into())),
                Op::Sys {
                    name: "print".into(),
                    argc: 1,
                },
                Op::Pop,
                Op::Ret,
            ],
        )]);
        let (opt, report) = optimize_aspect(&a);
        assert_eq!(opt.class.methods[0].body, a.class.methods[0].body);
        assert!(report.all_validated());
        assert_eq!(report.total_removed(), 0);
        assert!(report.hoisted.is_empty());
    }
}
