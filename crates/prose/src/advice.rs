//! Advice: the code an aspect runs at matched join points, and the
//! context it sees when it runs.

use pmp_vm::hooks::Outcome;
use pmp_vm::types::MethodSig;
use pmp_vm::value::{ObjId, Value};
use pmp_vm::vm::Vm;
use pmp_vm::{VmError, VmException};
use std::fmt;
use std::sync::Arc;

/// The join point an advice is currently observing.
///
/// Mutable references let advice transform the program: replace
/// arguments before the body runs (e.g. encrypt a byte buffer), replace
/// a return value, or veto a field write.
#[derive(Debug)]
pub enum JoinPoint<'a> {
    /// Before a method body.
    MethodEntry {
        /// Signature of the intercepted method.
        sig: MethodSig,
        /// The receiver.
        this: &'a Value,
        /// The arguments; mutations are seen by the body.
        args: &'a mut Vec<Value>,
    },
    /// After a method body.
    MethodExit {
        /// Signature of the intercepted method.
        sig: MethodSig,
        /// The receiver.
        this: &'a Value,
        /// The (entry-time) arguments, read-only at exit.
        args: &'a [Value],
        /// The outcome; a returned value may be replaced.
        outcome: &'a mut Outcome,
    },
    /// After a field read.
    FieldGet {
        /// Declaring class name.
        class: Arc<str>,
        /// Field name.
        field: Arc<str>,
        /// The object read from.
        obj: ObjId,
        /// The observed value; may be replaced.
        value: &'a mut Value,
    },
    /// Before a field write.
    FieldSet {
        /// Declaring class name.
        class: Arc<str>,
        /// Field name.
        field: Arc<str>,
        /// The object written to.
        obj: ObjId,
        /// The value to be written; may be replaced.
        value: &'a mut Value,
    },
    /// An explicit `throw` fired.
    ExceptionThrow {
        /// Signature of the throwing method.
        site: MethodSig,
        /// The exception.
        exc: VmException,
    },
    /// A handler caught an exception.
    ExceptionCatch {
        /// Signature of the catching method.
        site: MethodSig,
        /// The exception.
        exc: VmException,
    },
    /// The aspect is being withdrawn (lease expiry, revocation, node
    /// leaving the area). Paper §3.2: "each extension is notified before
    /// leaving a proactive space so that it can execute a shut-down
    /// procedure".
    Shutdown {
        /// Why the aspect is being removed.
        reason: String,
    },
}

impl JoinPoint<'_> {
    /// Short label of the join-point kind (used in audit logs).
    pub fn kind(&self) -> &'static str {
        match self {
            JoinPoint::MethodEntry { .. } => "method-entry",
            JoinPoint::MethodExit { .. } => "method-exit",
            JoinPoint::FieldGet { .. } => "field-get",
            JoinPoint::FieldSet { .. } => "field-set",
            JoinPoint::ExceptionThrow { .. } => "exception-throw",
            JoinPoint::ExceptionCatch { .. } => "exception-catch",
            JoinPoint::Shutdown { .. } => "shutdown",
        }
    }
}

/// Everything a native advice can see and do: the VM (heap access,
/// nested calls, system ops under the aspect's permissions) and the join
/// point.
pub struct AdviceCtx<'a, 'b> {
    /// The VM, already inside the aspect's sandbox scope.
    pub vm: &'a mut Vm,
    /// The join point being observed.
    pub jp: JoinPoint<'b>,
}

impl fmt::Debug for AdviceCtx<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdviceCtx").field("jp", &self.jp).finish()
    }
}

/// A native (Rust) advice body.
///
/// Returning `Err` aborts the intercepted operation — this is how
/// access-control advice denies calls ("the execution is ended with an
/// exception", paper §4.6).
pub type NativeAdviceFn =
    Arc<dyn for<'a, 'b> Fn(&mut AdviceCtx<'a, 'b>) -> Result<(), VmError> + Send + Sync>;

/// How an advice body is implemented.
#[derive(Clone)]
pub enum AdviceBody {
    /// A Rust closure, for locally-constructed aspects (and benches).
    Native(NativeAdviceFn),
    /// A method on the aspect's shipped class, executed in the VM — this
    /// is the form MIDAS distributes over the network.
    Script {
        /// Name of the advice method on the aspect class.
        method: Arc<str>,
    },
}

impl fmt::Debug for AdviceBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdviceBody::Native(_) => write!(f, "Native(..)"),
            AdviceBody::Script { method } => write!(f, "Script({method})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joinpoint_kinds() {
        let mut v = Value::Null;
        let jp = JoinPoint::FieldGet {
            class: Arc::from("Motor"),
            field: Arc::from("pos"),
            obj: ObjId(0),
            value: &mut v,
        };
        assert_eq!(jp.kind(), "field-get");
        let jp = JoinPoint::Shutdown {
            reason: "lease expired".into(),
        };
        assert_eq!(jp.kind(), "shutdown");
    }
}
