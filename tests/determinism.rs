//! Cross-driver determinism: the parallel epoch driver must be
//! observably indistinguishable from the serial one (DESIGN.md §10).
//!
//! Each scenario runs twice — once per driver — and every observable is
//! compared: the network trace digest (per-delivery byte sequence), the
//! journal digest (platform + every node VM), hall-database contents,
//! installed-extension ids, billing settlements, RPC outcomes, and the
//! robot's canvas. A single diverging RNG draw, reordered delivery, or
//! racy journal write flips a digest.

use pmp::core::{
    Driver, ParallelDriver, Platform, ProductionHalls, SerialDriver, CORRIDOR, IN_HALL_B,
};
use pmp::net::{LinkModel, Position};
use pmp::vm::perm::{Permission, Permissions};

const SEC: u64 = 1_000_000_000;

/// Everything a scenario run exposes to an observer.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    driver: &'static str,
    trace: u64,
    journal: u64,
    observables: Vec<String>,
}

impl Fingerprint {
    fn assert_matches(&self, other: &Fingerprint) {
        assert_eq!(
            self.observables, other.observables,
            "{} vs {} observables diverged",
            self.driver, other.driver
        );
        assert_eq!(
            self.trace, other.trace,
            "{} vs {} trace digests diverged",
            self.driver, other.driver
        );
        assert_eq!(
            self.journal, other.journal,
            "{} vs {} journal digests diverged",
            self.driver, other.driver
        );
    }
}

fn fingerprint(driver_name: &'static str, p: &Platform, observables: Vec<String>) -> Fingerprint {
    Fingerprint {
        driver: driver_name,
        trace: p.trace_digest(),
        journal: p.journal_digest(),
        observables,
    }
}

/// The full production-hall lifecycle: adaptation, an authorized draw,
/// roaming A → corridor → B, geofenced moves, and a billing revocation.
fn run_production(driver: Box<dyn Driver>) -> Fingerprint {
    let name = driver.name();
    let mut w = ProductionHalls::build(11);
    w.platform.set_driver(driver);
    w.platform.sim.trace.set_logging(true);

    w.platform.pump(6 * SEC);
    let draw = w.platform.rpc(
        w.base_a,
        w.robot,
        "operator:1",
        "DrawingService",
        "drawLine",
        vec![0, 0, 10, 0],
    );
    w.platform.pump(2 * SEC);
    w.platform.move_node(w.robot, CORRIDOR);
    w.platform.pump(12 * SEC);
    w.platform.move_node(w.robot, IN_HALL_B);
    w.platform.pump(6 * SEC);
    let fenced_ok = w.platform.rpc(
        w.base_b,
        w.robot,
        "anyone",
        "DrawingService",
        "moveTo",
        vec![20, 20],
    );
    let fenced_bad = w.platform.rpc(
        w.base_b,
        w.robot,
        "anyone",
        "DrawingService",
        "moveTo",
        vec![50, 5],
    );
    w.platform.pump(2 * SEC);
    w.platform
        .revoke_extension(w.base_b, "ext/billing", "hall policy: billing disabled");
    w.platform.pump(3 * SEC);

    let mut obs = Vec::new();
    for outcome in w.platform.take_rpc_outcomes() {
        let tag = match outcome.req {
            r if r == draw => "draw",
            r if r == fenced_ok => "fenced_ok",
            r if r == fenced_bad => "fenced_bad",
            _ => "other",
        };
        obs.push(format!("rpc {tag} ok={} value={}", outcome.ok, outcome.value));
    }
    for base in [w.base_a, w.base_b] {
        let b = w.platform.base(base);
        obs.push(format!("store {} len={}", b.name, b.store.len()));
        for r in b.store.range(0, u64::MAX) {
            obs.push(format!(
                "  {} {} {:?} {}ns",
                r.robot, r.command, r.args, r.duration_ns
            ));
        }
        for (robot, reason, amount) in &b.charges {
            obs.push(format!("charge {} {robot} {reason} {amount}", b.name));
        }
    }
    obs.push(format!(
        "installed {:?}",
        w.platform.node(w.robot).receiver.installed_ids()
    ));
    obs.push(format!(
        "canvas {:?}",
        w.platform.node(w.robot).canvas().unwrap().strokes()
    ));
    fingerprint(name, &w.platform, obs)
}

/// A lossy-link failure-injection scenario on the full platform: 20 %
/// loss, a base outage mid-run, then recovery — heavy use of the link
/// RNG, whose draw order is the first casualty of a racy merge.
fn run_failures(driver: Box<dyn Driver>) -> Fingerprint {
    let name = driver.name();
    let mut p = Platform::with_link(91, LinkModel::lossy(0.20));
    p.set_driver(driver);
    p.sim.trace.set_logging(true);
    p.add_area("hall", Position::new(0.0, 0.0), Position::new(60.0, 60.0));
    let base = p.add_base("hall", Position::new(30.0, 30.0), 80.0);
    let sealed = p
        .base(base)
        .seal(&pmp::extensions::billing::package("* Motor.*(..)", 1, 1));
    p.base_mut(base).base.catalog.put(sealed);
    let policy = p.trusting_policy(&[base], Permissions::none().with(Permission::Net));
    let robot = p
        .add_robot("robot:9:1", Position::new(40.0, 30.0), 80.0, policy)
        .expect("robot");

    p.pump(30 * SEC);
    let installed_lossy = p.node(robot).receiver.installed_ids();
    let base_node = p.base(base).node;
    p.sim.set_online(base_node, false);
    p.pump(15 * SEC);
    let installed_outage = p.node(robot).receiver.installed_ids();
    p.sim.set_online(base_node, true);
    p.pump(15 * SEC);
    let installed_recovered = p.node(robot).receiver.installed_ids();

    let obs = vec![
        format!("lossy {installed_lossy:?}"),
        format!("outage {installed_outage:?}"),
        format!("recovered {installed_recovered:?}"),
        format!("drops {}", p.sim.trace.stats.dropped_loss),
    ];
    fingerprint(name, &p, obs)
}

#[test]
fn production_hall_is_driver_invariant() {
    let serial = run_production(Box::new(SerialDriver));
    let parallel = run_production(Box::new(ParallelDriver::default()));
    serial.assert_matches(&parallel);
    // The scenario actually exercised the world.
    assert!(serial.observables.iter().any(|o| o.starts_with("rpc draw ok=true")));
    assert!(serial
        .observables
        .iter()
        .any(|o| o.starts_with("charge hall-b")));
}

#[test]
fn lossy_failure_injection_is_driver_invariant() {
    let serial = run_failures(Box::new(SerialDriver));
    let parallel = run_failures(Box::new(ParallelDriver::default()));
    serial.assert_matches(&parallel);
    assert!(
        serial.observables.iter().any(|o| o.contains("ext/billing")),
        "adaptation converged despite loss: {:?}",
        serial.observables
    );
}

#[test]
fn parallel_runs_are_self_consistent_across_thread_counts() {
    // 1, 2, and many workers must all match: shard shape is invisible.
    let one = run_production(Box::new(ParallelDriver { threads: 1 }));
    let two = run_production(Box::new(ParallelDriver { threads: 2 }));
    let many = run_production(Box::new(ParallelDriver { threads: 16 }));
    one.assert_matches(&two);
    two.assert_matches(&many);
}

#[test]
fn serial_runs_are_repeatable() {
    let a = run_production(Box::new(SerialDriver));
    let b = run_production(Box::new(SerialDriver));
    a.assert_matches(&b);
}

/// RPC outcomes merge at the epoch barrier sorted by
/// `(observation time, request id)` — never by which cell (and hence
/// which driver rank) happened to hold them. A burst of concurrent
/// semantic calls under loss lands replies on the base in arbitrary
/// cell order; the drained outcome *sequence* must still be identical
/// under both drivers and monotone in `(at, req)`.
fn run_outcome_order(driver: Box<dyn Driver>) -> (Fingerprint, Vec<(u64, u64)>) {
    use pmp::core::rpc::InvocationSemantics;
    let name = driver.name();
    let mut p = Platform::with_link(55, LinkModel::lossy(0.20));
    p.set_driver(driver);
    p.sim.trace.set_logging(true);
    p.add_area("hall", Position::new(0.0, 0.0), Position::new(60.0, 60.0));
    let base = p.add_base("hall", Position::new(30.0, 30.0), 80.0);
    let policy = p.trusting_policy(&[base], Permissions::all());
    let robot = p
        .add_robot("robot:5:1", Position::new(40.0, 30.0), 80.0, policy)
        .expect("robot");
    p.pump(3 * SEC);
    // A burst of in-flight calls, mixed semantics, no pump between
    // them: their replies race and their merge order is the thing
    // under test.
    for i in 0..8i64 {
        let sem = if i % 2 == 0 {
            InvocationSemantics::AtMostOnce
        } else {
            InvocationSemantics::AtLeastOnce
        };
        p.rpc_with(
            base,
            robot,
            "operator:1",
            "DrawingService",
            "moveTo",
            vec![i, i],
            sem,
        );
    }
    p.pump(25 * SEC);
    let outcomes = p.take_rpc_outcomes();
    let keys: Vec<(u64, u64)> = outcomes.iter().map(|o| (o.at, o.req)).collect();
    let obs = outcomes
        .iter()
        .map(|o| format!("req={} ok={} at={}", o.req, o.ok, o.at))
        .collect();
    (fingerprint(name, &p, obs), keys)
}

#[test]
fn rpc_outcome_order_is_driver_invariant_and_time_sorted() {
    let (serial, serial_keys) = run_outcome_order(Box::new(SerialDriver));
    let (parallel, parallel_keys) = run_outcome_order(Box::new(ParallelDriver::default()));
    serial.assert_matches(&parallel);
    assert_eq!(serial_keys, parallel_keys);
    assert!(
        serial_keys.windows(2).all(|w| w[0] <= w[1]),
        "outcomes must be sorted by (at, req): {serial_keys:?}"
    );
    assert!(!serial_keys.is_empty());
}
