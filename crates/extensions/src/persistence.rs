//! The orthogonal persistence extension (paper §4.6 measures its cost):
//! every write to matching fields is streamed to stable storage via the
//! `persist.put` system operation, transparently to the application
//! (Fig. 2c step 4: state changes "intercepted and propagated ... to a
//! database at the base station").

use crate::support::{advice_params, versioned_class};
use pmp_midas::{ExtensionMeta, ExtensionPackage};
use pmp_prose::{Aspect, Crosscut, PortableAspect, PortableClass, PortableMethod};
use pmp_vm::builder::MethodBuilder;
use pmp_vm::op::Op;

/// Extension id.
pub const ID: &str = "ext/persistence";

/// Builds the persistence package for fields matching `field_pattern`
/// (e.g. `"Robot.*"` or `"*.state"`).
pub fn package(field_pattern: &str, version: u32) -> ExtensionPackage {
    let mut b = MethodBuilder::new();
    // persist.put("Class.field", new_value)
    b.op(Op::Load(2)); // descriptor
    b.op(Op::Load(3)); // the value being written
    b.op(Op::Sys {
        name: "persist.put".into(),
        argc: 2,
    });
    b.op(Op::Pop).op(Op::Ret);

    let class = PortableClass {
        name: versioned_class("OrthogonalPersistence", version),
        fields: vec![],
        methods: vec![PortableMethod {
            name: "onWrite".into(),
            params: advice_params(),
            ret: "any".into(),
            body: b.build(),
        }],
    };
    let aspect = Aspect::script(
        "persistence",
        class,
        vec![(
            Crosscut::parse(&format!("set {field_pattern}")).expect("valid"),
            "onWrite".into(),
            0,
        )],
    );
    ExtensionPackage {
        meta: ExtensionMeta {
            id: ID.into(),
            version,
            description: "streams matching field writes to stable storage".into(),
            requires: vec![],
            permissions: vec!["store".into()],
            implicit: false,
        },
        aspect: PortableAspect::try_from(&aspect).expect("portable"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::register_sink;
    use pmp_prose::{Prose, WeaveOptions};
    use pmp_vm::perm::{Permission, Permissions};
    use pmp_vm::prelude::*;

    #[test]
    fn field_writes_are_streamed() {
        let mut vm = Vm::new(VmConfig::default());
        vm.register_class(
            ClassDef::build("Robot")
                .field("state", TypeSig::Int)
                .field("scratch", TypeSig::Int)
                .method("work", [TypeSig::Int], TypeSig::Void, |b| {
                    b.op(Op::Load(0)).op(Op::Load(1)).op(Op::PutField {
                        class: "Robot".into(),
                        field: "state".into(),
                    });
                    b.op(Op::Load(0)).konst(0i64).op(Op::PutField {
                        class: "Robot".into(),
                        field: "scratch".into(),
                    });
                    b.op(Op::Ret);
                })
                .done(),
        )
        .unwrap();
        let store = register_sink(&mut vm, "persist.put", Some(Permission::Store));
        let prose = Prose::attach(&mut vm);
        prose
            .weave(
                &mut vm,
                package("Robot.state", 1).aspect.into(),
                WeaveOptions::sandboxed(Permissions::none().with(Permission::Store)),
            )
            .unwrap();

        let robot = vm.new_object("Robot").unwrap();
        vm.call("Robot", "work", robot.clone(), vec![Value::Int(7)])
            .unwrap();
        vm.call("Robot", "work", robot, vec![Value::Int(8)]).unwrap();

        let posts = store.lock();
        // Only Robot.state matches, not Robot.scratch.
        assert_eq!(posts.len(), 2);
        assert_eq!(posts[0].args[0], Value::str("Robot.state"));
        assert_eq!(posts[0].args[1], Value::Int(7));
        assert_eq!(posts[1].args[1], Value::Int(8));
    }
}
