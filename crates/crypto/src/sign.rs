//! Deterministic Schnorr signatures over the [`crate::group`] subgroup.
//!
//! Signing: with secret key `x`, nonce `k = HMAC(x, msg) mod Q`,
//! commitment `R = g^k`, challenge `e = H(R ‖ pk ‖ msg) mod Q`, response
//! `s = k + e·x mod Q`. The signature is `(e, s)`.
//!
//! Verification recomputes `R' = g^s · pk^(−e)` and accepts iff
//! `H(R' ‖ pk ‖ msg) mod Q == e`.

use crate::group::{self, add_mod_q, mul_mod, mul_mod_q, pow_mod, G, Q};
use crate::hmac::hmac_sha256;
use crate::keys::{PublicKey, SecretKey};
use crate::sha256::sha256_parts;
use pmp_wire::{Reader, Wire, WireError, Writer};

/// A Schnorr signature `(e, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Challenge scalar.
    pub e: u64,
    /// Response scalar.
    pub s: u64,
}

impl Wire for Signature {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.e);
        w.put_u64(self.s);
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(Signature {
            e: r.get_u64()?,
            s: r.get_u64()?,
        })
    }
}

fn challenge(r_commit: u64, pk: &PublicKey, msg: &[u8]) -> u64 {
    let d = sha256_parts(&[
        b"pmp-schnorr-challenge",
        &r_commit.to_be_bytes(),
        &pk.element().to_be_bytes(),
        msg,
    ]);
    d.to_u64() % Q
}

/// Signs `msg` under `secret`, with a deterministic (RFC-6979-style)
/// nonce so no randomness source is required.
pub fn sign(secret: &SecretKey, msg: &[u8]) -> Signature {
    let pk = secret.public_key();
    // Deterministic nonce bound to both key and message; never zero.
    let k = hmac_sha256(&secret.0.to_be_bytes(), msg).to_u64() % (Q - 1) + 1;
    let r_commit = pow_mod(G, k);
    let e = challenge(r_commit, &pk, msg);
    let s = add_mod_q(k, mul_mod_q(e, secret.0));
    Signature { e, s }
}

/// Verifies `sig` over `msg` against `pk`.
///
/// Returns `false` (never panics) for malformed scalars, keys outside the
/// subgroup, or any mismatch.
pub fn verify(pk: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
    if !pk.is_valid() || sig.e >= Q || sig.s >= Q {
        return false;
    }
    // R' = g^s * (pk^e)^-1
    let r_prime = mul_mod(pow_mod(G, sig.s), group::inv_mod(pow_mod(pk.element(), sig.e)));
    challenge(r_prime, pk, msg) == sig.e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;

    #[test]
    fn sign_verify_roundtrip() {
        let pair = KeyPair::from_seed(b"base-station");
        let sig = pair.sign(b"extension payload");
        assert!(verify(&pair.public_key(), b"extension payload", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let pair = KeyPair::from_seed(b"base-station");
        let sig = pair.sign(b"payload");
        assert!(!verify(&pair.public_key(), b"other payload", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let signer = KeyPair::from_seed(b"alice");
        let other = KeyPair::from_seed(b"mallory");
        let sig = signer.sign(b"msg");
        assert!(!verify(&other.public_key(), b"msg", &sig));
    }

    #[test]
    fn out_of_range_scalars_rejected() {
        let pair = KeyPair::from_seed(b"k");
        let mut sig = pair.sign(b"m");
        sig.e = Q; // out of range
        assert!(!verify(&pair.public_key(), b"m", &sig));
    }

    #[test]
    fn signature_is_deterministic() {
        let pair = KeyPair::from_seed(b"k");
        assert_eq!(pair.sign(b"m"), pair.sign(b"m"));
    }

    #[test]
    fn signature_wire_roundtrip() {
        let pair = KeyPair::from_seed(b"k");
        let sig = pair.sign(b"m");
        let bytes = pmp_wire::to_bytes(&sig);
        assert_eq!(pmp_wire::from_bytes::<Signature>(&bytes).unwrap(), sig);
    }

    // Property tests need the external `proptest` crate; the offline
    // default build gates them behind the (empty) `proptest` feature.
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_roundtrip(seed in proptest::collection::vec(any::<u8>(), 1..16),
                              msg in proptest::collection::vec(any::<u8>(), 0..256)) {
                let pair = KeyPair::from_seed(&seed);
                let sig = pair.sign(&msg);
                prop_assert!(verify(&pair.public_key(), &msg, &sig));
            }

            #[test]
            fn prop_tampered_message_rejected(
                seed in proptest::collection::vec(any::<u8>(), 1..16),
                msg in proptest::collection::vec(any::<u8>(), 1..256),
                flip_byte in 0usize..256,
            ) {
                let pair = KeyPair::from_seed(&seed);
                let sig = pair.sign(&msg);
                let mut tampered = msg.clone();
                let i = flip_byte % tampered.len();
                tampered[i] ^= 0x01;
                prop_assert!(!verify(&pair.public_key(), &tampered, &sig));
            }

            #[test]
            fn prop_tampered_signature_rejected(
                seed in proptest::collection::vec(any::<u8>(), 1..16),
                msg in proptest::collection::vec(any::<u8>(), 0..128),
                delta in 1u64..1000,
            ) {
                let pair = KeyPair::from_seed(&seed);
                let mut sig = pair.sign(&msg);
                sig.s = (sig.s + delta) % Q;
                prop_assert!(!verify(&pair.public_key(), &msg, &sig));
            }
        }
    }
}
