//! Pass 2 — permission inference.
//!
//! Derives the least [`Permissions`] set an aspect can require: the
//! union of the permissions gating every sys op reachable from its
//! advice entry points (the bound advice methods, `init`, and the
//! shutdown handler), walking intra-class calls (`CallStatic` naming
//! the shipped class, `CallV` whose method name resolves on it)
//! transitively. Field accesses and calls into application classes
//! carry no permission of their own — the VM gates side effects at the
//! sys-op boundary only.
//!
//! A package whose *declared* permission set does not cover the
//! inferred one is rejected: its signer asked the user to grant less
//! than the code actually needs, which at run time would surface as a
//! confusing mid-advice `SecurityException` — or, worse, train
//! operators to grant everything. Declared-but-unused permissions are
//! reported below the rejection threshold, and sys ops unknown on the
//! receiving node are warnings (they fail closed at link time).

use crate::{Finding, Pass, Severity, SysPerm, SysResolver};
use pmp_prose::{Aspect, PortableAspect, PortableMethod};
use pmp_vm::op::Op;
use pmp_vm::perm::Permissions;
use std::collections::BTreeSet;

/// The outcome of permission inference.
#[derive(Debug, Clone, Default)]
pub struct Inference {
    /// The least permission set reachable advice can require.
    pub required: Permissions,
    /// Diagnostics (coverage errors, unknown sys ops, unused grants).
    pub findings: Vec<Finding>,
}

/// Infers the least required permissions of `aspect` and checks them
/// against `declared` (the package's `meta.permissions`).
pub fn check_permissions(
    aspect: &PortableAspect,
    declared: Permissions,
    resolver: &dyn SysResolver,
) -> Inference {
    let class = &aspect.class;

    fn enqueue<'a>(
        class: &'a pmp_prose::PortableClass,
        name: &str,
        queue: &mut Vec<&'a PortableMethod>,
        seen: &mut BTreeSet<&'a str>,
    ) {
        if let Some(m) = class.methods.iter().find(|m| m.name == name) {
            if seen.insert(&m.name) {
                queue.push(m);
            }
        }
    }

    // Entry points: every bound advice method, the optional `init`
    // constructor-advice, and the shutdown handler.
    let mut queue: Vec<&PortableMethod> = Vec::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for b in &aspect.bindings {
        enqueue(class, &b.method, &mut queue, &mut seen);
    }
    enqueue(class, "init", &mut queue, &mut seen);
    enqueue(class, Aspect::SHUTDOWN_METHOD, &mut queue, &mut seen);

    let mut required = Permissions::none();
    let mut findings = Vec::new();
    let mut unknown_sys = false;

    while let Some(m) = queue.pop() {
        for (pc, op) in m.body.ops.iter().enumerate() {
            match op {
                Op::Sys { name, .. } => match resolver.lookup(name) {
                    SysPerm::Guarded(p) => required = required.with(p),
                    SysPerm::Unguarded => {}
                    SysPerm::Unknown => {
                        unknown_sys = true;
                        findings.push(Finding::new(
                            Severity::Warning,
                            Pass::Permissions,
                            &m.name,
                            Some(pc),
                            format!("sys op {name:?} is not registered on this node"),
                        ));
                    }
                },
                Op::CallStatic {
                    class: cname,
                    method,
                    ..
                } if *cname == class.name => {
                    enqueue(class, method, &mut queue, &mut seen);
                }
                Op::CallV { method, .. } => {
                    // Dynamic dispatch may land on the shipped class
                    // itself; include it conservatively.
                    enqueue(class, method, &mut queue, &mut seen);
                }
                Op::CallDirect {
                    class: cname,
                    method,
                    ..
                } if *cname == class.name => {
                    // Devirtualised call within the shipped class:
                    // statically resolved, same as `CallStatic`.
                    enqueue(class, method, &mut queue, &mut seen);
                }
                _ => {}
            }
        }
    }

    if !declared.covers(required) {
        let missing: Vec<String> = required
            .iter()
            .filter(|p| !declared.allows(*p))
            .map(|p| p.name().to_string())
            .collect();
        findings.push(Finding::new(
            Severity::Error,
            Pass::Permissions,
            "",
            None,
            format!(
                "advice requires undeclared permission(s) {{{}}} (declared {declared})",
                missing.join(",")
            ),
        ));
    } else if !unknown_sys {
        // Only lint unused grants when every sys op resolved — an
        // unknown op might be the one needing the extra grant.
        let unused: Vec<String> = declared
            .iter()
            .filter(|p| !required.allows(*p))
            .map(|p| p.name().to_string())
            .collect();
        if !unused.is_empty() {
            findings.push(Finding::new(
                Severity::Info,
                Pass::Permissions,
                "",
                None,
                format!(
                    "declared permission(s) {{{}}} never used by reachable advice",
                    unused.join(",")
                ),
            ));
        }
    }

    Inference { required, findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_prose::{Crosscut, PortableBinding, PortableClass};
    use pmp_vm::op::BytecodeBody;
    use pmp_vm::perm::Permission;

    fn resolver(name: &str) -> SysPerm {
        match name {
            "print" => SysPerm::Guarded(Permission::Print),
            "net.send" => SysPerm::Guarded(Permission::Net),
            "session.get" => SysPerm::Unguarded,
            _ => SysPerm::Unknown,
        }
    }

    fn method(name: &str, ops: Vec<Op>) -> PortableMethod {
        PortableMethod {
            name: name.into(),
            params: vec!["any".into(); 5],
            ret: "any".into(),
            body: BytecodeBody {
                extra_locals: 0,
                ops,
                handlers: vec![],
            },
        }
    }

    fn aspect(methods: Vec<PortableMethod>, bound: &str) -> PortableAspect {
        PortableAspect {
            name: "t".into(),
            class: PortableClass {
                name: "T".into(),
                fields: vec![],
                methods,
            },
            bindings: vec![PortableBinding {
                crosscut: Crosscut::parse("before * X.*(..)").unwrap(),
                method: bound.into(),
                priority: 0,
            }],
        }
    }

    fn sys(name: &str) -> Op {
        Op::Sys {
            name: name.into(),
            argc: 0,
        }
    }

    #[test]
    fn reachable_sys_ops_determine_required_set() {
        let a = aspect(
            vec![method("onCall", vec![sys("net.send"), Op::Pop, Op::Ret])],
            "onCall",
        );
        let inf = check_permissions(&a, Permissions::none().with(Permission::Net), &resolver);
        assert!(inf.required.allows(Permission::Net));
        assert!(!inf.required.allows(Permission::Print));
        assert!(inf.findings.is_empty(), "{:?}", inf.findings);
    }

    #[test]
    fn undeclared_permission_is_an_error() {
        let a = aspect(
            vec![method("onCall", vec![sys("print"), Op::Pop, Op::Ret])],
            "onCall",
        );
        let inf = check_permissions(&a, Permissions::none(), &resolver);
        let errs: Vec<_> = inf
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .collect();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("print"));
    }

    #[test]
    fn inference_walks_intra_class_calls() {
        let a = aspect(
            vec![
                method(
                    "onCall",
                    vec![
                        Op::CallStatic {
                            class: "T".into(),
                            method: "helper".into(),
                            argc: 0,
                        },
                        Op::Pop,
                        Op::Ret,
                    ],
                ),
                method("helper", vec![sys("net.send"), Op::RetVal]),
            ],
            "onCall",
        );
        let inf = check_permissions(&a, Permissions::none(), &resolver);
        assert!(inf.required.allows(Permission::Net));
    }

    #[test]
    fn unbound_methods_do_not_contribute() {
        let a = aspect(
            vec![
                method("onCall", vec![Op::Ret]),
                method("dormant", vec![sys("net.send"), Op::Pop, Op::Ret]),
            ],
            "onCall",
        );
        let inf = check_permissions(&a, Permissions::none(), &resolver);
        assert_eq!(inf.required, Permissions::none());
    }

    #[test]
    fn unknown_sys_op_is_a_warning_not_an_error() {
        let a = aspect(
            vec![method("onCall", vec![sys("wat.wat"), Op::Pop, Op::Ret])],
            "onCall",
        );
        let inf = check_permissions(&a, Permissions::none(), &resolver);
        assert_eq!(inf.findings.len(), 1);
        assert_eq!(inf.findings[0].severity, Severity::Warning);
    }

    #[test]
    fn unused_declared_permission_is_info() {
        let a = aspect(vec![method("onCall", vec![Op::Ret])], "onCall");
        let inf = check_permissions(
            &a,
            Permissions::none().with(Permission::Device),
            &resolver,
        );
        assert_eq!(inf.findings.len(), 1);
        assert_eq!(inf.findings[0].severity, Severity::Info);
        assert!(inf.findings[0].message.contains("device"));
    }

    #[test]
    fn unguarded_sys_ops_need_no_grant() {
        let a = aspect(
            vec![method("onCall", vec![sys("session.get"), Op::Pop, Op::Ret])],
            "onCall",
        );
        let inf = check_permissions(&a, Permissions::none(), &resolver);
        assert_eq!(inf.required, Permissions::none());
        assert!(inf.findings.is_empty());
    }
}
