//! The experiment harness: regenerates every measurement in the
//! paper's evaluation (§4.6) plus the system-level behaviours of its
//! figures, printing paper-vs-measured rows. See DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for recorded results.
//!
//! ```bash
//! cargo run -p pmp-bench --release --bin harness
//! ```

use pmp_bench::*;
use pmp_spec::Size;

const SEC: u64 = 1_000_000_000;

fn main() {
    if std::env::args().any(|a| a == "--dump-opt-report") {
        dump_opt_reports();
        return;
    }
    println!("# pmp experiment harness");
    println!();
    println!("(build: {})", if cfg!(debug_assertions) { "DEBUG — use --release for meaningful absolute times" } else { "release" });
    e1_spec_overhead();
    e2_interception();
    e3_extension_cost();
    e4_weaving();
    e5_adapted_call();
    e6_distribution();
    e7_revocation();
    e8_monitoring_pipeline();
    e9_security();
    e10_conciseness();
    e11_verification_cost();
    e12_driver_scaling();
    e13_durability();
    e14_chaos();
    e15_tracing_overhead();
    e16_weave_opt();
    e17_federation();
    e18_stream();
    e19_semantics_soak();
    ablations();
}

/// E18 — pmp-stream fan-out: serialize-once encoding under growing
/// subscriber counts. The full ≥1M-subscriber run lives in the
/// dedicated `loadgen` binary; this section sweeps moderate scales so
/// the harness stays quick.
fn e18_stream() {
    use pmp_bench::stream_fanout_run;

    println!("## E18 — stream fan-out (rev-streamed state, serialize-once)");
    println!();
    println!("One base, N live subscribers on `store.movements`, 4 drawing bursts,");
    println!("every subscriber drained after each burst. `encoded` must not move");
    println!("with N — each committed delta is wire-encoded exactly once and fanned");
    println!("out as buffer clones. For the million-subscriber row run:");
    println!("`cargo run -p pmp-bench --release --bin loadgen`.");
    println!();
    println!("| subscribers | encoded | deliveries | updates/s | amortized B/update | p99 drain (ns) |");
    println!("|---|---|---|---|---|---|");
    let control = stream_fanout_run(1, 4);
    for n in [1_000usize, 10_000, 100_000] {
        let r = stream_fanout_run(n, 4);
        assert_eq!(
            r.encoded, control.encoded,
            "serialize-once violated at {n} subscribers"
        );
        println!(
            "| {} | {} | {} | {:.0} | {:.4} | {} |",
            r.subscribers,
            r.encoded,
            r.deliveries,
            r.updates_per_s,
            r.amortized_bytes_per_update,
            r.p99_drain_ns
        );
    }
    println!();
}

/// E19 — DESIGN.md §17: configurable invocation semantics under link
/// loss, and the soak mode's perf oracles catching an injected
/// latency regression and shrinking it to its kernel.
fn e19_semantics_soak() {
    use pmp_chaos::{exec, shrink, soak, DriverKind, Op, Scenario, SoakConfig};
    use pmp_core::rpc::InvocationSemantics;
    use pmp_core::Platform;
    use pmp_net::{LinkModel, Position};
    use pmp_vm::perm::Permissions;
    use std::time::Instant;

    println!("## E19 — invocation semantics + soak-mode perf oracles");
    println!();

    // ── E19a: the semantics matrix at 20 % loss ─────────────────────
    // Same world, same 40-call script; only the semantics knob moves.
    // `dups` counts executions beyond the first per request — the
    // at-most-once row must read 0 whatever the radio drops.
    println!("### E19a — 40 calls per cell at 20% link loss (seed 402)");
    println!();
    println!("| semantics | delivered | delivery % | total execs | duplicate execs | dedup hits |");
    println!("|---|---|---|---|---|---|");
    const CALLS: u64 = 40;
    let run_cell = |sem: InvocationSemantics| {
        let mut p = Platform::with_link(402, LinkModel::lossy(0.20));
        p.add_area("hall", Position::new(0.0, 0.0), Position::new(60.0, 60.0));
        let base = p.add_base("hall", Position::new(30.0, 30.0), 80.0);
        let policy = p.trusting_policy(&[base], Permissions::all());
        let robot = p
            .add_robot("robot:1:1", Position::new(40.0, 30.0), 80.0, policy)
            .expect("robot");
        p.pump(3 * SEC);
        let mut reqs = Vec::new();
        for i in 0..CALLS {
            reqs.push(p.rpc_with(
                base,
                robot,
                "operator:1",
                "DrawingService",
                "moveTo",
                vec![i as i64, 1],
                sem,
            ));
            p.pump(SEC / 4);
        }
        p.pump(20 * SEC);
        let delivered = p
            .take_rpc_outcomes()
            .iter()
            .filter(|o| o.ok)
            .count();
        let node = p.node(robot);
        let execs: Vec<u32> = reqs.iter().map(|&r| node.rpc_server.executions(r)).collect();
        let total: u32 = execs.iter().sum();
        let dups: u32 = execs.iter().map(|&n| n.saturating_sub(1)).sum();
        (delivered, total, dups, node.rpc_server.dedup.hits)
    };
    for sem in [
        InvocationSemantics::Maybe,
        InvocationSemantics::AtMostOnce,
        InvocationSemantics::AtLeastOnce,
    ] {
        let (delivered, total, dups, hits) = run_cell(sem);
        let pct = 100.0 * delivered as f64 / CALLS as f64;
        println!("| {sem} | {delivered}/{CALLS} | {pct:.1} | {total} | {dups} | {hits} |");
        match sem {
            InvocationSemantics::AtMostOnce => {
                assert_eq!(dups, 0, "E19a: at-most-once duplicated an execution");
                assert!(
                    pct >= 99.9,
                    "E19a: at-most-once delivery {pct:.2}% under bounded loss"
                );
            }
            InvocationSemantics::AtLeastOnce => assert!(
                pct >= 99.9,
                "E19a: at-least-once delivery {pct:.2}% under bounded loss"
            ),
            InvocationSemantics::Maybe => {}
        }
    }
    println!();
    println!("(`maybe` rides the ledger-less legacy path, so its exec columns read 0;");
    println!("its delivery column is the real fire-and-forget loss rate.)");
    println!();

    // ── E19b: soak mode catches a 2× latency regression ─────────────
    // A 60-simulated-second soak (~114 semantic calls, ~28 hostile
    // publishes, checkpoints, stream subscribers) with `SlowLinks{2}`
    // injected at half-horizon. The clean twin must be green; the
    // regressed twin must trip `perf.soak-rpc-p99`, and ddmin must
    // shrink the failure to its kernel.
    println!("### E19b — 60 sim-s soak, 2x link-latency regression at t+30s (seed 5)");
    println!();
    let mut cfg = SoakConfig::ci();
    let clean = soak::soak(5, &cfg);
    cfg.slow_link = Some((cfg.horizon_ms / 2, 2));
    let regressed = soak::soak(5, &cfg);

    println!("| run | driver | steps | perf violations | wall (ms) |");
    println!("|---|---|---|---|---|");
    let mut regressed_red = false;
    for (label, sc) in [("clean", &clean), ("regressed", &regressed)] {
        for (dname, driver) in [
            ("serial", DriverKind::Serial),
            ("parallel(3)", DriverKind::Parallel),
        ] {
            let t0 = Instant::now();
            let report = exec::run(sc, driver);
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let perf = report
                .violations
                .iter()
                .filter(|v| v.invariant.starts_with("perf."))
                .count();
            println!(
                "| {label} | {dname} | {} | {perf} | {wall_ms:.1} |",
                sc.steps.len()
            );
            match label {
                "clean" => assert_eq!(
                    report.violations.len(),
                    0,
                    "E19b: clean soak turned red: {:?}",
                    report.violations
                ),
                _ => {
                    assert!(perf > 0, "E19b: regression escaped the perf oracles");
                    regressed_red = true;
                }
            }
        }
    }
    assert!(regressed_red);
    println!();

    let t0 = Instant::now();
    let mut pred = |s: &Scenario| {
        exec::run(s, DriverKind::Serial)
            .violations
            .iter()
            .any(|v| v.invariant == "perf.soak-rpc-p99")
    };
    let (min, stats) = shrink::shrink(&regressed, &mut pred, 2_000);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(
        stats.to_steps <= 10,
        "E19b: shrink stalled at {} steps",
        stats.to_steps
    );
    assert!(
        min.steps.iter().any(|s| matches!(s.op, Op::SlowLinks { .. })),
        "E19b: shrink lost the regression step"
    );
    println!(
        "ddmin: {} -> {} steps in {} evals ({wall_ms:.1} ms); kernel retains the",
        stats.from_steps, stats.to_steps, stats.evals
    );
    println!("`SlowLinks` injection plus one probe call — pinned as");
    println!("`tests/repros/soak-slowlinks-p99.redrepro`.");
    println!();
}

/// E17 — the federated base fabric: directory-tier lookup scaling
/// (worst-case leaf-to-leaf path through the registrar tree) and the
/// re-delivery-free roaming handoff between replicated halls.
fn e17_federation() {
    use pmp_bench::{fed_handoff_run, fed_lookup_run};

    println!("## E17 — federated base fabric (directory lookups + roaming handoff)");
    println!();
    println!("Lookup scaling: a 4-ary registrar tree over N bases; the query starts");
    println!("at the deepest leftmost leaf, the service lives at the deepest rightmost");
    println!("leaf. Hops must grow O(log N), never O(N) — no flat broadcast.");
    println!();
    println!("| bases | hops (worst-case path) | sim latency (ms) | found |");
    println!("|---|---|---|---|");
    for bases in [4usize, 16, 64, 256, 1024] {
        let r = fed_lookup_run(bases, 4);
        println!(
            "| {} | {} | {:.1} | {} |",
            r.bases, r.hops, r.latency_ms, r.found
        );
    }
    println!();
    let h = fed_handoff_run();
    println!("Roaming handoff between federated halls (production-halls world,");
    println!("catalogs converged by anti-entropy before the roam):");
    println!();
    println!("| metric | value |");
    println!("|---|---|");
    println!("| extensions installed at roam time | {} |", h.roamed_exts);
    println!("| grants migrated (rebound in place) | {} |", h.migrated);
    println!("| re-`Deliver` messages for the roamed set | {} |", h.redelivered);
    println!("| movement records at the adopting base | {} |", h.movements);
    println!("| adoption latency after the move (sim ms) | {:.0} |", h.adopt_ms);
    println!();
}

/// `--dump-opt-report`: prints the deterministic weave-time
/// optimization report for every shipped extension package (what a
/// base logs under [`pmp_midas::ShipMode::Optimized`]).
fn dump_opt_reports() {
    let packages: Vec<(&str, pmp_midas::ExtensionPackage)> = vec![
        ("monitoring", pmp_extensions::monitoring::package(1)),
        ("session", pmp_extensions::session::package("* DrawingService.*(..)", 1)),
        (
            "access-control",
            pmp_extensions::access_control::package("* DrawingService.*(..)", &["op:1"], 1),
        ),
        ("encryption", pmp_extensions::encryption::package(0x42, 1)),
        ("geofence", pmp_extensions::geofence::package(0, 0, 30, 30, 1)),
        ("billing", pmp_extensions::billing::package("* Motor.*(..)", 2, 1)),
        ("persistence", pmp_extensions::persistence::package("Robot.state", 1)),
        (
            "transactions",
            pmp_extensions::transactions::package("* Svc.tx*(..)", "Svc", &["a", "b"], 1),
        ),
        ("agegate", pmp_extensions::agegate::package("* Svc.*(..)", 1_000, 1)),
        ("replication", pmp_extensions::replication::package(1)),
        ("bench guard (E16)", pmp_bench::guard_package()),
    ];
    println!("# weave-time optimization reports");
    println!();
    for (label, pkg) in packages {
        let (_, report) = pmp_midas::optimize_package(&pkg);
        println!("## {label} ({})", pkg.meta.id);
        println!();
        println!("```");
        print!("{report}");
        println!("```");
        println!();
    }
}

/// E16 — DESIGN.md §14: the weave-time optimizer on the E2 workload.
/// The guard package's advice is authored with a constant guard and a
/// virtual rate-limit probe; shipped as authored it pays the full
/// script-advice dispatch, shipped optimized it collapses to a bare
/// `Ret` with hooks hoisted. Target: optimized shipped-script advice
/// within 2× of native advice.
fn e16_weave_opt() {
    println!("## E16 — weave-time optimization of shipped advice (target: optimized ≤ 2× native)");
    println!();
    // Interleaved min-of-3 (like E15's dispatch row) so drift hits all
    // legs equally.
    let mut base = f64::INFINITY;
    let mut native = f64::INFINITY;
    let mut original = f64::INFINITY;
    let mut optimized = f64::INFINITY;
    for _ in 0..3 {
        let (mut vm, obj) = ping_vm(PingMode::NoStubs);
        base = base.min(measure_ns(20_000, || ping_once(&mut vm, &obj)));
        let (mut vm, obj) = ping_vm(PingMode::NativeAdvice);
        native = native.min(measure_ns(20_000, || ping_once(&mut vm, &obj)));
        let (mut vm, obj) = ping_vm_shipped(false);
        original = original.min(measure_ns(20_000, || ping_once(&mut vm, &obj)));
        let (mut vm, obj) = ping_vm_shipped(true);
        optimized = optimized.min(measure_ns(20_000, || ping_once(&mut vm, &obj)));
    }
    let native_add = native - base;
    println!("| configuration | ns/call | advice cost vs no-stubs | vs native advice |");
    println!("|---|---|---|---|");
    println!("| no stubs (baseline) | {base:.0} | — | — |");
    println!("| native do-nothing advice | {native:.0} | {native_add:+.0} ns | 1.0× |");
    for (label, ns) in [
        ("guard advice, shipped as authored", original),
        ("guard advice, shipped optimized", optimized),
    ] {
        let add = ns - base;
        println!(
            "| {label} | {ns:.0} | {add:+.0} ns | {:.1}× |",
            add / native_add
        );
    }
    let (_, report) = pmp_midas::optimize_package(&pmp_bench::guard_package());
    println!();
    println!("Optimization report for the guard package:");
    println!();
    println!("```");
    print!("{report}");
    println!("```");
    println!();
}

/// E15 — DESIGN.md §13: wall-clock cost of causal tracing on the
/// workloads it instruments. Envelopes always carry their 16 context
/// bytes, so the two legs replay identical network events — the
/// digests printed prove it — and the delta is purely the span
/// mint/drain/collect machinery. Target: ≤3%.
fn e15_tracing_overhead() {
    println!("## E15 — tracing overhead: identical workloads, tracer off vs on (target ≤3%)");
    println!();
    // Row 1: the E2 hot path. Dispatch carries zero tracing
    // instrumentation by design (interception is detected from the
    // existing dispatch counter at epoch barriers), so the delta here
    // is the regression guard for that claim.
    let (mut d_off, mut d_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        // Interleave the legs so drift (thermal, allocator layout)
        // hits both; min-of-3 medians is the stable statistic for a
        // pure-CPU microbench.
        d_off = d_off.min(dispatch_overhead_ns(false));
        d_on = d_on.min(dispatch_overhead_ns(true));
    }
    println!("| workload | off | on | overhead |");
    println!("|---|---|---|---|");
    println!(
        "| E2 woven dispatch (ns/call) | {d_off:.0} | {d_on:.0} | {:+.1}% |",
        (d_on / d_off - 1.0) * 100.0
    );

    // Rows 2–3: wall-clock workloads, interleaved best-of-5 per leg
    // (single runs of these few-ms workloads swing by ±15%, and
    // alternating legs keeps host-noise spikes from biasing one side).
    let best_pair = |run: &dyn Fn(bool) -> TraceOverheadResult| {
        let (mut off, mut on) = (run(false), run(true));
        for _ in 0..4 {
            let o = run(false);
            let n = run(true);
            assert_eq!(o.trace_digest, off.trace_digest, "E15 repeat diverged");
            assert_eq!(n.trace_digest, on.trace_digest, "E15 repeat diverged");
            if o.wall_ms < off.wall_ms {
                off = o;
            }
            if n.wall_ms < on.wall_ms {
                on = n;
            }
        }
        (off, on)
    };
    let rows: [(&str, &dyn Fn(bool) -> TraceOverheadResult); 2] = [
        ("E6 distribution (64 nodes, traced publish, ms)", &|on| {
            distribution_overhead_run(64, on)
        }),
        ("worst case: every op traced (400 RPCs, ms)", &|on| {
            traced_rpc_overhead_run(400, on)
        }),
    ];
    for (label, run) in rows {
        let (off, on) = best_pair(run);
        assert_eq!(off.spans_retained, 0, "E15({label}): untraced leg minted spans");
        assert!(on.spans_retained > 0, "E15({label}): traced leg traced nothing");
        println!(
            "| {label} | {:.1} | {:.1} | {:+.1}% ({} spans, digests {}) |",
            off.wall_ms,
            on.wall_ms,
            (on.wall_ms / off.wall_ms - 1.0) * 100.0,
            on.spans_retained,
            if on.trace_digest == off.trace_digest {
                "match"
            } else {
                "DIVERGED"
            },
        );
    }
    println!();
    println!(
        "The worst-case row is the per-span cost ceiling, not a workload \
         target: every ~20 µs operation mints an `rpc.call` root span \
         that rides the WAL with full movement-record durability \
         (~3 µs/span). The ≤3% target applies to the E2/E6 rows, where \
         spans mint at adaptation events rather than per operation."
    );
    println!();
}

/// E1 — §4.6: "an overhead of about 7% (measured using a SPECjvm
/// benchmark) could be observed" for hooks active, no extensions.
fn e1_spec_overhead() {
    println!("## E1 — platform-active overhead on the spec suite (paper: ≈7%)");
    println!();
    println!("| program | no stubs (ms) | stubs, no aspects (ms) | overhead |");
    println!("|---|---|---|---|");
    let mut total_off = 0.0;
    let mut total_on = 0.0;
    for name in PROGRAM_NAMES {
        let (mut vm_off, suite_off) = suite_vm(false);
        let (mut vm_on, suite_on) = suite_vm(true);
        let t_off = measure_ns(3, || {
            suite_off.run_one(&mut vm_off, name, Size::Small).unwrap();
        }) / 1e6;
        let t_on = measure_ns(3, || {
            suite_on.run_one(&mut vm_on, name, Size::Small).unwrap();
        }) / 1e6;
        total_off += t_off;
        total_on += t_on;
        println!(
            "| {name} | {t_off:.3} | {t_on:.3} | {:+.1}% |",
            (t_on / t_off - 1.0) * 100.0
        );
    }
    println!(
        "| **suite total** | {total_off:.3} | {total_on:.3} | **{:+.1}%** |",
        (total_on / total_off - 1.0) * 100.0
    );
    println!();
}

/// E2 — §4.6: void non-intercepted interface call ≈700 ns; performed
/// interception ≈900 ns extra (P2/500 MHz, JVM).
fn e2_interception() {
    println!("## E2 — interception micro-costs (paper: 700 ns base call, +900 ns per interception)");
    println!();
    println!("| configuration | ns/call | vs no-stubs |");
    println!("|---|---|---|");
    let mut base = 0.0;
    let mut last_vm = None;
    for (label, mode) in [
        ("no stubs (unmodified runtime)", PingMode::NoStubs),
        ("stubs in, hook inactive", PingMode::InactiveHook),
        ("active do-nothing native advice", PingMode::NativeAdvice),
        ("active do-nothing script advice", PingMode::ScriptAdvice),
    ] {
        let (mut vm, obj) = ping_vm(mode);
        let ns = measure_ns(20_000, || ping_once(&mut vm, &obj));
        if mode == PingMode::NoStubs {
            base = ns;
        }
        println!("| {label} | {ns:.0} | {:+.0} ns |", ns - base);
        last_vm = Some(vm);
    }
    println!();
    if let Some(vm) = last_vm {
        println!("### VM telemetry snapshot (script-advice configuration)");
        println!();
        println!("```");
        print!("{}", vm.telemetry().render_table());
        println!("```");
        println!();
    }
}

/// E3 — §4.6: "in all cases the cost of the interceptions was much
/// less than the cost of executing the additional functionality".
fn e3_extension_cost() {
    println!("## E3 — extension cost vs interception cost (paper: functionality ≫ interception)");
    println!();
    println!("| extension | ns/call | added vs baseline | vs pure interception |");
    println!("|---|---|---|---|");
    let mut baseline = 0.0;
    let mut interception = 0.0;
    for (label, ext) in [
        ("none (baseline)", ServiceExt::None),
        ("do-nothing advice (interception only)", ServiceExt::Nop),
        ("security (session + access control)", ServiceExt::Security),
        ("ad-hoc transactions", ServiceExt::Transactions),
        ("orthogonal persistence", ServiceExt::Persistence),
    ] {
        let (mut vm, obj) = service_vm(ext);
        let ns = measure_ns(2_000, || service_call(&mut vm, &obj, 20));
        match ext {
            ServiceExt::None => baseline = ns,
            ServiceExt::Nop => interception = ns,
            _ => {}
        }
        let added = ns - baseline;
        let vs = if ext == ServiceExt::None || ext == ServiceExt::Nop {
            "—".to_string()
        } else {
            format!("{:.1}×", added / (interception - baseline).max(1.0))
        };
        println!("| {label} | {ns:.0} | {added:+.0} ns | {vs} |");
    }
    println!();
}

/// E4 — Fig. 1's run-time adaptation process: weave/unweave latency as
/// a function of matched join points.
fn e4_weaving() {
    println!("## E4 — weave + unweave latency vs matched join points (Fig. 1 process)");
    println!();
    println!("| join points | weave+unweave (µs) |");
    println!("|---|---|");
    for (classes, methods) in [(1, 10), (4, 25), (10, 100), (40, 250)] {
        let mut vm = weave_target_vm(classes, methods);
        let prose = pmp_prose::Prose::attach(&mut vm);
        let n = weave_unweave_once(&mut vm, &prose);
        let us = measure_ns(20, || {
            weave_unweave_once(&mut vm, &prose);
        }) / 1e3;
        println!("| {n} | {us:.1} |");
    }
    println!();
}

/// E5 — Fig. 2c: cost of a service call before vs after full
/// adaptation (session + access control + monitoring).
fn e5_adapted_call() {
    println!("## E5 — service call unadapted vs fully adapted (Fig. 2c pipeline)");
    println!();
    let (mut plain, probot) = adapted_robot(false);
    let ns_plain = measure_ns(500, || adapted_call(&mut plain, probot, 3, 3));
    let (mut full, frobot) = adapted_robot(true);
    let ns_full = measure_ns(500, || adapted_call(&mut full, frobot, 3, 3));
    println!("| configuration | ns/call |");
    println!("|---|---|");
    println!("| unadapted `DrawingService.moveTo` | {ns_plain:.0} |");
    println!("| adapted (session + access-control + monitoring) | {ns_full:.0} |");
    println!(
        "| adaptation overhead | {:+.0} ns ({:.2}×) |",
        ns_full - ns_plain,
        ns_full / ns_plain
    );
    println!();
}

/// E6 — §3.2 distribution: time for the base to adapt N newcomers, and
/// the message cost (deterministic simulated time).
fn e6_distribution() {
    println!("## E6 — distribution scalability (simulated time, deterministic)");
    println!();
    println!("| nodes | time to all adapted (sim s) | total messages | msgs/node |");
    println!("|---|---|---|---|");
    for n in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        let r = distribution_run(n);
        println!(
            "| {} | {:.2} | {} | {:.0} |",
            r.nodes,
            r.time_to_all_adapted_s,
            r.messages,
            r.messages as f64 / r.nodes as f64
        );
    }
    println!();
}

/// E7 — §3.2 revocation: autonomous withdrawal latency after leaving,
/// as a function of the lease period.
fn e7_revocation() {
    println!("## E7 — revocation latency vs lease period (simulated time)");
    println!();
    println!("| lease (s) | revocation latency after departure (s) | latency/lease |");
    println!("|---|---|---|");
    for lease_s in [1u64, 2, 4, 8] {
        let r = revocation_run(lease_s * SEC);
        println!(
            "| {:.0} | {:.2} | {:.2} |",
            r.lease_s,
            r.revocation_latency_s,
            r.revocation_latency_s / r.lease_s
        );
    }
    println!();
}

/// E8 — Fig. 3b / §4.4: the monitoring pipeline end to end.
fn e8_monitoring_pipeline() {
    println!("## E8 — monitoring pipeline (Fig. 3b: intercept → send → store)");
    println!();
    let mut w = pmp_core::scenario::ProductionHalls::build(55);
    w.platform.pump(6 * SEC);
    for (x0, y0, x1, y1) in [(0, 0, 10, 0), (10, 0, 10, 10)] {
        w.platform.rpc(
            w.base_a,
            w.robot,
            "operator:1",
            "DrawingService",
            "drawLine",
            vec![x0, y0, x1, y1],
        );
        w.platform.pump(SEC);
    }
    w.platform.pump(3 * SEC);
    let hw_actions = w
        .platform
        .node(w.robot)
        .robot
        .as_ref()
        .unwrap()
        .lock()
        .rcx
        .log()
        .len();
    let store = &w.platform.base(w.base_a).store;
    println!("| metric | value |");
    println!("|---|---|");
    println!("| hardware commands executed | {hw_actions} |");
    println!("| records in the hall database | {} |", store.len());
    println!(
        "| motor rotations logged | {} |",
        store
            .by_robot("robot:1:1")
            .iter()
            .filter(|r| r.command == "Motor.rotate")
            .count()
    );
    println!("| strokes drawn | {} |", w.platform.node(w.robot).canvas().unwrap().len());
    println!();
    println!("### Platform telemetry snapshot (hall A world)");
    println!();
    println!("```");
    print!("{}", w.platform.render_telemetry());
    println!("```");
    println!();
    // The journal re-exports the same run as structured events; show
    // the tail as JSON lines.
    let jsonl = w.platform.telemetry().to_json_lines();
    let lines: Vec<&str> = jsonl.lines().collect();
    println!("### Journal tail ({} JSON lines total)", lines.len());
    println!();
    println!("```json");
    for line in lines.iter().rev().take(5).rev() {
        println!("{line}");
    }
    println!("```");
    println!();
}

/// E9 — §3.1/§3.2 security: the outcomes that must hold.
fn e9_security() {
    println!("## E9 — security outcomes");
    println!();
    use pmp_crypto::KeyPair;
    use pmp_midas::SignedExtension;
    let mut w = pmp_core::scenario::ProductionHalls::build(71);
    // Inject a hostile package signed by an unknown key before pumping.
    let mallory = KeyPair::from_seed(b"mallory");
    let evil = pmp_extensions::monitoring::package_with_sink("evil", "monitor.post", 9);
    let sealed = SignedExtension::seal("mallory", &mallory, &evil);
    w.platform.base_mut(w.base_a).base.catalog.put(sealed);
    w.platform.pump(6 * SEC);
    let node = w.platform.node(w.robot);
    let untrusted_rejected = !node.receiver.is_installed("ext/evil");
    let legit_installed = node.receiver.is_installed("ext/monitoring");
    println!("| check | result |");
    println!("|---|---|");
    println!("| extension from untrusted signer rejected | {untrusted_rejected} |");
    println!("| legitimate extensions unaffected | {legit_installed} |");
    // Sandbox: permissions cap sys ops even with valid signatures —
    // demonstrated by the prose-level fixture.
    let (mut vm, obj) = ping_vm(PingMode::ScriptAdvice);
    ping_once(&mut vm, &obj); // no permissions needed by nop
    println!("| sandboxed script advice executes under empty permissions | true |");
    println!();
}

/// Ablations called out in DESIGN.md §3: the per-package delivery-path
/// costs (signature verification, codec) and loss tolerance.
/// E13 — DESIGN.md §11: the WAL write path, the group-commit batch
/// size trade-off (simulated fsyncs vs CPU), and recovery time as a
/// function of log length.
fn e13_durability() {
    println!("## E13 — durability: WAL append throughput, group commit, recovery");
    println!();
    println!("### E13a/b — append throughput vs group-commit batch (20k × 48-byte records)");
    println!();
    println!("| batch | syncs | wall (ms) | records/s | MB/s |");
    println!("|---|---|---|---|---|");
    for batch in [1usize, 8, 64, 256] {
        let r = wal_append_run(20_000, 48, batch);
        println!(
            "| {} | {} | {:.1} | {:.0} | {:.1} |",
            r.batch, r.syncs, r.wall_ms, r.records_per_s, r.mb_per_s
        );
    }
    println!();
    println!("### E13c — recovery time vs log length (batch 32, verified replay)");
    println!();
    println!("| records | recover (ms) | replayed | verified |");
    println!("|---|---|---|---|");
    for records in [1_000usize, 10_000, 100_000] {
        let r = recovery_run(records);
        assert!(r.verified, "E13c({records}): replay diverged from the writer");
        println!(
            "| {} | {:.1} | {} | {} |",
            r.records,
            r.recover_ms,
            r.replayed,
            if r.verified { "yes" } else { "NO" }
        );
    }
    println!();
}

/// E14 — DESIGN.md §12: chaos-harness throughput (full generate +
/// execute + oracle cycles per second under each epoch driver) and the
/// cost of delta-debug shrinking a failure to its kernel.
fn e14_chaos() {
    use pmp_chaos::{exec, gen, shrink, DriverKind, GenConfig, Op};
    use std::time::Instant;

    println!("## E14 — chaos harness: scenario throughput and shrink cost");
    println!();
    let cfg = GenConfig::default();
    const SEEDS: u64 = 24;

    println!(
        "### E14a — seeded scenarios/sec (seeds 0..{SEEDS}, {} steps each, oracles on)",
        cfg.steps
    );
    println!();
    println!("| driver | scenarios | wall (ms) | scenarios/s | violations |");
    println!("|---|---|---|---|---|");
    for (label, kind) in [
        ("serial", DriverKind::Serial),
        ("parallel(3)", DriverKind::Parallel),
    ] {
        let t0 = Instant::now();
        let mut violations = 0usize;
        for seed in 0..SEEDS {
            let sc = gen::generate(seed, &cfg);
            violations += exec::run(&sc, kind).violations.len();
        }
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(violations, 0, "E14a({label}): clean seeds turned red");
        println!(
            "| {label} | {SEEDS} | {wall_ms:.1} | {:.1} | {violations} |",
            f64::from(SEEDS as u32) / (wall_ms / 1e3)
        );
    }
    println!();

    // Shrink cost against a structural predicate shaped like the real
    // seed-20 kernel (crash → bit flip on the same base → restart), so
    // every evaluation pays the full execute-and-check price the
    // shrinker pays in anger without depending on a live bug.
    println!("### E14b — ddmin shrink cost (crash/bit-flip/restart kernel predicate)");
    println!();
    println!("| seed | steps before | steps after | evals | wall (ms) |");
    println!("|---|---|---|---|---|");
    let has_kernel = |sc: &pmp_chaos::Scenario| {
        let mut crash_at: Option<(u8, usize)> = None;
        let mut flip_at: Option<(u8, usize)> = None;
        for (i, s) in sc.steps.iter().enumerate() {
            match s.op {
                Op::CrashBase { base } if crash_at.is_none() => crash_at = Some((base, i)),
                Op::InjectBitFlip { base, .. }
                    if crash_at.is_some_and(|(b, j)| b == base && j < i)
                        && flip_at.is_none() =>
                {
                    flip_at = Some((base, i));
                }
                Op::RestartBase { base }
                    if flip_at.is_some_and(|(b, j)| b == base && j < i) =>
                {
                    return true;
                }
                _ => {}
            }
        }
        false
    };
    let mut shrunk = 0;
    for seed in 0..64u64 {
        if shrunk == 4 {
            break;
        }
        let sc = gen::generate(seed, &cfg);
        if !has_kernel(&sc) {
            continue;
        }
        shrunk += 1;
        let t0 = Instant::now();
        let mut evals_run = |s: &pmp_chaos::Scenario| {
            // Execute for realism, then decide structurally.
            let _ = exec::run(s, DriverKind::Serial);
            has_kernel(s)
        };
        let (min, stats) = shrink::shrink(&sc, &mut evals_run, 2_000);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(has_kernel(&min), "E14b({seed}): shrink lost the kernel");
        println!(
            "| {seed} | {} | {} | {} | {wall_ms:.1} |",
            stats.from_steps, stats.to_steps, stats.evals
        );
    }
    println!();
}

fn ablations() {
    println!("## Ablations — delivery-path costs and loss tolerance");
    println!();
    use pmp_crypto::KeyPair;
    use pmp_midas::SignedExtension;
    let pair = KeyPair::from_seed(b"ablation");
    let pkg = pmp_extensions::monitoring::package(1);
    let sealed = SignedExtension::seal("ablation", &pair, &pkg);
    let mut trust = pmp_crypto::TrustStore::new();
    trust.add(pmp_crypto::Principal::new("ablation", pair.public_key()));

    let ns_seal = measure_ns(200, || {
        let _ = SignedExtension::seal("ablation", &pair, &pkg);
    });
    let ns_verify = measure_ns(200, || {
        sealed.verify_and_open(&trust).expect("verifies");
    });
    let ns_open = measure_ns(200, || {
        sealed.open().expect("decodes");
    });
    let bytes = pmp_wire::to_bytes(&sealed);
    let ns_decode = measure_ns(500, || {
        let _: SignedExtension = pmp_wire::from_bytes(&bytes).expect("decodes");
    });
    println!("| delivery-path step | µs/package |");
    println!("|---|---|");
    println!("| sign (base side, once per package) | {:.1} |", ns_seal / 1e3);
    println!("| verify signature + decode (receiver, per delivery) | {:.1} |", ns_verify / 1e3);
    println!("| decode only (no verification — the ablated path) | {:.1} |", ns_open / 1e3);
    println!("| wire-decode the signed envelope ({} bytes) | {:.1} |", bytes.len(), ns_decode / 1e3);
    println!();
    // Loss tolerance: how long adaptation takes under increasing loss.
    println!("| link loss | adapted within (sim s) |");
    println!("|---|---|");
    for loss in [0.0f64, 0.1, 0.2, 0.4] {
        let secs = lossy_adaptation_time(loss);
        match secs {
            Some(s) => println!("| {:.0}% | {s:.2} |", loss * 100.0),
            None => println!("| {:.0}% | not within 120 s |", loss * 100.0),
        }
    }
    println!();
}

/// Sim-time until a single device is adapted under `loss` probability.
fn lossy_adaptation_time(loss: f64) -> Option<f64> {
    use pmp_net::{LinkModel, Position};
    use pmp_vm::perm::{Permission, Permissions};
    let mut p = pmp_core::Platform::with_link(4242, LinkModel::lossy(loss));
    p.add_area("hall", Position::new(0.0, 0.0), Position::new(60.0, 60.0));
    let base = p.add_base("hall", Position::new(30.0, 30.0), 80.0);
    let pkg = pmp_extensions::billing::package("* Motor.*(..)", 1, 1);
    let sealed = p.base(base).seal(&pkg);
    p.base_mut(base).base.catalog.put(sealed);
    let policy = p.trusting_policy(&[base], Permissions::none().with(Permission::Net));
    let dev = p
        .add_device("pda:0", Position::new(35.0, 30.0), 80.0, policy)
        .expect("device");
    let mut elapsed = 0u64;
    while elapsed < 120 * SEC {
        p.pump(SEC / 10);
        elapsed += SEC / 10;
        if p.node(dev).receiver.is_installed("ext/billing") {
            return Some(p.now().as_secs_f64());
        }
    }
    None
}

/// E10 — §4.6: extension conciseness ("a few days sufficed for the
/// student to be able to program extensions"; Fig. 5 is ~10 lines).
fn e10_conciseness() {
    println!("## E10 — extension conciseness (Fig. 5's HwMonitoring is ~10 lines of Java)");
    println!();
    println!("| extension | advice methods | bytecode ops | wire size (bytes) |");
    println!("|---|---|---|---|");
    let packages = [
        pmp_extensions::monitoring::package(1),
        pmp_extensions::session::package("* DrawingService.*(..)", 1),
        pmp_extensions::access_control::package("* DrawingService.*(..)", &["op:1"], 1),
        pmp_extensions::encryption::package(0x42, 1),
        pmp_extensions::geofence::package(0, 0, 30, 30, 1),
        pmp_extensions::billing::package("* Motor.*(..)", 2, 1),
        pmp_extensions::persistence::package("Robot.state", 1),
        pmp_extensions::transactions::package("* Svc.tx*(..)", "Svc", &["a", "b"], 1),
        pmp_extensions::agegate::package("* Svc.*(..)", 1_000, 1),
        pmp_extensions::replication::package(1),
    ];
    for pkg in packages {
        let methods = pkg.aspect.class.methods.len();
        let ops: usize = pkg.aspect.class.methods.iter().map(|m| m.body.ops.len()).sum();
        let wire = pmp_wire::to_bytes(&pkg).len();
        println!("| {} | {methods} | {ops} | {wire} |", pkg.meta.id);
    }
    println!();
}

/// E11 — admission-gate cost: the static analysis a receiver pays per
/// delivered extension (absent from the paper, which admits on
/// signature alone), next to the signature check it already pays.
fn e11_verification_cost() {
    use pmp_analyze::{perms, termination, verifier, AnalyzeOptions, Severity, SysPerm};
    use pmp_crypto::{KeyPair, Principal, TrustStore};
    use pmp_extensions::support::{register_session_blackboard, register_sink};
    use pmp_midas::SignedExtension;
    use pmp_vm::op::Op;
    use pmp_vm::perm::{Permission, Permissions};
    use pmp_vm::prelude::{Value, Vm, VmConfig};
    use std::sync::Arc;

    println!("## E11 — static-analysis admission gate: per-pass cost and verdict");
    println!();
    println!("| extension | verdict | sig verify (µs) | bytecode (µs) | perms (µs) | termination (µs) | gate total (µs) |");
    println!("|---|---|---|---|---|---|---|");

    // A VM wired like a platform node, so every sys op resolves.
    let mut vm = Vm::new(VmConfig::default());
    register_session_blackboard(&mut vm);
    register_sink(&mut vm, "monitor.post", Some(Permission::Net));
    register_sink(&mut vm, "replicate.post", Some(Permission::Net));
    register_sink(&mut vm, "billing.charge", Some(Permission::Net));
    register_sink(&mut vm, "persist.put", Some(Permission::Store));
    vm.register_sys("session.caller", None, Arc::new(|_vm, _args| Ok(Value::Null)));

    let authority = KeyPair::from_seed(b"bench:authority");
    let mut trust = TrustStore::default();
    trust.add(Principal::new("bench:authority", authority.public_key()));

    let mut packages = vec![
        pmp_extensions::monitoring::package(1),
        pmp_extensions::session::package("* DrawingService.*(..)", 1),
        pmp_extensions::access_control::package("* DrawingService.*(..)", &["op:1"], 1),
        pmp_extensions::encryption::package(0x42, 1),
        pmp_extensions::geofence::package(0, 0, 30, 30, 1),
        pmp_extensions::billing::package("* Motor.*(..)", 2, 1),
        pmp_extensions::persistence::package("Robot.state", 1),
        pmp_extensions::transactions::package("* Svc.tx*(..)", "Svc", &["a", "b"], 1),
        pmp_extensions::agegate::package("* Svc.*(..)", 1_000, 1),
        pmp_extensions::replication::package(1),
    ];
    // A deliberately unsound package (underflowing advice) as the
    // rejected control.
    let mut evil = pmp_extensions::monitoring::package(1);
    evil.meta.id = "ext/underflow".into();
    if let Some(m) = evil.aspect.class.methods.first_mut() {
        m.body.ops.insert(0, Op::Pop);
    }
    packages.push(evil);

    for pkg in packages {
        let declared = Permissions::from_names(pkg.meta.permissions.iter().map(String::as_str));
        let reg = vm.sys_registry();
        let resolver = |name: &str| match reg.lookup(name) {
            Some(idx) => match reg.perm_of(idx) {
                Some(p) => SysPerm::Guarded(p),
                None => SysPerm::Unguarded,
            },
            None => SysPerm::Unknown,
        };
        let opts = AnalyzeOptions::default();

        let sealed = SignedExtension::seal("bench:authority", &authority, &pkg);
        let t_sig = measure_ns(200, || {
            sealed.verify_and_open(&trust).unwrap();
        }) / 1e3;
        let t_ver = measure_ns(500, || {
            verifier::verify_class(&pkg.aspect.class, &opts);
        }) / 1e3;
        let t_perm = measure_ns(500, || {
            perms::check_permissions(&pkg.aspect, declared, &resolver);
        }) / 1e3;
        let t_term = measure_ns(500, || {
            termination::check_class(&pkg.aspect.class, &opts);
        }) / 1e3;

        let report = pmp_analyze::analyze_aspect(&pkg.aspect, declared, &resolver, &opts);
        let verdict = if report.rejects(Severity::Error) {
            "REJECT"
        } else {
            "accept"
        };
        println!(
            "| {} | {verdict} | {t_sig:.2} | {t_ver:.2} | {t_perm:.2} | {t_term:.2} | {:.2} |",
            pkg.meta.id,
            t_ver + t_perm + t_term
        );
    }
    println!();
}

/// E12 — sharded execution: serial vs parallel driver wall-clock on
/// the E6 distribution workload, with the determinism digests printed
/// so any divergence is visible at a glance. Speedup only materialises
/// on a multi-core host; on one core the parallel driver degrades to
/// the serial pipeline and the interesting column is "digests".
fn e12_driver_scaling() {
    use pmp_core::{ParallelDriver, SerialDriver};

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("## E12 — parallel driver scaling on the E6 distribution workload");
    println!();
    println!("(host parallelism: {cores} — speedup > 1 needs a multi-core host)");
    println!();
    println!("| nodes | serial (ms) | parallel (ms) | speedup | trace digest | journal digest | digests match |");
    println!("|---|---|---|---|---|---|---|");
    let best_of = |mk: &dyn Fn() -> pmp_bench::DriverScalingResult| {
        let mut best = mk();
        for _ in 0..2 {
            let r = mk();
            assert_eq!(r.trace_digest, best.trace_digest, "E12 repeat diverged");
            if r.wall_ms < best.wall_ms {
                best = r;
            }
        }
        best
    };
    for n in [8usize, 16, 64] {
        let s = best_of(&|| driver_scaling_run(n, Box::new(SerialDriver)));
        let p = best_of(&|| driver_scaling_run(n, Box::new(ParallelDriver::default())));
        assert!(s.all_adapted && p.all_adapted, "E12({n}): adaptation never converged");
        let matches = s.trace_digest == p.trace_digest && s.journal_digest == p.journal_digest;
        println!(
            "| {} | {:.1} | {:.1} | {:.2}x | {:016x} | {:016x} | {} |",
            n,
            s.wall_ms,
            p.wall_ms,
            s.wall_ms / p.wall_ms,
            s.trace_digest,
            s.journal_digest,
            if matches { "yes" } else { "NO — DIVERGED" },
        );
    }
    // A pinned many-worker run exercises the threaded path even where
    // available_parallelism() is 1 (ParallelDriver::default would fall
    // back inline), so the digest proof never silently degrades.
    let s = driver_scaling_run(64, Box::new(SerialDriver));
    let p4 = driver_scaling_run(64, Box::new(ParallelDriver { threads: 4 }));
    println!();
    println!(
        "64-node pinned 4-thread check: trace {} journal {}",
        if s.trace_digest == p4.trace_digest { "match" } else { "DIVERGED" },
        if s.journal_digest == p4.journal_digest { "match" } else { "DIVERGED" },
    );
    println!();
}
