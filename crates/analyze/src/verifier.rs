//! Pass 1 — the abstract-interpretation bytecode verifier.
//!
//! Plays the role of the JVM's built-in verifier for our portable
//! bytecode: a worklist dataflow over the instructions of each shipped
//! method, tracking the one abstract fact the interpreter's safety
//! depends on — the operand-stack depth at every pc. The pass checks:
//!
//! * stack underflow and overflow at every instruction,
//! * jump targets in bounds,
//! * a single consistent stack depth at every merge point (the
//!   interpreter has no per-path stacks, so disagreeing depths mean
//!   one path underflows or leaks),
//! * `Load`/`Store` slots within `this + params + extra_locals`,
//! * call-arity consistency for calls that resolve within the shipped
//!   class itself,
//! * no fall-through past the last instruction (the interpreter treats
//!   it as an implicit `Ret`, but shipped code relying on that is
//!   almost always a mis-assembled body),
//! * exception-handler ranges and targets in bounds (handler entry
//!   starts with the exception message as the only stack slot).
//!
//! Types are *not* tracked: a depth-safe program may still raise a
//! `TypeException` at run time, which the sandbox converts into an
//! ordinary advice fault. Depth safety is what keeps the interpreter's
//! own invariants intact.

use crate::{AnalyzeOptions, Finding, Pass, Severity};
use pmp_prose::{PortableClass, PortableMethod};
use pmp_vm::op::{BytecodeBody, Op};

/// Where control can go after one instruction.
enum Flow {
    /// Fall through to `pc + 1`.
    Next,
    /// Unconditional jump.
    Jump(u32),
    /// Conditional: fall through or jump.
    Branch(u32),
    /// Leaves the method (return or throw).
    Exit,
}

/// `(pops, pushes, flow)` of one instruction — mirrors
/// `vm::interp::exec_op` and must stay in sync with it.
fn effect(op: &Op) -> (u32, u32, Flow) {
    match op {
        Op::Const(_) | Op::New(_) => (0, 1, Flow::Next),
        Op::Load(_) => (0, 1, Flow::Next),
        Op::Store(_) | Op::Pop => (1, 0, Flow::Next),
        Op::Dup => (1, 2, Flow::Next),
        Op::Swap => (2, 2, Flow::Next),
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::Shl
        | Op::Shr
        | Op::BitAnd
        | Op::BitOr
        | Op::BitXor
        | Op::Eq
        | Op::Ne
        | Op::Lt
        | Op::Le
        | Op::Gt
        | Op::Ge
        | Op::Concat => (2, 1, Flow::Next),
        Op::Neg | Op::Not | Op::ToStr | Op::ToInt | Op::ToFloat => (1, 1, Flow::Next),
        Op::Jump(t) => (0, 0, Flow::Jump(*t)),
        Op::JumpIf(t) | Op::JumpIfNot(t) => (1, 0, Flow::Branch(*t)),
        Op::Ret => (0, 0, Flow::Exit),
        Op::RetVal => (1, 0, Flow::Exit),
        Op::GetField { .. } => (1, 1, Flow::Next),
        Op::PutField { .. } => (2, 0, Flow::Next),
        Op::CallV { argc, .. } | Op::CallDirect { argc, .. } => (u32::from(*argc) + 1, 1, Flow::Next),
        Op::CallStatic { argc, .. } | Op::Sys { argc, .. } => (u32::from(*argc), 1, Flow::Next),
        Op::NewArray | Op::ArrLen | Op::NewBuffer | Op::BufLen => (1, 1, Flow::Next),
        Op::ArrGet | Op::BufGet => (2, 1, Flow::Next),
        Op::ArrSet | Op::BufSet => (3, 0, Flow::Next),
        Op::Throw(_) => (1, 0, Flow::Exit),
        Op::Nop => (0, 0, Flow::Next),
    }
}

/// Verifies every method of a shipped class, including the cross-method
/// arity checks for calls that resolve within the class itself.
pub fn verify_class(class: &PortableClass, opts: &AnalyzeOptions) -> Vec<Finding> {
    let mut findings = Vec::new();
    for m in &class.methods {
        findings.extend(verify_method(m, opts));
        findings.extend(check_arity(class, m));
    }
    findings
}

/// Verifies one method body: the dataflow pass proper.
pub fn verify_method(method: &PortableMethod, opts: &AnalyzeOptions) -> Vec<Finding> {
    verify_body(&method.name, method.params.len(), &method.body, opts)
}

/// Verifies a raw body given its parameter count (`nlocals` is
/// `1 (this) + params + extra_locals`, matching the JIT).
pub fn verify_body(
    method: &str,
    params: usize,
    body: &BytecodeBody,
    opts: &AnalyzeOptions,
) -> Vec<Finding> {
    let err = |pc, msg: String| Finding::new(Severity::Error, Pass::Bytecode, method, pc, msg);
    let len = body.ops.len();
    let mut findings = Vec::new();

    if len == 0 {
        findings.push(err(None, "empty body: execution falls off the end".into()));
        return findings;
    }

    // Handler table sanity (mirrors the JIT's own checks, but at
    // admission time instead of first invocation).
    let mut handler_entries = Vec::new();
    for (i, h) in body.handlers.iter().enumerate() {
        if h.start > h.end || h.end as usize > len || h.target as usize >= len {
            findings.push(err(
                None,
                format!(
                    "handler {i} malformed: [{}, {}) target {} (method length {len})",
                    h.start, h.end, h.target
                ),
            ));
        } else {
            handler_entries.push(h.target as usize);
        }
    }

    let nlocals = 1 + params + body.extra_locals as usize;

    // Worklist dataflow: `depth[pc]` is the single stack depth every
    // path must agree on when reaching `pc`.
    let mut depth: Vec<Option<u32>> = vec![None; len];
    let mut work: Vec<(usize, u32)> = vec![(0, 0)];
    // The interpreter clears the stack and pushes the exception message
    // before entering a handler, so handler entry depth is always 1.
    work.extend(handler_entries.iter().map(|&t| (t, 1)));

    while let Some((pc, d)) = work.pop() {
        match depth[pc] {
            Some(prev) if prev == d => continue,
            Some(prev) => {
                findings.push(err(
                    Some(pc),
                    format!("inconsistent stack depth at merge point: {prev} vs {d}"),
                ));
                continue;
            }
            None => depth[pc] = Some(d),
        }
        let op = &body.ops[pc];
        let (pops, pushes, flow) = effect(op);
        if d < pops {
            findings.push(err(
                Some(pc),
                format!("operand stack underflow: depth {d}, {op:?} pops {pops}"),
            ));
            continue; // don't propagate a bogus depth past the fault
        }
        let nd = d - pops + pushes;
        if nd as usize > opts.max_stack {
            findings.push(err(
                Some(pc),
                format!("operand stack overflow: depth {nd} exceeds limit {}", opts.max_stack),
            ));
            continue;
        }
        if let Op::Load(slot) | Op::Store(slot) = op {
            if usize::from(*slot) >= nlocals {
                findings.push(err(
                    Some(pc),
                    format!("local slot {slot} out of range (method has {nlocals} slots)"),
                ));
            }
        }
        // Successors: `(target, via_jump)` — a fall-through past the
        // end and an out-of-range jump target get distinct messages.
        let mut succs: Vec<(usize, bool)> = Vec::with_capacity(2);
        match flow {
            Flow::Next => succs.push((pc + 1, false)),
            Flow::Jump(t) => succs.push((t as usize, true)),
            Flow::Branch(t) => {
                succs.push((t as usize, true));
                succs.push((pc + 1, false));
            }
            Flow::Exit => {}
        }
        for (succ, via_jump) in succs {
            if succ >= len {
                findings.push(err(
                    Some(pc),
                    if via_jump {
                        format!("jump target {succ} out of range")
                    } else {
                        "execution falls off the end of the method".into()
                    },
                ));
            } else {
                work.push((succ, nd));
            }
        }
    }

    // Dead code is not unsafe, but it usually means a mis-assembled
    // body; surface it below the rejection threshold.
    let unreachable: Vec<usize> = (0..len).filter(|&pc| depth[pc].is_none()).collect();
    if let Some(&first) = unreachable.first() {
        findings.push(Finding::new(
            Severity::Info,
            Pass::Bytecode,
            method,
            Some(first),
            format!("{} unreachable instruction(s)", unreachable.len()),
        ));
    }

    findings
}

/// Arity consistency for calls that resolve within the shipped class:
/// a `CallStatic` naming the class itself must hit an existing sibling
/// method with matching arity; a `CallV` whose method name exists on
/// the class is checked advisorily (dynamic dispatch may land
/// elsewhere).
fn check_arity(class: &PortableClass, method: &PortableMethod) -> Vec<Finding> {
    let mut findings = Vec::new();
    let sibling = |name: &str| class.methods.iter().find(|m| m.name == name);
    for (pc, op) in method.body.ops.iter().enumerate() {
        match op {
            Op::CallStatic {
                class: cname,
                method: mname,
                argc,
            } if *cname == class.name => match sibling(mname) {
                None => findings.push(Finding::new(
                    Severity::Error,
                    Pass::Bytecode,
                    &method.name,
                    Some(pc),
                    format!("static call to unknown method {cname}.{mname}"),
                )),
                Some(target) if target.params.len() != usize::from(*argc) => {
                    findings.push(Finding::new(
                        Severity::Error,
                        Pass::Bytecode,
                        &method.name,
                        Some(pc),
                        format!(
                            "static call to {cname}.{mname} passes {argc} args, method takes {}",
                            target.params.len()
                        ),
                    ));
                }
                Some(_) => {}
            },
            Op::CallV {
                method: mname,
                argc,
            } => {
                if let Some(target) = sibling(mname) {
                    if target.params.len() != usize::from(*argc) {
                        findings.push(Finding::new(
                            Severity::Warning,
                            Pass::Bytecode,
                            &method.name,
                            Some(pc),
                            format!(
                                "virtual call to {mname} passes {argc} args, but {}.{mname} takes {}",
                                class.name,
                                target.params.len()
                            ),
                        ));
                    }
                }
            }
            // A devirtualised call naming the shipped class must hit an
            // existing sibling with matching arity — same rule as
            // `CallStatic`, since its dispatch is equally static.
            Op::CallDirect {
                class: cname,
                method: mname,
                argc,
            } if *cname == class.name => match sibling(mname) {
                None => findings.push(Finding::new(
                    Severity::Error,
                    Pass::Bytecode,
                    &method.name,
                    Some(pc),
                    format!("direct call to unknown method {cname}.{mname}"),
                )),
                Some(target) if target.params.len() != usize::from(*argc) => {
                    findings.push(Finding::new(
                        Severity::Error,
                        Pass::Bytecode,
                        &method.name,
                        Some(pc),
                        format!(
                            "direct call to {cname}.{mname} passes {argc} args, method takes {}",
                            target.params.len()
                        ),
                    ));
                }
                Some(_) => {}
            },
            _ => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_vm::builder::MethodBuilder;
    use pmp_vm::op::{Const, HandlerDef};

    fn body(ops: Vec<Op>) -> BytecodeBody {
        BytecodeBody {
            extra_locals: 0,
            ops,
            handlers: vec![],
        }
    }

    fn errors(findings: &[Finding]) -> Vec<&Finding> {
        findings.iter().filter(|f| f.severity == Severity::Error).collect()
    }

    #[test]
    fn balanced_body_is_clean() {
        let b = body(vec![
            Op::Const(Const::Int(1)),
            Op::Const(Const::Int(2)),
            Op::Add,
            Op::RetVal,
        ]);
        let f = verify_body("m", 0, &b, &AnalyzeOptions::default());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn underflow_is_reported_at_the_faulting_pc() {
        let b = body(vec![Op::Pop, Op::Ret]);
        let f = verify_body("m", 0, &b, &AnalyzeOptions::default());
        let e = errors(&f);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].pc, Some(0));
        assert!(e[0].message.contains("underflow"));
    }

    #[test]
    fn jump_out_of_bounds_is_an_error() {
        let b = body(vec![Op::Jump(99)]);
        let f = verify_body("m", 0, &b, &AnalyzeOptions::default());
        assert!(errors(&f)[0].message.contains("out of range"));
    }

    #[test]
    fn fall_through_past_last_instruction_is_an_error() {
        let b = body(vec![Op::Const(Const::Int(1)), Op::Pop]);
        let f = verify_body("m", 0, &b, &AnalyzeOptions::default());
        assert!(errors(&f)[0].message.contains("falls off the end"));
    }

    #[test]
    fn empty_body_is_an_error() {
        let b = body(vec![]);
        let f = verify_body("m", 0, &b, &AnalyzeOptions::default());
        assert!(errors(&f)[0].message.contains("empty body"));
    }

    #[test]
    fn merge_points_must_agree_on_depth() {
        // if (local1) { push 1 } else { } ; ret — one arm leaks a slot.
        let b = body(vec![
            Op::Load(1),             // 0
            Op::JumpIfNot(3),        // 1: false → 3
            Op::Const(Const::Int(7)), // 2: depth 1 at 3
            Op::Ret,                 // 3: reached with depth 0 and 1
        ]);
        let f = verify_body("m", 1, &b, &AnalyzeOptions::default());
        assert!(errors(&f)
            .iter()
            .any(|e| e.message.contains("inconsistent stack depth")));
    }

    #[test]
    fn local_slot_bounds_respect_params_and_extras() {
        let b = BytecodeBody {
            extra_locals: 1,
            // 0 = this, 1..=2 params, 3 extra → slot 4 is out of range.
            ops: vec![Op::Load(4), Op::Pop, Op::Ret],
            handlers: vec![],
        };
        let f = verify_body("m", 2, &b, &AnalyzeOptions::default());
        assert!(errors(&f)[0].message.contains("local slot 4"));
        let ok = BytecodeBody {
            extra_locals: 1,
            ops: vec![Op::Load(3), Op::Pop, Op::Ret],
            handlers: vec![],
        };
        assert!(verify_body("m", 2, &ok, &AnalyzeOptions::default()).is_empty());
    }

    #[test]
    fn loops_verify_when_depth_is_stable() {
        // i = 0; while (i < 3) i += 1; ret
        let mut b = MethodBuilder::new();
        b.locals(1);
        let top = b.label();
        let done = b.label();
        b.konst(0i64).op(Op::Store(1));
        b.bind(top);
        b.op(Op::Load(1)).konst(3i64).op(Op::Lt);
        b.jump_if_not(done);
        b.op(Op::Load(1)).konst(1i64).op(Op::Add).op(Op::Store(1));
        b.jump(top);
        b.bind(done);
        b.op(Op::Ret);
        let f = verify_body("m", 0, &b.build(), &AnalyzeOptions::default());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn stack_overflow_is_detected() {
        // Dup forever within a loop would need a back-edge; simplest
        // overflow: a tiny max_stack with straight-line pushes.
        let b = body(vec![
            Op::Const(Const::Int(1)),
            Op::Dup,
            Op::Dup,
            Op::Dup,
            Op::Ret,
        ]);
        let opts = AnalyzeOptions {
            max_stack: 2,
            ..AnalyzeOptions::default()
        };
        let f = verify_body("m", 0, &b, &opts);
        assert!(errors(&f)[0].message.contains("overflow"));
    }

    #[test]
    fn handler_entry_has_depth_one() {
        // try { throw } catch { pop message; ret }
        let b = BytecodeBody {
            extra_locals: 0,
            ops: vec![
                Op::Const(Const::Str("boom".into())), // 0
                Op::Throw("E".into()),                // 1
                Op::Pop,                              // 2: handler target
                Op::Ret,                              // 3
            ],
            handlers: vec![HandlerDef {
                start: 0,
                end: 2,
                class: "*".into(),
                target: 2,
            }],
        };
        let f = verify_body("m", 0, &b, &AnalyzeOptions::default());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn malformed_handler_is_an_error() {
        let b = BytecodeBody {
            extra_locals: 0,
            ops: vec![Op::Ret],
            handlers: vec![HandlerDef {
                start: 0,
                end: 5,
                class: "*".into(),
                target: 0,
            }],
        };
        let f = verify_body("m", 0, &b, &AnalyzeOptions::default());
        assert!(errors(&f)[0].message.contains("handler"));
    }

    #[test]
    fn unreachable_code_is_info_only() {
        let b = body(vec![Op::Ret, Op::Nop, Op::Ret]);
        let f = verify_body("m", 0, &b, &AnalyzeOptions::default());
        assert!(errors(&f).is_empty());
        assert!(f
            .iter()
            .any(|x| x.severity == Severity::Info && x.message.contains("unreachable")));
    }

    #[test]
    fn static_call_arity_checked_within_own_class() {
        let class = PortableClass {
            name: "A".into(),
            fields: vec![],
            methods: vec![
                PortableMethod {
                    name: "helper".into(),
                    params: vec!["int".into()],
                    ret: "any".into(),
                    body: body(vec![Op::Const(Const::Null), Op::RetVal]),
                },
                PortableMethod {
                    name: "main".into(),
                    params: vec![],
                    ret: "any".into(),
                    body: body(vec![
                        Op::CallStatic {
                            class: "A".into(),
                            method: "helper".into(),
                            argc: 2, // wrong: helper takes 1
                        },
                        Op::Pop,
                        Op::Ret,
                    ]),
                },
            ],
        };
        let f = verify_class(&class, &AnalyzeOptions::default());
        assert!(f
            .iter()
            .any(|x| x.severity == Severity::Error && x.message.contains("passes 2 args")));
    }
}
