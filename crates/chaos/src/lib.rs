//! pmp-chaos: deterministic chaos simulation for the platform.
//!
//! FoundationDB-style simulation testing, scaled to this repo: a seed
//! compiles into an explicit [`script::Scenario`] (topology churn,
//! extension distribution, link loss, partitions, base crashes, disk
//! faults), the [`exec`] layer replays it against the real
//! [`pmp_core::Platform`] under the serial or parallel driver, the
//! [`oracle`] layer checks global invariants at every pump barrier,
//! and failures are minimized by [`shrink`] and committed as
//! [`repro`] files that CI replays forever.
//!
//! The pipeline end to end:
//!
//! ```text
//! seed ──gen──▶ Scenario ──exec──▶ RunReport{violations}
//!                  ▲                        │ failing
//!                  └──────── shrink ◀───────┘
//!                              │ minimal
//!                              ▼
//!                        .repro file ──▶ tests/chaos_repros.rs
//! ```
//!
//! Everything is deterministic: same seed, same bytes out, regardless
//! of driver, thread count, or host. See DESIGN.md §12 for the
//! invariant catalog and the soundness notes behind each slack window.

#![warn(missing_docs)]

pub mod differential;
pub mod exec;
pub mod gen;
pub mod oracle;
pub mod repro;
pub mod script;
pub mod shrink;
pub mod soak;

pub use differential::differential_check;
pub use exec::{run, run_cross, CrossReport, DriverKind, RunReport};
pub use gen::{generate, GenConfig};
pub use oracle::Violation;
pub use repro::{load, save};
pub use script::{CatalogEntry, ExtKind, Op, Scenario, Step, Topology};
pub use shrink::{shrink, ShrinkStats};
pub use soak::{soak, SoakConfig};

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole determinism claim, in-crate: one seed, two runs,
    /// identical reports.
    #[test]
    fn same_seed_same_report() {
        let sc = generate(1, &GenConfig::default());
        let a = run(&sc, DriverKind::Serial);
        let b = run(&sc, DriverKind::Serial);
        assert_eq!(a, b);
    }

    /// And across drivers: the cross oracle finds nothing on a healthy
    /// seed.
    #[test]
    fn serial_and_parallel_agree_on_a_quiet_seed() {
        let sc = generate(2, &GenConfig::default());
        let cross = run_cross(&sc);
        assert_eq!(
            cross.serial.trace, cross.parallel.trace,
            "trace diverged"
        );
        assert_eq!(cross.serial.observables, cross.parallel.observables);
    }

    /// Cross-driver determinism with the federation enabled: a
    /// handcrafted scenario that links two halls, lets a robot roam
    /// across the federated pair, and partitions/heals the backhaul
    /// must produce byte-identical digests under both drivers with no
    /// oracle violations.
    #[test]
    fn federation_scenario_is_cross_driver_deterministic() {
        let sc = Scenario {
            seed: 77,
            topology: Topology {
                halls: 2,
                loss_per_mille: 0,
                robots: 2,
                catalogs: vec![
                    vec![CatalogEntry {
                        kind: ExtKind::Monitoring,
                        version: 1,
                    }],
                    vec![CatalogEntry {
                        kind: ExtKind::Geofence,
                        version: 1,
                    }],
                ],
                lease_ms: 2_000,
                link_neighbors: false,
            },
            steps: vec![
                Step {
                    at_ms: 500,
                    op: Op::LinkBases { a: 0, b: 1 },
                },
                Step {
                    at_ms: 4_000,
                    op: Op::MoveToHall { node: 0, hall: 1 },
                },
                Step {
                    at_ms: 6_000,
                    op: Op::PartitionBases { a: 0, b: 1 },
                },
                Step {
                    at_ms: 7_500,
                    op: Op::HealBases { a: 0, b: 1 },
                },
            ],
            settle_ms: 8_000,
        };
        let cross = run_cross(&sc);
        assert!(
            cross.violations.is_empty(),
            "federated scenario must be clean: {:?}",
            cross.violations
        );
        assert_eq!(cross.serial.trace, cross.parallel.trace);
        assert_eq!(cross.serial.journal, cross.parallel.journal);
        assert_eq!(cross.serial.observables, cross.parallel.observables);
    }

    /// The `stream-resync` oracle under the full failure vocabulary:
    /// subscribers on all three namespaces attached before traffic, a
    /// late one attached *after* a checkpoint (the compacted WAL forces
    /// the snapshot bootstrap path), a crash → restart in the middle
    /// (forced resync), and a drop at the end — all clean, under both
    /// drivers, byte for byte.
    #[test]
    fn stream_subscribers_survive_crash_restart_and_checkpoint() {
        let step = |at_ms, op| Step { at_ms, op };
        let sc = Scenario {
            seed: 91,
            topology: Topology {
                halls: 2,
                loss_per_mille: 0,
                robots: 1,
                catalogs: vec![
                    vec![CatalogEntry {
                        kind: ExtKind::Monitoring,
                        version: 1,
                    }],
                    vec![CatalogEntry {
                        kind: ExtKind::Geofence,
                        version: 1,
                    }],
                ],
                lease_ms: 2_000,
                link_neighbors: false,
            },
            steps: vec![
                step(300, Op::Subscribe { base: 0, ns: 0 }),
                step(320, Op::Subscribe { base: 0, ns: 1 }),
                step(340, Op::Subscribe { base: 0, ns: 2 }),
                step(
                    2_000,
                    Op::Rpc {
                        base: 0,
                        node: 0,
                        x: 12,
                        y: 8,
                    },
                ),
                step(
                    2_600,
                    Op::Publish {
                        base: 0,
                        kind: ExtKind::Geofence,
                        version: 1,
                    },
                ),
                step(3_000, Op::CheckpointBase { base: 0 }),
                step(3_500, Op::Subscribe { base: 0, ns: 1 }),
                step(4_000, Op::CrashBase { base: 0 }),
                step(5_000, Op::RestartBase { base: 0 }),
                step(
                    6_000,
                    Op::Rpc {
                        base: 0,
                        node: 0,
                        x: 20,
                        y: 4,
                    },
                ),
                step(6_500, Op::DropSubscriber { sub: 0 }),
            ],
            settle_ms: 6_000,
        };
        let cross = run_cross(&sc);
        assert!(
            cross.violations.is_empty(),
            "stream chaos scenario must be clean: {:?}",
            cross.violations
        );
        assert_eq!(cross.serial.trace, cross.parallel.trace);
        assert_eq!(cross.serial.observables, cross.parallel.observables);
    }

    /// Generated scenarios now carry Subscribe/DropSubscriber ops; a
    /// seed sweep must never trip the `stream-resync` oracle, whatever
    /// combination of loss, partitions, crashes, and disk faults the
    /// generator emits around them.
    #[test]
    fn stream_resync_oracle_holds_over_a_seed_sweep() {
        let cfg = GenConfig::default();
        for seed in 0..12 {
            let sc = generate(seed, &cfg);
            let report = run(&sc, DriverKind::Serial);
            let stream: Vec<_> = report
                .violations
                .iter()
                .filter(|v| v.invariant == "stream-resync")
                .collect();
            assert!(stream.is_empty(), "seed {seed}: {stream:?}\n{}", sc.render());
        }
    }
}
