//! The drawing program (paper §4.3): "the overall movement is
//! determined by a drawing program ... The program and the robot do not
//! contain any code beyond that related to drawing."

use pmp_vm::prelude::{Value, Vm, VmError};

/// Draws a polyline on a VM `Plotter` proxy: pen up, move to the first
/// point, pen down, trace, pen up. Everything goes through VM calls, so
/// woven extensions observe each motor action.
///
/// # Errors
///
/// Any [`VmError`] raised by the plotter (including extension vetoes).
pub fn draw_polyline(vm: &mut Vm, plotter: &Value, points: &[(i64, i64)]) -> Result<(), VmError> {
    let Some((first, rest)) = points.split_first() else {
        return Ok(());
    };
    vm.call("Plotter", "penUp", plotter.clone(), vec![])?;
    vm.call(
        "Plotter",
        "moveTo",
        plotter.clone(),
        vec![Value::Int(first.0), Value::Int(first.1)],
    )?;
    vm.call("Plotter", "penDown", plotter.clone(), vec![])?;
    for p in rest {
        vm.call(
            "Plotter",
            "moveTo",
            plotter.clone(),
            vec![Value::Int(p.0), Value::Int(p.1)],
        )?;
    }
    vm.call("Plotter", "penUp", plotter.clone(), vec![])?;
    Ok(())
}

/// Draws a whole figure (list of polylines).
///
/// # Errors
///
/// Any [`VmError`] raised while drawing.
pub fn draw_figure(vm: &mut Vm, plotter: &Value, figure: &[Vec<(i64, i64)>]) -> Result<(), VmError> {
    for line in figure {
        draw_polyline(vm, plotter, line)?;
    }
    Ok(())
}

/// A small test figure: a house (square + roof) and a door.
pub fn house_figure() -> Vec<Vec<(i64, i64)>> {
    vec![
        // walls
        vec![(0, 0), (40, 0), (40, 30), (0, 30), (0, 0)],
        // roof
        vec![(0, 30), (20, 45), (40, 30)],
        // door
        vec![(16, 0), (16, 12), (24, 12), (24, 0)],
    ]
}

/// A star-shaped stress figure with `spikes` spokes of length `r`.
pub fn star_figure(spikes: usize, r: i64) -> Vec<Vec<(i64, i64)>> {
    let mut lines = Vec::with_capacity(spikes);
    for i in 0..spikes {
        let angle = (i as f64) * std::f64::consts::TAU / (spikes as f64);
        let x = (angle.cos() * r as f64).round() as i64;
        let y = (angle.sin() * r as f64).round() as i64;
        lines.push(vec![(0, 0), (x, y)]);
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::{new_handle, register_robot_classes, spawn_plotter};
    use pmp_vm::prelude::*;

    #[test]
    fn drawing_the_house_produces_strokes() {
        let mut vm = Vm::new(VmConfig::default());
        let handle = new_handle();
        register_robot_classes(&mut vm, &handle).unwrap();
        let plotter = spawn_plotter(&mut vm).unwrap();
        draw_figure(&mut vm, &plotter, &house_figure()).unwrap();
        let canvas = handle.lock().canvas().clone();
        assert!(canvas.len() >= 10, "house has many strokes: {}", canvas.len());
        assert!(canvas.bounds().is_some());
    }

    #[test]
    fn star_figure_shape() {
        let star = star_figure(8, 100);
        assert_eq!(star.len(), 8);
        for line in &star {
            assert_eq!(line[0], (0, 0));
        }
    }

    #[test]
    fn empty_polyline_is_noop() {
        let mut vm = Vm::new(VmConfig::default());
        let handle = new_handle();
        register_robot_classes(&mut vm, &handle).unwrap();
        let plotter = spawn_plotter(&mut vm).unwrap();
        draw_polyline(&mut vm, &plotter, &[]).unwrap();
        assert!(handle.lock().canvas().is_empty());
    }
}
