//! E3 — the paper's §4.6 extension-cost measurement: security,
//! transactions, and orthogonal persistence extensions, showing that
//! interception cost ≪ functionality cost.

use criterion::{criterion_group, criterion_main, Criterion};
use pmp_bench::{service_call, service_vm, ServiceExt};

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("extension_cost");
    for (label, ext) in [
        ("baseline", ServiceExt::None),
        ("interception-only", ServiceExt::Nop),
        ("security", ServiceExt::Security),
        ("transactions", ServiceExt::Transactions),
        ("persistence", ServiceExt::Persistence),
    ] {
        let (mut vm, obj) = service_vm(ext);
        group.bench_function(label, |b| b.iter(|| service_call(&mut vm, &obj, 20)));
    }
    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
