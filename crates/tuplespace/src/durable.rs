//! Crash-safety for the tuple space.
//!
//! The bag of tuples maps cleanly onto a WAL: `out` logs the deposited
//! tuple, destructive `in` logs the removed index (positions are
//! deterministic because matching scans in insertion order). Snapshots
//! capture the bag wholesale in insertion order. Subscriptions are
//! *not* durable — they reference live client request state, and
//! clients re-subscribe after a restart.

use crate::space::TupleSpace;
use crate::tuple::Tuple;
use pmp_durable::{Durable, DurableError};
use pmp_wire::{Reader, Wire, WireError, Writer};

/// The WAL namespace owned by the tuple space.
pub const NAMESPACE: &str = "tuplespace.tuples";

/// One logged mutation of the bag of tuples.
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceWalOp {
    /// A tuple was deposited at the end of the bag.
    Out {
        /// The deposited tuple.
        tuple: Tuple,
    },
    /// The tuple at `index` was destructively withdrawn.
    Take {
        /// Position in the bag at withdrawal time.
        index: u64,
    },
}

impl Wire for SpaceWalOp {
    fn encode(&self, w: &mut Writer) {
        match self {
            SpaceWalOp::Out { tuple } => {
                w.put_u8(0);
                tuple.encode(w);
            }
            SpaceWalOp::Take { index } => {
                w.put_u8(1);
                w.put_u64(*index);
            }
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => SpaceWalOp::Out {
                tuple: Tuple::decode(r)?,
            },
            1 => SpaceWalOp::Take {
                index: r.get_u64()?,
            },
            tag => return Err(r.bad_tag("SpaceWalOp", tag)),
        })
    }
}

impl Durable for TupleSpace {
    fn namespace(&self) -> &'static str {
        NAMESPACE
    }

    fn snapshot_bytes(&self) -> Vec<u8> {
        pmp_wire::to_bytes(&self.tuples)
    }

    fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), DurableError> {
        self.tuples = pmp_wire::from_bytes(bytes)?;
        Ok(())
    }

    fn apply_record(&mut self, payload: &[u8]) -> Result<(), DurableError> {
        match pmp_wire::from_bytes::<SpaceWalOp>(payload)? {
            SpaceWalOp::Out { tuple } => self.tuples.push(tuple),
            SpaceWalOp::Take { index } => {
                let i = usize::try_from(index)
                    .map_err(|_| DurableError::Invalid("take index out of range"))?;
                if i >= self.tuples.len() {
                    return Err(DurableError::Invalid("take index out of range"));
                }
                self.tuples.remove(i);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Field;
    use pmp_net::NodeId;

    fn tuple(tag: &str, n: i64) -> Tuple {
        Tuple::new(vec![Field::Str(tag.into()), Field::Int(n)])
    }

    #[test]
    fn replay_of_outs_and_takes_rebuilds_the_bag() {
        let mut space = TupleSpace::new(NodeId(1));
        let ops = [
            SpaceWalOp::Out { tuple: tuple("a", 1) },
            SpaceWalOp::Out { tuple: tuple("b", 2) },
            SpaceWalOp::Out { tuple: tuple("c", 3) },
            SpaceWalOp::Take { index: 1 },
        ];
        for op in &ops {
            space.apply_record(&pmp_wire::to_bytes(op)).unwrap();
        }
        assert_eq!(space.len(), 2);
        assert_eq!(space.tuples, vec![tuple("a", 1), tuple("c", 3)]);
    }

    #[test]
    fn snapshot_roundtrip_preserves_the_digest() {
        let mut live = TupleSpace::new(NodeId(1));
        for n in 0..4 {
            live.apply_record(&pmp_wire::to_bytes(&SpaceWalOp::Out {
                tuple: tuple("t", n),
            }))
            .unwrap();
        }
        let mut restored = TupleSpace::new(NodeId(1));
        restored.restore_snapshot(&live.snapshot_bytes()).unwrap();
        assert_eq!(restored.state_digest(), live.state_digest());
        assert_eq!(restored.tuples, live.tuples);
    }

    #[test]
    fn bad_ops_error_instead_of_panicking() {
        let mut space = TupleSpace::new(NodeId(1));
        let take = SpaceWalOp::Take { index: 5 };
        assert!(space.apply_record(&pmp_wire::to_bytes(&take)).is_err());
        assert!(space.apply_record(&[9, 9]).is_err());
        assert_eq!(
            pmp_wire::from_bytes::<SpaceWalOp>(&[7]),
            Err(WireError::InvalidTag {
                type_name: "SpaceWalOp",
                tag: 7,
                offset: 0,
            })
        );
    }
}
