//! Virtual time.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From milliseconds.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// From seconds.
    pub fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// Whole milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition of a duration in nanoseconds.
    #[must_use]
    pub fn plus(self, nanos: u64) -> SimTime {
        SimTime(self.0.saturating_add(nanos))
    }

    /// Saturating difference in nanoseconds.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

/// A shareable read handle on the simulation clock; the simulator holds
/// the writing side. Handed to VMs so `time.now` reads virtual time.
#[derive(Debug, Clone, Default)]
pub struct ClockHandle(Arc<AtomicU64>);

impl ClockHandle {
    /// Creates a handle at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        SimTime(self.0.load(Ordering::Relaxed))
    }

    /// Sets the time. The simulator drives its own clock; this is
    /// public so an execution driver can steer the *per-cell* clocks it
    /// creates (each node cell sees the timestamp of the event it is
    /// dispatching). Never call it on a simulator's own handle.
    pub fn set(&self, t: SimTime) {
        self.0.store(t.0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(1500).as_millis(), 1500);
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime(5).since(SimTime(10)), 0);
        assert_eq!(SimTime(10).since(SimTime(4)), 6);
        assert_eq!(SimTime(u64::MAX).plus(10), SimTime(u64::MAX));
    }

    #[test]
    fn clock_handle_tracks_sets() {
        let h = ClockHandle::new();
        assert_eq!(h.now(), SimTime::ZERO);
        let h2 = h.clone();
        h.set(SimTime::from_secs(3));
        assert_eq!(h2.now(), SimTime::from_secs(3));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "t+1.500s");
    }
}
