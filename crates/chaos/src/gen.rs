//! Seed → scenario compilation.
//!
//! One `u64` seed deterministically expands into a full [`Scenario`]
//! via the same splitmix generator the network simulator uses. The
//! generator keeps a small model of the world (which bases it has
//! crashed, how many robots exist, catalog version counters) so the
//! scripts it emits are *mostly* well-aimed — crash ops usually hit
//! live bases, restarts usually hit crashed ones — but soundness never
//! depends on that: the executor's totality guards make stray ops
//! no-ops. Every still-crashed base gets a restart appended at the
//! end, so final-state oracles always run against a live world.

use crate::script::{
    CatalogEntry, ExtKind, Op, Scenario, Step, Topology, ALL_KINDS, MAX_NODES, MAX_SUBS,
    STREAM_NAMESPACES,
};
use pmp_net::SimRng;
use std::collections::BTreeMap;

/// Generation knobs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Chaos steps per scenario (before the appended restarts).
    pub steps: usize,
    /// Upper bound on halls (1..=this).
    pub max_halls: u8,
    /// Upper bound on initial robots (1..=this).
    pub max_robots: u8,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            steps: 36,
            max_halls: 3,
            max_robots: 3,
        }
    }
}

/// Decorrelates the script stream from the platform's own link RNG,
/// which is seeded with the raw scenario seed.
const STREAM_SALT: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// Expands `seed` into a scenario.
#[must_use]
pub fn generate(seed: u64, cfg: &GenConfig) -> Scenario {
    let mut rng = SimRng::new(seed ^ STREAM_SALT);
    let halls = 1 + rng.range_u64(u64::from(cfg.max_halls.max(1))) as u8;
    let robots = 1 + rng.range_u64(u64::from(cfg.max_robots.max(1))) as u8;
    let loss_per_mille = if rng.chance(0.35) {
        0
    } else {
        rng.range_u64(200) as u16
    };
    let lease_ms = 2_000 + 500 * rng.range_u64(5) as u32;
    let link_neighbors = rng.chance(0.7);

    let mut catalogs = Vec::new();
    for _ in 0..halls {
        let mut cat: Vec<CatalogEntry> = ALL_KINDS
            .iter()
            .filter(|_| rng.chance(0.55))
            .map(|&kind| CatalogEntry { kind, version: 1 })
            .collect();
        // Access control requires the session extension; make the
        // catalog self-sufficient so installs can complete.
        if cat.iter().any(|e| e.kind == ExtKind::AccessControl)
            && !cat.iter().any(|e| e.kind == ExtKind::Session)
        {
            cat.insert(
                0,
                CatalogEntry {
                    kind: ExtKind::Session,
                    version: 1,
                },
            );
        }
        if cat.is_empty() {
            cat.push(CatalogEntry {
                kind: ExtKind::Monitoring,
                version: 1,
            });
        }
        catalogs.push(cat);
    }

    // The generator's model of the evolving world.
    let mut crashed = vec![false; usize::from(halls)];
    let mut node_count = u64::from(robots);
    let mut sub_count: u64 = 0;
    let mut versions: BTreeMap<(u8, ExtKind), u32> = BTreeMap::new();
    for (i, cat) in catalogs.iter().enumerate() {
        for e in cat {
            versions.insert((i as u8, e.kind), e.version);
        }
    }

    let mut steps = Vec::with_capacity(cfg.steps + usize::from(halls));
    let mut t_ms: u64 = 400;
    let pick_node = |rng: &mut SimRng, n: u64| rng.range_u64(n) as u8;

    for _ in 0..cfg.steps {
        t_ms += 100 + rng.range_u64(900);
        let at_ms = t_ms as u32;
        let hall_of = |rng: &mut SimRng| rng.range_u64(u64::from(halls)) as u8;
        let kind_of = |rng: &mut SimRng| ALL_KINDS[rng.range_u64(ALL_KINDS.len() as u64) as usize];
        let op = match rng.range_u64(100) {
            0..=14 => Op::MoveToHall {
                node: pick_node(&mut rng, node_count),
                hall: hall_of(&mut rng),
            },
            15..=22 => Op::MoveToCorridor {
                node: pick_node(&mut rng, node_count),
            },
            23..=29 => Op::SetOnline {
                node: pick_node(&mut rng, node_count),
                online: rng.chance(0.5),
            },
            30..=33 => {
                if node_count < MAX_NODES as u64 {
                    node_count += 1;
                }
                Op::AddRobot {
                    hall: hall_of(&mut rng),
                }
            }
            34..=39 => {
                let base = hall_of(&mut rng);
                crashed[usize::from(base)] = true;
                Op::CrashBase { base }
            }
            40..=46 => {
                let base = crashed
                    .iter()
                    .position(|&c| c)
                    .map_or_else(|| hall_of(&mut rng), |i| i as u8);
                crashed[usize::from(base)] = false;
                Op::RestartBase { base }
            }
            47..=50 => Op::CheckpointBase {
                base: hall_of(&mut rng),
            },
            51..=58 => {
                let base = hall_of(&mut rng);
                let kind = kind_of(&mut rng);
                let v = versions.entry((base, kind)).or_insert(0);
                *v += 1;
                Op::Publish {
                    base,
                    kind,
                    version: *v,
                }
            }
            59..=62 => Op::Revoke {
                base: hall_of(&mut rng),
                kind: kind_of(&mut rng),
            },
            63..=64 => Op::AdversarialPublish {
                base: hall_of(&mut rng),
                attack: rng.range_u64(5) as u8,
                version: 1 + rng.range_u64(3) as u32,
            },
            65..=68 => Op::Rpc {
                base: hall_of(&mut rng),
                node: pick_node(&mut rng, node_count),
                x: rng.range_u64(60) as u8,
                y: rng.range_u64(60) as u8,
            },
            // Never SlowLinks: a generated latency regression would
            // turn every loss-free sweep seed perf-red by design.
            69..=72 => Op::RpcSem {
                base: hall_of(&mut rng),
                node: pick_node(&mut rng, node_count),
                sem: rng.range_u64(3) as u8,
                x: rng.range_u64(60) as u8,
                y: rng.range_u64(60) as u8,
            },
            73..=76 => Op::InjectTornTail {
                base: crashed
                    .iter()
                    .position(|&c| c)
                    .map_or_else(|| hall_of(&mut rng), |i| i as u8),
                drop: 1 + rng.range_u64(40) as u8,
            },
            77..=80 => Op::InjectBitFlip {
                base: crashed
                    .iter()
                    .position(|&c| c)
                    .map_or_else(|| hall_of(&mut rng), |i| i as u8),
                offset: rng.range_u64(2048) as u16,
            },
            81..=85 => Op::Partition {
                node: pick_node(&mut rng, node_count),
                base: hall_of(&mut rng),
            },
            86..=88 => Op::Heal {
                node: pick_node(&mut rng, node_count),
                base: hall_of(&mut rng),
            },
            89..=91 => Op::LinkBases {
                a: hall_of(&mut rng),
                b: hall_of(&mut rng),
            },
            92..=93 => Op::PartitionBases {
                a: hall_of(&mut rng),
                b: hall_of(&mut rng),
            },
            94 => Op::HealBases {
                a: hall_of(&mut rng),
                b: hall_of(&mut rng),
            },
            95..=97 => {
                if sub_count < MAX_SUBS as u64 {
                    sub_count += 1;
                }
                Op::Subscribe {
                    base: hall_of(&mut rng),
                    ns: rng.range_u64(STREAM_NAMESPACES.len() as u64) as u8,
                }
            }
            _ => Op::DropSubscriber {
                sub: if sub_count == 0 {
                    0
                } else {
                    rng.range_u64(sub_count) as u8
                },
            },
        };
        steps.push(Step { at_ms, op });
    }

    // Leave no base down going into settle: the final observables
    // should describe a recovered world.
    for (i, c) in crashed.iter().enumerate() {
        if *c {
            t_ms += 300 + rng.range_u64(300);
            steps.push(Step {
                at_ms: t_ms as u32,
                op: Op::RestartBase { base: i as u8 },
            });
        }
    }

    let settle_ms = lease_ms + 4_000 + rng.range_u64(2_000) as u32;
    Scenario {
        seed,
        topology: Topology {
            halls,
            loss_per_mille,
            robots,
            catalogs,
            lease_ms,
            link_neighbors,
        },
        steps,
        settle_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        assert_eq!(generate(7, &cfg), generate(7, &cfg));
        assert_ne!(generate(7, &cfg), generate(8, &cfg));
    }

    #[test]
    fn catalogs_are_dependency_closed() {
        let cfg = GenConfig::default();
        for seed in 0..200 {
            let sc = generate(seed, &cfg);
            for cat in &sc.topology.catalogs {
                if cat.iter().any(|e| e.kind == ExtKind::AccessControl) {
                    assert!(
                        cat.iter().any(|e| e.kind == ExtKind::Session),
                        "seed {seed}: access-control without session"
                    );
                }
                assert!(!cat.is_empty());
            }
        }
    }

    #[test]
    fn every_crashed_base_is_restarted_before_settle() {
        let cfg = GenConfig::default();
        for seed in 0..200 {
            let sc = generate(seed, &cfg);
            let mut down = vec![false; usize::from(sc.topology.halls)];
            for s in &sc.steps {
                match s.op {
                    Op::CrashBase { base } => down[usize::from(base)] = true,
                    Op::RestartBase { base } => down[usize::from(base)] = false,
                    _ => {}
                }
            }
            assert!(
                down.iter().all(|d| !d),
                "seed {seed} leaves a base crashed at settle"
            );
        }
    }

    #[test]
    fn steps_are_time_ordered_and_bounded() {
        let cfg = GenConfig::default();
        let sc = generate(3, &cfg);
        assert!(sc.steps.len() >= cfg.steps);
        assert!(sc.steps.windows(2).all(|p| p[0].at_ms <= p[1].at_ms));
    }
}
