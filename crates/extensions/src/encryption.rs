//! The encryption extension (paper §2.3 / §3.3): "encrypt every
//! outgoing call from an application and decrypt every incoming call" —
//! the canonical example that needs neither source code nor interface
//! knowledge.
//!
//! Implements the paper's aspect
//! `before methods-with-signature 'void *.send*(byte[], ..)' do encrypt(x)`
//! with a byte-wise XOR stream (simulation-grade cipher; the mechanism —
//! in-place mutation of the `byte[]` argument before the body runs — is
//! the point).

use crate::support::{advice_params, versioned_class};
use pmp_midas::{ExtensionMeta, ExtensionPackage};
use pmp_prose::{Aspect, Crosscut, PortableAspect, PortableClass, PortableMethod};
use pmp_vm::builder::MethodBuilder;
use pmp_vm::op::Op;

/// Extension id.
pub const ID: &str = "ext/encryption";

/// Builds the XOR transform body: mutates the buffer in `args[0]`.
fn xor_body(key: u8) -> pmp_vm::op::BytecodeBody {
    let mut b = MethodBuilder::new();
    b.locals(3); // 6: buf, 7: i, 8: len
    let top = b.label();
    let done = b.label();
    // buf = args[0]; len = buf.len(); i = 0
    b.op(Op::Load(3)).konst(0i64).op(Op::ArrGet).op(Op::Store(6));
    b.op(Op::Load(6)).op(Op::BufLen).op(Op::Store(8));
    b.konst(0i64).op(Op::Store(7));
    b.bind(top);
    b.op(Op::Load(7)).op(Op::Load(8)).op(Op::Lt);
    b.jump_if_not(done);
    // buf[i] = buf[i] ^ key
    b.op(Op::Load(6)).op(Op::Load(7));
    b.op(Op::Load(6)).op(Op::Load(7)).op(Op::BufGet);
    b.konst(i64::from(key)).op(Op::BitXor);
    b.op(Op::BufSet);
    b.op(Op::Load(7)).konst(1i64).op(Op::Add).op(Op::Store(7));
    b.jump(top);
    b.bind(done);
    b.op(Op::Ret);
    b.build()
}

/// Builds the encryption package with the given key byte: encrypts
/// `send*` byte-array arguments and decrypts `recv*` ones (XOR is its
/// own inverse).
pub fn package(key: u8, version: u32) -> ExtensionPackage {
    let class = PortableClass {
        name: versioned_class("LinkEncryption", version),
        fields: vec![],
        methods: vec![PortableMethod {
            name: "transform".into(),
            params: advice_params(),
            ret: "any".into(),
            body: xor_body(key),
        }],
    };
    let aspect = Aspect::script(
        "encryption",
        class,
        vec![
            (
                Crosscut::parse("before void *.send*(byte[], ..)").expect("valid"),
                "transform".into(),
                100, // outermost: encrypt after all other advice saw plaintext
            ),
            (
                Crosscut::parse("before void *.recv*(byte[], ..)").expect("valid"),
                "transform".into(),
                -100, // innermost on receive: decrypt before others look
            ),
        ],
    );
    ExtensionPackage {
        meta: ExtensionMeta {
            id: ID.into(),
            version,
            description: "XOR link cipher on send*/recv* byte[] arguments".into(),
            requires: vec![],
            permissions: vec![],
            implicit: false,
        },
        aspect: PortableAspect::try_from(&aspect).expect("portable"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_telemetry::sync::Mutex;
    use pmp_prose::{Prose, WeaveOptions};
    use pmp_vm::class::NativeCall;
    use pmp_vm::perm::Permissions;
    use pmp_vm::prelude::*;
    use std::sync::Arc;

    fn radio_vm() -> (Vm, Prose, Arc<Mutex<Vec<u8>>>) {
        let mut vm = Vm::new(VmConfig::default());
        let sent: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let s = sent.clone();
        vm.register_class(
            ClassDef::build("Radio")
                .native(
                    "sendPacket",
                    [TypeSig::Bytes],
                    TypeSig::Void,
                    move |vm, call: NativeCall| {
                        let id = call.arg(0).as_ref_id().unwrap();
                        *s.lock() = vm.heap().buffer_bytes(id)?.to_vec();
                        Ok(Value::Null)
                    },
                )
                .native(
                    "recvPacket",
                    [TypeSig::Bytes],
                    TypeSig::Void,
                    |_vm, _call| Ok(Value::Null),
                )
                .done(),
        )
        .unwrap();
        let prose = Prose::attach(&mut vm);
        (vm, prose, sent)
    }

    #[test]
    fn outgoing_packets_are_encrypted_in_flight() {
        let (mut vm, prose, sent) = radio_vm();
        prose
            .weave(
                &mut vm,
                package(0x5A, 1).aspect.into(),
                WeaveOptions::sandboxed(Permissions::none()),
            )
            .unwrap();
        let radio = vm.new_object("Radio").unwrap();
        let buf = vm.new_buffer(vec![1, 2, 3]);
        vm.call("Radio", "sendPacket", radio, vec![buf]).unwrap();
        assert_eq!(*sent.lock(), vec![1 ^ 0x5A, 2 ^ 0x5A, 3 ^ 0x5A]);
    }

    #[test]
    fn recv_decrypts_back_to_plaintext() {
        let (mut vm, prose, _) = radio_vm();
        prose
            .weave(
                &mut vm,
                package(0x5A, 1).aspect.into(),
                WeaveOptions::sandboxed(Permissions::none()),
            )
            .unwrap();
        let radio = vm.new_object("Radio").unwrap();
        let buf = vm.new_buffer(vec![1 ^ 0x5A, 2 ^ 0x5A]);
        let id = buf.as_ref_id().unwrap();
        vm.call("Radio", "recvPacket", radio, vec![buf]).unwrap();
        // The decrypting advice ran before the body: buffer is plaintext.
        assert_eq!(vm.heap().buffer_bytes(id).unwrap(), &[1, 2]);
    }

    #[test]
    fn unrelated_methods_untouched() {
        let (mut vm, prose, sent) = radio_vm();
        prose
            .weave(
                &mut vm,
                package(0x5A, 1).aspect.into(),
                WeaveOptions::sandboxed(Permissions::none()),
            )
            .unwrap();
        // A method that doesn't match send*/recv* keeps its bytes.
        vm.register_class(
            ClassDef::build("Disk")
                .method("write", [TypeSig::Bytes], TypeSig::Void, |b| {
                    b.op(Op::Ret);
                })
                .done(),
        )
        .unwrap();
        prose.refresh(&mut vm);
        let disk = vm.new_object("Disk").unwrap();
        let buf = vm.new_buffer(vec![9, 9]);
        let id = buf.as_ref_id().unwrap();
        vm.call("Disk", "write", disk, vec![buf]).unwrap();
        assert_eq!(vm.heap().buffer_bytes(id).unwrap(), &[9, 9]);
        assert!(sent.lock().is_empty());
    }
}
