//! The log-structured storage engine: segmented WAL, group commit,
//! snapshots with compaction, and crash recovery.
//!
//! # Write path
//!
//! [`DurableEngine::append`] assigns the next global sequence number
//! and buffers the record in memory — nothing touches the disk yet.
//! [`DurableEngine::commit`] frames the whole buffered batch into the
//! active segment and issues **one** [`crate::SimDisk::sync`]: the
//! group-commit discipline that amortises the (simulated) fsync cost
//! across every record of an epoch. A crash between append and commit
//! loses exactly the uncommitted batch, never a committed one.
//!
//! # Snapshots and compaction
//!
//! [`DurableEngine::checkpoint`] serialises every registered
//! [`crate::Durable`] state into one framed snapshot file, then deletes
//! all log segments (fully covered by the snapshot, since checkpoint
//! flushes the buffer first) and older snapshots. Recovery cost is
//! thereby bounded by the write volume since the last checkpoint, not
//! by history length.
//!
//! # Recovery
//!
//! [`DurableEngine::recover`] restores the newest *valid* snapshot
//! (corrupt ones are skipped, falling back to older generations), then
//! replays committed WAL records with `seq >=` the snapshot horizon in
//! segment order. Replay stops at the first anomaly: a torn frame at
//! the tail of the final segment is truncated away (the expected
//! after-crash shape); a checksum or decode failure anywhere marks the
//! log corrupt at that offset; a gap in segment numbering marks the
//! missing segment. All anomalies are reported in the returned
//! [`RecoverReport`] with file names and byte offsets — recovery never
//! panics on bad media.
//!
//! Journal events are emitted only for snapshot, compact, and recover
//! (main-thread barrier operations), keeping the event journal
//! byte-identical between the serial and parallel drivers.

use crate::disk::SimDisk;
use crate::record::{decode_framed, decode_record, encode_framed, encode_record_into, WalRecord};
use crate::Durable;
use pmp_telemetry::{Sink, Subsystem};
use pmp_wire::wire_struct;
use std::collections::BTreeMap;
use std::time::Instant;

/// Tuning knobs for the engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Segment roll threshold in bytes: a commit that would push the
    /// active segment past this opens a new one first.
    pub segment_bytes: usize,
    /// Auto-checkpoint hint: [`DurableEngine::should_checkpoint`] turns
    /// true after this many records commit since the last snapshot.
    /// `0` disables the hint (checkpoints become purely manual).
    pub snapshot_every: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            segment_bytes: 8 * 1024,
            snapshot_every: 256,
        }
    }
}

/// A snapshot file body: the sequence horizon it covers and one opaque
/// blob per namespace.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SnapshotFile {
    next_seq: u64,
    namespaces: BTreeMap<String, Vec<u8>>,
}

wire_struct!(SnapshotFile {
    next_seq: u64,
    namespaces: BTreeMap<String, Vec<u8>>,
});

/// Something recovery found wrong with the committed image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anomaly {
    /// The file involved.
    pub file: String,
    /// Byte offset of the problem within the file.
    pub offset: usize,
    /// Human-readable description.
    pub detail: String,
}

/// What [`DurableEngine::recover`] did and found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoverReport {
    /// Sequence horizon restored from a snapshot, if one was usable.
    pub snapshot_seq: Option<u64>,
    /// Snapshot generations skipped as unreadable before one loaded.
    pub skipped_snapshots: u64,
    /// Records replayed from the WAL.
    pub replayed: u64,
    /// The engine's sequence counter after recovery.
    pub next_seq: u64,
    /// A torn tail that was truncated away, if any.
    pub torn: Option<Anomaly>,
    /// A corrupt record that stopped replay, if any.
    pub corrupt: Option<Anomaly>,
    /// Segment numbers missing from an otherwise contiguous run.
    pub missing_segments: Vec<u64>,
    /// Replayed records whose namespace no registered state claimed.
    pub unknown_namespace: u64,
    /// Records a state refused to apply: `(seq, error)`.
    pub apply_errors: Vec<(u64, String)>,
}

impl RecoverReport {
    /// Whether recovery saw a pristine image: no torn tail, no corrupt
    /// record, no missing segment, no apply failure.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.torn.is_none()
            && self.corrupt.is_none()
            && self.missing_segments.is_empty()
            && self.apply_errors.is_empty()
            && self.skipped_snapshots == 0
    }
}

fn segment_file(n: u64) -> String {
    format!("wal/{n:08}.seg")
}

fn snapshot_file(next_seq: u64) -> String {
    format!("snap/{next_seq:016}.snap")
}

fn segment_number(file: &str) -> Option<u64> {
    file.strip_prefix("wal/")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// Observer invoked with every batch the engine commits, after the
/// sync that makes the batch durable. Recovery replay never re-enters
/// the tap (it does not commit), so an observer sees each committed
/// record exactly once per engine lifetime.
pub type CommitTap = Box<dyn FnMut(&[WalRecord]) + Send>;

/// The storage engine. Single-owner; share one through
/// [`crate::DurableHub`].
pub struct DurableEngine {
    disk: SimDisk,
    cfg: EngineConfig,
    next_seq: u64,
    segment: u64,
    segment_len: usize,
    buffered: Vec<WalRecord>,
    buffered_weightless: u64,
    since_snapshot: u64,
    sink: Option<Sink>,
    tap: Option<CommitTap>,
}

impl std::fmt::Debug for DurableEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableEngine")
            .field("disk", &self.disk)
            .field("cfg", &self.cfg)
            .field("next_seq", &self.next_seq)
            .field("segment", &self.segment)
            .field("segment_len", &self.segment_len)
            .field("buffered", &self.buffered)
            .field("buffered_weightless", &self.buffered_weightless)
            .field("since_snapshot", &self.since_snapshot)
            .field("tap", &self.tap.is_some())
            .finish_non_exhaustive()
    }
}

impl Default for DurableEngine {
    fn default() -> Self {
        DurableEngine::new(EngineConfig::default())
    }
}

impl DurableEngine {
    /// A fresh engine over an empty disk.
    #[must_use]
    pub fn new(cfg: EngineConfig) -> DurableEngine {
        DurableEngine {
            disk: SimDisk::new(),
            cfg,
            next_seq: 1,
            segment: 1,
            segment_len: 0,
            buffered: Vec::new(),
            buffered_weightless: 0,
            since_snapshot: 0,
            sink: None,
            tap: None,
        }
    }

    /// Routes telemetry through `sink` (counters/histograms for the hot
    /// path, journal events for snapshot/compact/recover).
    pub fn attach_sink(&mut self, sink: Sink) {
        self.sink = Some(sink);
    }

    /// Installs (or replaces) the commit observer. See [`CommitTap`].
    pub fn set_commit_tap(&mut self, tap: CommitTap) {
        self.tap = Some(tap);
    }

    /// Removes the commit observer.
    pub fn clear_commit_tap(&mut self) {
        self.tap = None;
    }

    /// The underlying simulated disk (fault injection, inspection).
    pub fn disk_mut(&mut self) -> &mut SimDisk {
        &mut self.disk
    }

    /// Read-only view of the simulated disk.
    #[must_use]
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// The next sequence number an append would receive.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Records buffered but not yet committed.
    #[must_use]
    pub fn pending_records(&self) -> usize {
        self.buffered.len()
    }

    /// Committed WAL segment file names, in order.
    #[must_use]
    pub fn segments(&self) -> Vec<String> {
        self.disk.files_with_prefix("wal/")
    }

    /// Buffers a record for the next commit and returns its sequence
    /// number. Cheap: one encode-free push plus counter bumps.
    pub fn append(&mut self, ns: &str, payload: Vec<u8>) -> u64 {
        let start = Instant::now();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.buffered.push(WalRecord {
            seq,
            ns: ns.to_string(),
            payload,
        });
        if let Some(sink) = &self.sink {
            sink.inc("durable.wal.appends");
            sink.record("durable.wal.append_ns", start.elapsed().as_nanos() as u64);
        }
        seq
    }

    /// Like [`DurableEngine::append`], but the record does not advance
    /// the snapshot cadence. For high-rate bounded diagnostics (the
    /// trace flight ring): the record still commits, replays, and is
    /// compacted away by checkpoints, but its chatter never forces an
    /// extra full-state snapshot of its own.
    pub fn append_weightless(&mut self, ns: &str, payload: Vec<u8>) -> u64 {
        self.buffered_weightless += 1;
        self.append(ns, payload)
    }

    /// Group commit: frames every buffered record into the log and
    /// issues a single sync. Returns the batch size (0 = no-op).
    ///
    /// The whole batch is framed into one buffer via the reserve/patch
    /// writer path — no per-record allocation — and flushed with one
    /// disk append per touched segment.
    pub fn commit(&mut self) -> usize {
        if self.buffered.is_empty() {
            return 0;
        }
        let batch = std::mem::take(&mut self.buffered);
        let n = batch.len();
        let mut w = pmp_wire::Writer::with_capacity(batch.iter().map(|r| r.payload.len() + r.ns.len() + 24).sum());
        let mut seg_start = 0;
        for rec in &batch {
            let frame_start = w.mark();
            encode_record_into(rec, &mut w);
            let frame_len = w.mark() - frame_start;
            if self.segment_len > 0 && self.segment_len + frame_len > self.cfg.segment_bytes {
                // Flush the frames accumulated for the closing segment,
                // then roll; the frame just written opens the new one.
                if frame_start > seg_start {
                    self.disk.append(
                        &segment_file(self.segment),
                        &w.as_bytes()[seg_start..frame_start],
                    );
                }
                self.segment += 1;
                self.segment_len = 0;
                seg_start = frame_start;
            }
            self.segment_len += frame_len;
        }
        self.disk
            .append(&segment_file(self.segment), w.bytes_from(seg_start));
        self.disk.sync();
        self.since_snapshot += n as u64 - std::mem::take(&mut self.buffered_weightless);
        if let Some(sink) = &self.sink {
            sink.inc("durable.wal.commits");
            sink.record("durable.commit.batch", n as u64);
        }
        if let Some(tap) = &mut self.tap {
            tap(&batch);
        }
        n
    }

    /// The committed WAL records with `seq >= since_seq`, in order —
    /// the short-gap bootstrap path for a late stream subscriber.
    ///
    /// Returns `None` when the log cannot prove contiguous coverage of
    /// `[since_seq, committed horizon)`: compaction dropped the range,
    /// a segment is missing, or a frame fails to read back. Callers
    /// must then fall back to a full snapshot. `Some(vec![])` means the
    /// caller is already at the horizon.
    #[must_use]
    pub fn wal_tail(&self, since_seq: u64) -> Option<Vec<WalRecord>> {
        let committed_next = self.next_seq - self.buffered.len() as u64;
        if since_seq >= committed_next {
            return Some(Vec::new());
        }
        let mut out = Vec::new();
        let mut expect = since_seq;
        for seg in self.segments() {
            let bytes = self.disk.read(&seg).unwrap_or(&[]);
            let mut offset = 0;
            loop {
                match decode_record(bytes, offset) {
                    Ok(None) => break,
                    Ok(Some((rec, next))) => {
                        offset = next;
                        if rec.seq < since_seq {
                            continue;
                        }
                        if rec.seq != expect {
                            return None; // gap: compacted or lost
                        }
                        expect = rec.seq + 1;
                        out.push(rec);
                    }
                    Err(_) => return None, // torn/corrupt: not servable
                }
            }
        }
        (expect == committed_next).then_some(out)
    }

    /// Whether enough records have committed since the last snapshot
    /// to warrant a checkpoint (see [`EngineConfig::snapshot_every`]).
    #[must_use]
    pub fn should_checkpoint(&self) -> bool {
        self.cfg.snapshot_every > 0 && self.since_snapshot >= self.cfg.snapshot_every
    }

    /// Writes a snapshot of every given state and compacts the log:
    /// all segments (now fully covered) and older snapshots are
    /// deleted. Flushes any buffered records first.
    pub fn checkpoint(&mut self, states: &[&dyn Durable]) {
        self.commit();
        let mut namespaces = BTreeMap::new();
        for state in states {
            namespaces.insert(state.namespace().to_string(), state.snapshot_bytes());
        }
        let snap = SnapshotFile {
            next_seq: self.next_seq,
            namespaces,
        };
        let mut framed = Vec::new();
        encode_framed(&pmp_wire::to_bytes(&snap), &mut framed);
        let snap_name = snapshot_file(self.next_seq);
        let snap_bytes = framed.len();
        self.disk.append(&snap_name, &framed);

        let old_segments = self.segments();
        let dropped_bytes: usize = old_segments.iter().map(|s| self.disk.len(s)).sum();
        for seg in &old_segments {
            self.disk.remove(seg);
        }
        for old_snap in self.disk.files_with_prefix("snap/") {
            if old_snap != snap_name {
                self.disk.remove(&old_snap);
            }
        }
        self.disk.sync();
        self.segment += 1;
        self.segment_len = 0;
        self.since_snapshot = 0;

        if let Some(sink) = &self.sink {
            sink.inc("durable.snapshot.count");
            sink.event(
                Subsystem::Durable,
                "snapshot",
                format!("seq={} states={} bytes={snap_bytes}", self.next_seq, states.len()),
            );
            sink.event(
                Subsystem::Durable,
                "compact",
                format!("segments={} bytes={dropped_bytes}", old_segments.len()),
            );
        }
    }

    /// Simulates the process dying: the uncommitted batch and all
    /// unsynced disk bytes vanish. The committed image survives.
    pub fn crash(&mut self) {
        self.buffered.clear();
        self.buffered_weightless = 0;
        self.disk.crash();
    }

    /// Rebuilds state from the committed image: newest valid snapshot,
    /// then WAL replay (see module docs). Never panics on corruption.
    pub fn recover(&mut self, states: &mut [&mut dyn Durable]) -> RecoverReport {
        let start = Instant::now();
        let mut report = RecoverReport::default();
        self.buffered.clear();
        self.buffered_weightless = 0;
        self.disk.crash();

        // Newest snapshot that reads back clean wins; corrupt ones are
        // skipped (an older generation is better than no baseline).
        let mut snapshot = None;
        for snap_name in self.disk.files_with_prefix("snap/").into_iter().rev() {
            let bytes = self.disk.read(&snap_name).unwrap_or(&[]);
            let parsed = decode_framed(bytes, 0)
                .ok()
                .flatten()
                .and_then(|(body, _)| pmp_wire::from_bytes::<SnapshotFile>(body).ok());
            match parsed {
                Some(snap) => {
                    snapshot = Some(snap);
                    break;
                }
                None => report.skipped_snapshots += 1,
            }
        }

        let mut next_seq = 1;
        if let Some(snap) = &snapshot {
            next_seq = snap.next_seq;
            report.snapshot_seq = Some(snap.next_seq);
            for state in states.iter_mut() {
                if let Some(bytes) = snap.namespaces.get(state.namespace()) {
                    if let Err(e) = state.restore_snapshot(bytes) {
                        report
                            .apply_errors
                            .push((snap.next_seq, format!("snapshot restore: {e}")));
                    }
                }
            }
        }

        // Replay committed segments in order; a numbering gap means a
        // lost segment — records beyond it cannot be trusted in order.
        let seg_names = self.segments();
        let mut seg_numbers: Vec<u64> =
            seg_names.iter().filter_map(|s| segment_number(s)).collect();
        seg_numbers.sort_unstable();
        let mut replay: Vec<u64> = Vec::new();
        for &n in &seg_numbers {
            if let Some(&prev) = replay.last() {
                if n != prev + 1 {
                    report.missing_segments.extend(prev + 1..n);
                    break;
                }
            }
            replay.push(n);
        }

        'segments: for (i, &seg_n) in replay.iter().enumerate() {
            let file = segment_file(seg_n);
            let is_last = i + 1 == replay.len();
            let bytes = self.disk.read(&file).unwrap_or(&[]).to_vec();
            let mut offset = 0;
            loop {
                match decode_record(&bytes, offset) {
                    Ok(None) => break,
                    Ok(Some((rec, next))) => {
                        offset = next;
                        if rec.seq < next_seq {
                            continue; // covered by the snapshot
                        }
                        next_seq = rec.seq + 1;
                        report.replayed += 1;
                        let mut claimed = false;
                        for state in states.iter_mut() {
                            if state.namespace() == rec.ns {
                                claimed = true;
                                if let Err(e) = state.apply_record(&rec.payload) {
                                    report.apply_errors.push((rec.seq, e.to_string()));
                                }
                                break;
                            }
                        }
                        if !claimed {
                            report.unknown_namespace += 1;
                        }
                    }
                    Err(err) if err.is_torn() && is_last => {
                        // The expected after-crash shape: a partially
                        // written final record. Truncate it away.
                        self.disk.truncate(&file, offset);
                        self.disk.sync();
                        report.torn = Some(Anomaly {
                            file: file.clone(),
                            offset,
                            detail: err.to_string(),
                        });
                        break 'segments;
                    }
                    Err(err) => {
                        report.corrupt = Some(Anomaly {
                            file: file.clone(),
                            offset: err.offset(),
                            detail: err.to_string(),
                        });
                        break 'segments;
                    }
                }
            }
        }

        self.next_seq = next_seq;
        self.segment = seg_numbers.iter().copied().max().unwrap_or(0) + 1;
        self.segment_len = 0;
        self.since_snapshot = report.replayed;
        report.next_seq = next_seq;

        // A corrupt record or a lost segment stays on disk, and replay
        // always stops at the first anomaly — so without compaction the
        // *next* recovery would stall at the same spot and silently
        // discard everything committed after this one. Snapshot the
        // recovered image immediately: the checkpoint supersedes the
        // poisoned log and recovery stays idempotent.
        if report.corrupt.is_some() || !report.missing_segments.is_empty() {
            let recovered: Vec<&dyn Durable> =
                states.iter().map(|s| &**s as &dyn Durable).collect();
            self.checkpoint(&recovered);
        }

        if let Some(sink) = &self.sink {
            sink.inc("durable.recover.count");
            sink.record("durable.recover_ms", start.elapsed().as_millis() as u64);
            if report.corrupt.is_some() {
                sink.inc("durable.recover.corrupt_records");
            }
            sink.event(
                Subsystem::Durable,
                "recover",
                format!(
                    "replayed={} next_seq={} torn={} corrupt={} missing={}",
                    report.replayed,
                    report.next_seq,
                    report.torn.is_some(),
                    report.corrupt.is_some(),
                    report.missing_segments.len()
                ),
            );
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DurableError;

    /// A toy durable state: an append-only list of u64 values.
    #[derive(Debug, Default, PartialEq, Eq)]
    struct Ledger {
        values: Vec<u64>,
    }

    impl Durable for Ledger {
        fn namespace(&self) -> &'static str {
            "test.ledger"
        }
        fn snapshot_bytes(&self) -> Vec<u8> {
            pmp_wire::to_bytes(&self.values)
        }
        fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), DurableError> {
            self.values = pmp_wire::from_bytes(bytes)?;
            Ok(())
        }
        fn apply_record(&mut self, payload: &[u8]) -> Result<(), DurableError> {
            self.values.push(pmp_wire::from_bytes(payload)?);
            Ok(())
        }
    }

    fn append_value(engine: &mut DurableEngine, ledger: &mut Ledger, v: u64) {
        ledger.values.push(v);
        engine.append("test.ledger", pmp_wire::to_bytes(&v));
    }

    #[test]
    fn commit_then_crash_then_recover_restores_everything() {
        let mut engine = DurableEngine::default();
        let mut ledger = Ledger::default();
        for v in [10, 20, 30] {
            append_value(&mut engine, &mut ledger, v);
        }
        assert_eq!(engine.commit(), 3);
        engine.crash();

        let mut restored = Ledger::default();
        let report = engine.recover(&mut [&mut restored]);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.replayed, 3);
        assert_eq!(restored, ledger);
        assert_eq!(engine.next_seq(), 4);
    }

    #[test]
    fn uncommitted_batch_is_lost_committed_batches_survive() {
        let mut engine = DurableEngine::default();
        let mut ledger = Ledger::default();
        append_value(&mut engine, &mut ledger, 1);
        engine.commit();
        append_value(&mut engine, &mut ledger, 2); // never committed
        engine.crash();

        let mut restored = Ledger::default();
        engine.recover(&mut [&mut restored]);
        assert_eq!(restored.values, vec![1]);
    }

    #[test]
    fn snapshot_compacts_the_log_and_recovery_uses_it() {
        let mut engine = DurableEngine::default();
        let mut ledger = Ledger::default();
        for v in 1..=5 {
            append_value(&mut engine, &mut ledger, v);
        }
        engine.commit();
        engine.checkpoint(&[&ledger]);
        assert!(engine.segments().is_empty(), "log compacted away");

        for v in 6..=8 {
            append_value(&mut engine, &mut ledger, v);
        }
        engine.commit();
        engine.crash();

        let mut restored = Ledger::default();
        let report = engine.recover(&mut [&mut restored]);
        assert_eq!(report.snapshot_seq, Some(6));
        assert_eq!(report.replayed, 3, "only post-snapshot records replay");
        assert_eq!(restored.values, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn segments_roll_at_the_configured_size() {
        let mut engine = DurableEngine::new(EngineConfig {
            segment_bytes: 64,
            snapshot_every: 0,
        });
        let mut ledger = Ledger::default();
        for v in 0..20 {
            append_value(&mut engine, &mut ledger, v);
            engine.commit();
        }
        assert!(engine.segments().len() > 1, "log should have rolled");
        let mut restored = Ledger::default();
        let report = engine.recover(&mut [&mut restored]);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(restored, ledger);
    }

    #[test]
    fn torn_tail_is_truncated_to_the_last_good_record() {
        let mut engine = DurableEngine::default();
        let mut ledger = Ledger::default();
        for v in [7, 8, 9] {
            append_value(&mut engine, &mut ledger, v);
        }
        engine.commit();
        let seg = engine.segments().pop().unwrap();
        assert!(engine.disk_mut().inject_torn_tail(&seg, 5));

        let mut restored = Ledger::default();
        let report = engine.recover(&mut [&mut restored]);
        let torn = report.torn.expect("torn tail reported");
        assert_eq!(torn.file, seg);
        assert_eq!(restored.values, vec![7, 8], "last record truncated away");
        assert_eq!(report.next_seq, 3);

        // Post-recovery writes land in a fresh segment and survive.
        append_value(&mut engine, &mut restored, 10);
        engine.commit();
        engine.crash();
        let mut again = Ledger::default();
        let report = engine.recover(&mut [&mut again]);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(again.values, vec![7, 8, 10]);
    }

    #[test]
    fn bit_flip_stops_replay_at_the_corrupt_offset() {
        let mut engine = DurableEngine::default();
        let mut ledger = Ledger::default();
        for v in [1, 2, 3] {
            append_value(&mut engine, &mut ledger, v);
        }
        engine.commit();
        let seg = engine.segments().pop().unwrap();
        // Corrupt the second record's body (frames are equal-sized here).
        let frame = engine.disk().len(&seg) / 3;
        assert!(engine.disk_mut().inject_bit_flip(&seg, frame + 6));

        let mut restored = Ledger::default();
        let report = engine.recover(&mut [&mut restored]);
        let corrupt = report.corrupt.expect("corruption reported");
        assert_eq!(corrupt.offset, frame, "offset names the frame start");
        assert_eq!(restored.values, vec![1], "replay stopped before the flip");
    }

    /// Found by the chaos harness (seed 20): a corrupt record used to
    /// stay on disk after recovery, so the *next* recovery stalled at
    /// the same offset and silently dropped everything committed since.
    /// Recovery must compact the poisoned log away.
    #[test]
    fn recovery_after_corruption_is_idempotent() {
        let mut engine = DurableEngine::default();
        let mut ledger = Ledger::default();
        for v in [1, 2, 3] {
            append_value(&mut engine, &mut ledger, v);
        }
        engine.commit();
        let seg = engine.segments().pop().unwrap();
        let frame = engine.disk().len(&seg) / 3;
        assert!(engine.disk_mut().inject_bit_flip(&seg, frame + 6));

        // First recovery: stops at the flip, keeps the prefix, and
        // checkpoints it so the corrupt segment is gone.
        let mut restored = Ledger::default();
        let report = engine.recover(&mut [&mut restored]);
        assert!(report.corrupt.is_some());
        assert_eq!(restored.values, vec![1]);
        assert!(
            engine.segments().is_empty(),
            "poisoned log compacted at recovery"
        );

        // Life goes on: new records commit after the recovery.
        append_value(&mut engine, &mut restored, 9);
        engine.commit();
        engine.crash();

        // Second recovery must see a clean image including the new
        // record — not re-trip over the old corruption.
        let mut again = Ledger::default();
        let report = engine.recover(&mut [&mut again]);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(again.values, vec![1, 9]);
    }

    #[test]
    fn missing_middle_segment_is_reported_and_bounds_replay() {
        let mut engine = DurableEngine::new(EngineConfig {
            segment_bytes: 32,
            snapshot_every: 0,
        });
        let mut ledger = Ledger::default();
        for v in 0..12 {
            append_value(&mut engine, &mut ledger, v);
            engine.commit();
        }
        let segs = engine.segments();
        assert!(segs.len() >= 3, "need at least three segments");
        assert!(engine.disk_mut().inject_remove(&segs[1]));

        let mut restored = Ledger::default();
        let report = engine.recover(&mut [&mut restored]);
        assert!(!report.missing_segments.is_empty());
        assert!(
            restored.values.len() < ledger.values.len(),
            "replay must stop at the gap"
        );
        // Whatever replayed is a strict prefix — never reordered data.
        assert_eq!(restored.values[..], ledger.values[..restored.values.len()]);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_an_older_generation() {
        let mut engine = DurableEngine::default();
        let mut ledger = Ledger::default();
        append_value(&mut engine, &mut ledger, 1);
        engine.commit();
        engine.checkpoint(&[&ledger]);
        append_value(&mut engine, &mut ledger, 2);
        engine.commit();
        // Forge a newer, corrupt snapshot alongside the good one.
        engine.disk_mut().append("snap/9999999999999999.snap", b"junk");
        engine.disk_mut().sync();

        let mut restored = Ledger::default();
        let report = engine.recover(&mut [&mut restored]);
        assert_eq!(report.skipped_snapshots, 1);
        assert_eq!(report.snapshot_seq, Some(2));
        assert_eq!(restored.values, vec![1, 2]);
    }

    #[test]
    fn recovery_of_an_empty_disk_is_clean() {
        let mut engine = DurableEngine::default();
        let mut restored = Ledger::default();
        let report = engine.recover(&mut [&mut restored]);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.next_seq, 1);
        assert!(restored.values.is_empty());
    }

    #[test]
    fn should_checkpoint_follows_the_config() {
        let mut engine = DurableEngine::new(EngineConfig {
            segment_bytes: 8192,
            snapshot_every: 2,
        });
        let mut ledger = Ledger::default();
        append_value(&mut engine, &mut ledger, 1);
        engine.commit();
        assert!(!engine.should_checkpoint());
        append_value(&mut engine, &mut ledger, 2);
        engine.commit();
        assert!(engine.should_checkpoint());
        engine.checkpoint(&[&ledger]);
        assert!(!engine.should_checkpoint());
    }

    #[test]
    fn weightless_appends_commit_and_replay_without_advancing_cadence() {
        let mut engine = DurableEngine::new(EngineConfig {
            segment_bytes: 8192,
            snapshot_every: 2,
        });
        let mut ledger = Ledger::default();
        // Two weightless records commit fine but leave the hint cold.
        for v in [1u64, 2] {
            ledger.values.push(v);
            engine.append_weightless("test.ledger", pmp_wire::to_bytes(&v));
        }
        assert_eq!(engine.commit(), 2);
        assert!(!engine.should_checkpoint(), "weightless records trip no checkpoint");
        // A weighted pair still trips it as before.
        append_value(&mut engine, &mut ledger, 3);
        append_value(&mut engine, &mut ledger, 4);
        engine.commit();
        assert!(engine.should_checkpoint());
        // Durability is unaffected: everything replays.
        engine.crash();
        let mut restored = Ledger::default();
        let report = engine.recover(&mut [&mut restored]);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(restored, ledger);
    }

    #[test]
    fn commit_tap_sees_each_committed_batch_exactly_once() {
        use std::sync::{Arc, Mutex};
        let mut engine = DurableEngine::default();
        let seen: Arc<Mutex<Vec<u64>>> = Arc::default();
        let sink = Arc::clone(&seen);
        engine.set_commit_tap(Box::new(move |batch| {
            sink.lock().unwrap().extend(batch.iter().map(|r| r.seq));
        }));
        let mut ledger = Ledger::default();
        append_value(&mut engine, &mut ledger, 1);
        append_value(&mut engine, &mut ledger, 2);
        engine.commit();
        engine.commit(); // empty: no tap call
        append_value(&mut engine, &mut ledger, 3);
        engine.checkpoint(&[&ledger]); // flushes through commit
        assert_eq!(*seen.lock().unwrap(), vec![1, 2, 3]);

        // Recovery replays without re-entering the tap.
        engine.crash();
        let mut restored = Ledger::default();
        engine.recover(&mut [&mut restored]);
        assert_eq!(*seen.lock().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn wal_tail_serves_short_gaps_and_refuses_compacted_ones() {
        let mut engine = DurableEngine::new(EngineConfig {
            segment_bytes: 64, // force several segments
            snapshot_every: 0,
        });
        let mut ledger = Ledger::default();
        for v in 1..=6 {
            append_value(&mut engine, &mut ledger, v);
        }
        engine.commit();

        // Everything from seq 1, a suffix from seq 4, nothing from the
        // horizon — all servable from the log, even across segments.
        let all = engine.wal_tail(1).expect("full tail");
        assert_eq!(all.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5, 6]);
        let tail = engine.wal_tail(4).expect("suffix tail");
        assert_eq!(tail.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![4, 5, 6]);
        assert_eq!(engine.wal_tail(7), Some(Vec::new()));

        // Uncommitted appends never stream out of the tail.
        append_value(&mut engine, &mut ledger, 7);
        assert_eq!(engine.wal_tail(7), Some(Vec::new()));
        engine.commit();
        assert_eq!(engine.wal_tail(7).expect("now committed").len(), 1);

        // The crossover: checkpoint compacts the log, so a gap that
        // reaches behind the snapshot horizon is no longer servable —
        // the caller must fall back to snapshot bytes — while the
        // horizon itself still answers empty.
        engine.checkpoint(&[&ledger]);
        assert_eq!(engine.wal_tail(4), None, "compacted range refused");
        assert_eq!(engine.wal_tail(engine.next_seq()), Some(Vec::new()));
        for v in [8, 9] {
            append_value(&mut engine, &mut ledger, v);
        }
        engine.commit();
        let fresh = engine.wal_tail(8).expect("post-checkpoint tail");
        assert_eq!(fresh.len(), 2);
        assert_eq!(engine.wal_tail(4), None, "pre-snapshot range stays dead");
    }

    #[test]
    fn wal_tail_refuses_a_log_with_a_missing_segment() {
        let mut engine = DurableEngine::new(EngineConfig {
            segment_bytes: 32,
            snapshot_every: 0,
        });
        let mut ledger = Ledger::default();
        for v in 0..12 {
            append_value(&mut engine, &mut ledger, v);
            engine.commit();
        }
        let segs = engine.segments();
        assert!(segs.len() >= 3);
        assert!(engine.disk_mut().inject_remove(&segs[1]));
        assert_eq!(engine.wal_tail(1), None);
    }

    #[test]
    fn telemetry_counts_appends_commits_and_recovery() {
        use pmp_telemetry::{Shared, Sink};
        let shared = Shared::new();
        let mut engine = DurableEngine::default();
        engine.attach_sink(Sink::direct(&shared));
        let mut ledger = Ledger::default();
        for v in [1, 2] {
            append_value(&mut engine, &mut ledger, v);
        }
        engine.commit();
        engine.checkpoint(&[&ledger]);
        engine.crash();
        let mut restored = Ledger::default();
        engine.recover(&mut [&mut restored]);

        assert_eq!(shared.counter_value("durable.wal.appends"), 2);
        assert_eq!(shared.counter_value("durable.wal.commits"), 1);
        assert_eq!(shared.counter_value("durable.snapshot.count"), 1);
        assert_eq!(shared.counter_value("durable.recover.count"), 1);
        let names: Vec<String> = shared.with(|t| {
            t.journal
                .events()
                .map(|e| e.name.clone())
                .collect()
        });
        assert!(names.contains(&"snapshot".to_string()));
        assert!(names.contains(&"compact".to_string()));
        assert!(names.contains(&"recover".to_string()));
    }
}
