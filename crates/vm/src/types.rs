//! Static type signatures for method parameters and return values.
//!
//! Signatures exist so PROSE crosscut patterns like
//! `void *.send*(byte[], ..)` have something to match against; the VM
//! itself checks them only loosely (arity plus coarse kinds).

use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A parameter or return type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeSig {
    /// No value (return type only).
    Void,
    /// Boolean.
    Bool,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Immutable string.
    Str,
    /// Mutable byte buffer on the heap (the paper's `byte[]`).
    Bytes,
    /// Array of values on the heap.
    Array,
    /// Instance of the named class (or a subclass).
    Object(Arc<str>),
    /// Matches any value; used by reflective/native methods.
    Any,
}

impl TypeSig {
    /// Object type constructor.
    pub fn object(name: impl AsRef<str>) -> TypeSig {
        TypeSig::Object(Arc::from(name.as_ref()))
    }

    /// Parses the textual form produced by `Display` (`"void"`, `"int"`,
    /// `"byte[]"`, class names, ...). Returns `None` for empty input.
    pub fn parse(s: &str) -> Option<TypeSig> {
        let s = s.trim();
        Some(match s {
            "" => return None,
            "void" => TypeSig::Void,
            "bool" => TypeSig::Bool,
            "int" => TypeSig::Int,
            "float" => TypeSig::Float,
            "str" => TypeSig::Str,
            "byte[]" => TypeSig::Bytes,
            "arr" => TypeSig::Array,
            "any" => TypeSig::Any,
            name => TypeSig::Object(Arc::from(name)),
        })
    }

    /// Loose runtime check: does `v` inhabit this type?
    ///
    /// `Null` inhabits every reference type. Object identity vs class is
    /// checked by the VM (which knows the heap), not here; a bare `Ref`
    /// satisfies `Object`, `Bytes` and `Array`.
    pub fn admits(&self, v: &Value) -> bool {
        match (self, v) {
            (TypeSig::Any, _) => true,
            (TypeSig::Void, Value::Null) => true,
            (TypeSig::Void, _) => false,
            (TypeSig::Bool, Value::Bool(_)) => true,
            (TypeSig::Int, Value::Int(_)) => true,
            (TypeSig::Float, Value::Float(_)) => true,
            (TypeSig::Str, Value::Str(_)) => true,
            (TypeSig::Bytes | TypeSig::Array | TypeSig::Object(_), Value::Ref(_) | Value::Null) => {
                true
            }
            _ => false,
        }
    }
}

impl fmt::Display for TypeSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeSig::Void => write!(f, "void"),
            TypeSig::Bool => write!(f, "bool"),
            TypeSig::Int => write!(f, "int"),
            TypeSig::Float => write!(f, "float"),
            TypeSig::Str => write!(f, "str"),
            TypeSig::Bytes => write!(f, "byte[]"),
            TypeSig::Array => write!(f, "arr"),
            TypeSig::Object(name) => write!(f, "{name}"),
            TypeSig::Any => write!(f, "any"),
        }
    }
}

/// A full method signature: `ret Class.name(params...)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodSig {
    /// Declaring class name.
    pub class: Arc<str>,
    /// Method name.
    pub name: Arc<str>,
    /// Parameter types (excluding the receiver).
    pub params: Vec<TypeSig>,
    /// Return type.
    pub ret: TypeSig,
}

impl fmt::Display for MethodSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}.{}(", self.ret, self.class, self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ObjId;

    #[test]
    fn admits_matches_kinds() {
        assert!(TypeSig::Int.admits(&Value::Int(1)));
        assert!(!TypeSig::Int.admits(&Value::Float(1.0)));
        assert!(TypeSig::Any.admits(&Value::Null));
        assert!(TypeSig::Bytes.admits(&Value::Ref(ObjId(0))));
        assert!(TypeSig::object("Motor").admits(&Value::Null));
        assert!(!TypeSig::Str.admits(&Value::Int(1)));
    }

    #[test]
    fn parse_roundtrips_display() {
        for ty in [
            TypeSig::Void,
            TypeSig::Bool,
            TypeSig::Int,
            TypeSig::Float,
            TypeSig::Str,
            TypeSig::Bytes,
            TypeSig::Array,
            TypeSig::Any,
            TypeSig::object("Motor"),
        ] {
            assert_eq!(TypeSig::parse(&ty.to_string()), Some(ty));
        }
        assert_eq!(TypeSig::parse(""), None);
        assert_eq!(TypeSig::parse("  int "), Some(TypeSig::Int));
    }

    #[test]
    fn display_forms() {
        let sig = MethodSig {
            class: Arc::from("Motor"),
            name: Arc::from("rotate"),
            params: vec![TypeSig::Int, TypeSig::Bytes],
            ret: TypeSig::Void,
        };
        assert_eq!(sig.to_string(), "void Motor.rotate(int, byte[])");
    }
}
