//! Full-platform integration tests: the paper's production-hall
//! lifecycle (Fig. 2) end to end — discovery, signed distribution,
//! session + access control on remote calls, monitoring into the hall
//! database, revocation on departure, and per-hall policy differences.

use pmp::core::{ProductionHalls, CORRIDOR, IN_HALL_B};
use pmp::midas::ReceiverEvent;
use pmp::telemetry::Subsystem;

const SEC: u64 = 1_000_000_000;

fn adapted_world() -> ProductionHalls {
    let mut w = ProductionHalls::build(11);
    w.platform.pump(6 * SEC);
    assert_eq!(
        w.platform.node(w.robot).receiver.installed_ids(),
        vec![
            "ext/access-control".to_string(),
            "ext/monitoring".to_string(),
            "ext/session".to_string(),
        ],
        "hall A catalog installed (session pulled in as implicit dep)"
    );
    w
}

#[test]
fn entering_hall_a_installs_the_full_catalog() {
    let _ = adapted_world();
}

#[test]
fn authorized_operator_draws_and_movements_reach_the_hall_database() {
    let mut w = adapted_world();
    let req = w.platform.rpc(
        w.base_a,
        w.robot,
        "operator:1",
        "DrawingService",
        "drawLine",
        vec![0, 0, 10, 0],
    );
    w.platform.pump(2 * SEC);

    let outcomes = w.platform.take_rpc_outcomes();
    let outcome = outcomes.iter().find(|o| o.req == req).expect("reply");
    assert!(outcome.ok, "authorized call succeeded: {outcome:?}");

    // The stroke landed on paper.
    let canvas = w.platform.node(w.robot).canvas().unwrap();
    assert_eq!(canvas.len(), 1);
    assert_eq!(canvas.strokes()[0].to, (10, 0));

    // The monitoring extension streamed the motor commands to hall A's
    // database (Fig. 3b step 3).
    let store = &w.platform.base(w.base_a).store;
    assert!(!store.is_empty(), "movements logged");
    let moves = store.by_robot("robot:1:1");
    assert!(
        moves.iter().any(|r| r.command == "Motor.rotate" && r.args == vec![10]),
        "the X rotation was logged: {moves:?}"
    );
    assert!(moves.iter().all(|r| r.robot == "robot:1:1"));
    assert!(moves.iter().any(|r| r.duration_ns > 0));
}

#[test]
fn unauthorized_caller_is_denied_by_the_access_control_extension() {
    let mut w = adapted_world();
    let req = w.platform.rpc(
        w.base_a,
        w.robot,
        "intruder:99",
        "DrawingService",
        "drawLine",
        vec![0, 0, 10, 0],
    );
    w.platform.pump(2 * SEC);

    let outcomes = w.platform.take_rpc_outcomes();
    let outcome = outcomes.iter().find(|o| o.req == req).expect("reply");
    assert!(!outcome.ok);
    assert!(
        outcome.value.contains("AccessDeniedException"),
        "denied with the paper's exception: {}",
        outcome.value
    );
    // The hardware never moved.
    assert!(w.platform.node(w.robot).canvas().unwrap().is_empty());
}

#[test]
fn leaving_hall_a_withdraws_every_extension() {
    let mut w = adapted_world();
    w.platform.move_node(w.robot, CORRIDOR);
    w.platform.pump(12 * SEC);

    let node = w.platform.node(w.robot);
    assert!(
        node.receiver.installed_ids().is_empty(),
        "all extensions gone: {:?}",
        node.receiver.installed_ids()
    );
    assert!(node
        .events
        .iter()
        .any(|e| matches!(e, ReceiverEvent::Removed { reason, .. } if reason.contains("lease expired"))));
}

#[test]
fn hall_b_applies_its_own_policy_geofence() {
    let mut w = adapted_world();
    // Roam: hall A → corridor → hall B.
    w.platform.move_node(w.robot, CORRIDOR);
    w.platform.pump(12 * SEC);
    w.platform.move_node(w.robot, IN_HALL_B);
    w.platform.pump(6 * SEC);

    let ids = w.platform.node(w.robot).receiver.installed_ids();
    assert_eq!(
        ids,
        vec!["ext/billing".to_string(), "ext/geofence".to_string()],
        "hall B catalog replaced hall A's"
    );

    // Inside the fence: allowed.
    let ok_req = w.platform.rpc(
        w.base_b,
        w.robot,
        "anyone",
        "DrawingService",
        "moveTo",
        vec![20, 20],
    );
    // Outside the fence: denied (paper §4.5 "Control").
    let bad_req = w.platform.rpc(
        w.base_b,
        w.robot,
        "anyone",
        "DrawingService",
        "moveTo",
        vec![50, 5],
    );
    w.platform.pump(2 * SEC);
    let outcomes = w.platform.take_rpc_outcomes();
    let ok = outcomes.iter().find(|o| o.req == ok_req).unwrap();
    assert!(ok.ok, "{ok:?}");
    let bad = outcomes.iter().find(|o| o.req == bad_req).unwrap();
    assert!(!bad.ok);
    assert!(bad.value.contains("AccessDeniedException"));
    // Position is clamped to the permitted move only.
    let robot = w.platform.node(w.robot).robot.as_ref().unwrap();
    assert_eq!(robot.lock().position(), (20, 20));
}

#[test]
fn telemetry_agrees_with_legacy_stats() {
    let mut w = adapted_world();
    w.platform.rpc(
        w.base_a,
        w.robot,
        "operator:1",
        "DrawingService",
        "drawLine",
        vec![0, 0, 10, 0],
    );
    w.platform.pump(2 * SEC);

    // The network counters mirrored into the shared registry must agree
    // exactly with the simulator's legacy `NetStats`.
    let net = w.platform.sim.trace.stats;
    let shared = w.platform.telemetry();
    assert_eq!(shared.counter_value("net.sim.sent"), net.sent);
    assert_eq!(shared.counter_value("net.sim.delivered"), net.delivered);
    assert_eq!(shared.counter_value("net.sim.dropped_range"), net.dropped_range);
    assert_eq!(shared.counter_value("net.sim.dropped_loss"), net.dropped_loss);
    assert!(net.delivered > 0, "traffic flowed: {net:?}");

    // The robot VM's registry must agree with the legacy `VmStats` view
    // — same counters, two ways of reading them.
    let node = w.platform.node(w.robot);
    let stats = node.vm.stats();
    let reg = &node.vm.telemetry().registry;
    assert_eq!(reg.counter_value("vm.hooks.checks"), stats.hook_checks);
    assert_eq!(
        reg.counter_value("vm.hooks.advice_dispatches"),
        stats.advice_dispatches
    );
    assert_eq!(reg.counter_value("vm.interp.invocations"), stats.invocations);
    assert!(stats.hook_checks > 0, "adapted calls probed hooks: {stats:?}");
    assert!(stats.advice_dispatches > 0, "advice ran: {stats:?}");

    // The base stations' storage engines journal their write path:
    // every movement row in the hall database was first a WAL append,
    // and the appends were group-committed at epoch barriers. The
    // batch histogram's sample total must agree with the append count
    // (each committed record belongs to exactly one batch).
    let store_len = w.platform.base(w.base_a).store.len() as u64;
    let appends = shared.counter_value("durable.wal.appends");
    assert!(
        appends >= store_len,
        "every stored movement hit the WAL: {appends} < {store_len}"
    );
    assert!(shared.counter_value("durable.wal.commits") > 0);
    shared.with(|t| {
        let batch = t
            .registry
            .histogram_by_name("durable.commit.batch")
            .expect("commit batches recorded");
        assert_eq!(batch.sum(), appends, "batches partition the appends");
        let append_ns = t
            .registry
            .histogram_by_name("durable.wal.append_ns")
            .expect("append latency recorded");
        assert_eq!(append_ns.count(), appends);
    });

    // The journal carried the distribution trail and delivery events.
    let (ships, delivers) = shared.with(|t| {
        (
            t.journal.events().filter(|e| e.name == "midas.ship").count(),
            t.journal
                .events()
                .filter(|e| e.subsystem == Subsystem::Net)
                .count(),
        )
    });
    assert!(ships >= 3, "hall A shipped its catalog: {ships}");
    assert!(delivers > 0, "deliveries journaled");

    // Emit the per-scenario summary (visible with --nocapture).
    println!("{}", w.telemetry_summary());
}

#[test]
fn revoking_billing_settles_charges_at_the_base() {
    let mut w = ProductionHalls::build(13);
    // Start in hall B (billing hall).
    w.platform.move_node(w.robot, IN_HALL_B);
    w.platform.pump(6 * SEC);
    assert!(w.platform.node(w.robot).receiver.is_installed("ext/billing"));

    // Ten motor actions at rate 2.
    for i in 1..=5 {
        w.platform.rpc(
            w.base_b,
            w.robot,
            "anyone",
            "DrawingService",
            "moveTo",
            vec![i, i],
        );
    }
    w.platform.pump(3 * SEC);

    // The hall revokes billing while the robot is present: the shutdown
    // procedure settles the accumulated charge.
    w.platform
        .revoke_extension(w.base_b, "ext/billing", "hall policy: billing disabled");
    w.platform.pump(3 * SEC);

    let charges = &w.platform.base(w.base_b).charges;
    assert_eq!(charges.len(), 1, "one settlement: {charges:?}");
    let (robot, reason, amount) = &charges[0];
    assert_eq!(robot, "robot:1:1");
    assert!(reason.contains("revoked"));
    // moveTo(i,i) → two motor rotations each (x and y), 5 calls,
    // plus position() reads inside moveTo; rate 2. Just check shape.
    assert!(*amount > 0, "charged a positive amount: {amount}");
    assert_eq!(*amount % 2, 0, "multiple of the rate");
}
