//! The plotter prototype (paper Fig. 4): a robot acting as a printer
//! head, moving a pen across dimensions driven by motors.
//!
//! Motor A drives the X axis, motor B the Y axis, and motor C raises or
//! lowers the pen. **All geometry flows through per-motor rotations**
//! ([`Plotter::motor_rotate`]): the VM proxy classes call exactly that,
//! so a `Motor.*` interception sees every plotter movement — the join
//! points the monitoring extension taps (Fig. 3b).

use crate::canvas::Canvas;
use crate::device::Port;
use crate::rcx::Rcx;

/// Degrees of motor rotation per plotter step.
pub const DEGREES_PER_STEP: i64 = 1;

/// Pen-lift rotation in degrees.
pub const PEN_SWING: i64 = 90;

/// A 3-axis plotter over an [`Rcx`] controller.
#[derive(Debug)]
pub struct Plotter {
    /// The underlying controller (motors, sensors, command log).
    pub rcx: Rcx,
    canvas: Canvas,
}

impl Default for Plotter {
    fn default() -> Self {
        Self::new()
    }
}

impl Plotter {
    /// Creates a plotter at the origin with the pen up.
    pub fn new() -> Self {
        Self {
            rcx: Rcx::new(),
            canvas: Canvas::new(),
        }
    }

    /// Current head position in steps, derived from motor positions.
    pub fn position(&self) -> (i64, i64) {
        (
            self.rcx.motor(Port::A).position() / DEGREES_PER_STEP,
            self.rcx.motor(Port::B).position() / DEGREES_PER_STEP,
        )
    }

    /// Is the pen down? (Derived from the pen motor's position.)
    pub fn is_pen_down(&self) -> bool {
        self.rcx.motor(Port::C).position() > 0
    }

    /// The recorded drawing.
    pub fn canvas(&self) -> &Canvas {
        &self.canvas
    }

    /// Rotates one motor and applies the plotter semantics: X/Y motor
    /// rotations with the pen down record strokes; pen-motor rotations
    /// change the pen state. Returns the simulated duration, or `None`
    /// while the hardware is frozen. This is the single funnel every
    /// higher layer (including the VM proxies) uses.
    pub fn motor_rotate(&mut self, port: Port, degrees: i64) -> Option<u64> {
        let from = self.position();
        let pen_was_down = self.is_pen_down();
        let duration = self.rcx.rotate(port, degrees)?;
        if matches!(port, Port::A | Port::B) && pen_was_down {
            let to = self.position();
            if from != to {
                self.canvas.stroke(from, to);
            }
        }
        Some(duration)
    }

    /// Lowers the pen; returns the simulated duration.
    pub fn pen_down(&mut self) -> Option<u64> {
        if self.is_pen_down() {
            return Some(0);
        }
        self.motor_rotate(Port::C, PEN_SWING)
    }

    /// Raises the pen.
    pub fn pen_up(&mut self) -> Option<u64> {
        if !self.is_pen_down() {
            return Some(0);
        }
        self.motor_rotate(Port::C, -PEN_SWING)
    }

    /// Moves the head to `(x, y)` steps (X axis then Y axis; with the
    /// pen down this draws an axis-aligned L, like the real hardware
    /// moving one motor at a time). Returns the simulated duration.
    pub fn move_to(&mut self, x: i64, y: i64) -> Option<u64> {
        let (cx, cy) = self.position();
        let mut total = 0u64;
        let dx = (x - cx) * DEGREES_PER_STEP;
        if dx != 0 {
            total = total.max(self.motor_rotate(Port::A, dx)?);
        }
        let dy = (y - cy) * DEGREES_PER_STEP;
        if dy != 0 {
            total = total.max(self.motor_rotate(Port::B, dy)?);
        }
        Some(total)
    }

    /// Draws a polyline: pen up, move to the first point, pen down,
    /// trace the rest, pen up. Returns total simulated duration.
    pub fn draw_polyline(&mut self, points: &[(i64, i64)]) -> Option<u64> {
        let mut total = 0u64;
        let Some((first, rest)) = points.split_first() else {
            return Some(0);
        };
        total += self.pen_up()?;
        total += self.move_to(first.0, first.1)?;
        total += self.pen_down()?;
        for p in rest {
            total += self.move_to(p.0, p.1)?;
        }
        total += self.pen_up()?;
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moves_without_pen_leave_no_marks() {
        let mut p = Plotter::new();
        p.move_to(10, 10).unwrap();
        assert!(p.canvas().is_empty());
        assert_eq!(p.position(), (10, 10));
    }

    #[test]
    fn pen_down_draws_strokes() {
        let mut p = Plotter::new();
        p.pen_down().unwrap();
        p.move_to(5, 0).unwrap();
        p.move_to(5, 5).unwrap();
        assert_eq!(p.canvas().len(), 2);
        assert_eq!(p.canvas().strokes()[0].from, (0, 0));
        assert_eq!(p.canvas().strokes()[0].to, (5, 0));
        assert_eq!(p.canvas().strokes()[1].to, (5, 5));
    }

    #[test]
    fn polyline_draws_a_square() {
        let mut p = Plotter::new();
        p.draw_polyline(&[(0, 0), (10, 0), (10, 10), (0, 10), (0, 0)])
            .unwrap();
        assert_eq!(p.canvas().len(), 4);
        assert_eq!(p.canvas().bounds(), Some(((0, 0), (10, 10))));
        assert!(!p.is_pen_down());
    }

    #[test]
    fn every_movement_hits_the_motor_log() {
        let mut p = Plotter::new();
        p.draw_polyline(&[(0, 0), (3, 0)]).unwrap();
        let commands: Vec<&str> = p.rcx.log().iter().map(|c| c.command.as_str()).collect();
        assert_eq!(commands, ["rotate", "rotate", "rotate"]);
        let devices: Vec<&str> = p.rcx.log().iter().map(|c| c.device.as_str()).collect();
        assert_eq!(devices, ["motor:C", "motor:A", "motor:C"]);
    }

    #[test]
    fn diagonal_moves_draw_axis_aligned_legs() {
        let mut p = Plotter::new();
        p.pen_down().unwrap();
        p.move_to(3, 4).unwrap();
        assert_eq!(p.canvas().len(), 2);
        assert_eq!(p.canvas().strokes()[0].to, (3, 0));
        assert_eq!(p.canvas().strokes()[1].to, (3, 4));
    }

    #[test]
    fn idempotent_pen_ops() {
        let mut p = Plotter::new();
        assert_eq!(p.pen_up(), Some(0));
        p.pen_down().unwrap();
        assert_eq!(p.pen_down(), Some(0));
        assert_eq!(p.rcx.log().len(), 1);
    }

    #[test]
    fn frozen_hardware_blocks_plotting() {
        let mut p = Plotter::new();
        p.rcx.sensor_mut(Port::S1).set_value(1);
        p.rcx.poll_sensors().unwrap();
        assert_eq!(p.move_to(5, 5), None);
        p.rcx.unfreeze();
        assert!(p.move_to(5, 5).is_some());
    }
}
