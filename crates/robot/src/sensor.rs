//! Sensors with edge-triggered events.

use crate::device::Port;

/// Kind of sensor attached to a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorKind {
    /// Binary touch sensor (pressed when value > 0).
    Touch,
    /// Analog light sensor (0..100).
    Light,
    /// Rotation counter.
    Rotation,
}

/// An event produced when a sensor's reading changes significantly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SensorEvent {
    /// The sensor's port.
    pub port: Port,
    /// The sensor kind.
    pub kind: SensorKind,
    /// The new reading.
    pub value: i64,
}

/// A simulated sensor. The environment sets readings via
/// [`Sensor::set_value`]; [`Sensor::poll`] returns an event when the
/// reading changed since the last poll (touch: on press edges only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sensor {
    /// The sensor's port.
    pub port: Port,
    /// The sensor kind.
    pub kind: SensorKind,
    value: i64,
    last_polled: i64,
}

impl Sensor {
    /// Creates a sensor.
    pub fn new(port: Port, kind: SensorKind) -> Self {
        Self {
            port,
            kind,
            value: 0,
            last_polled: 0,
        }
    }

    /// Device name used in logs, e.g. `"sensor:S1"`.
    pub fn device_name(&self) -> String {
        format!("sensor:{}", self.port)
    }

    /// Current reading.
    pub fn value(&self) -> i64 {
        self.value
    }

    /// Environment hook: sets the reading.
    pub fn set_value(&mut self, value: i64) {
        self.value = value;
    }

    /// Returns an event if the reading changed since the last poll.
    /// Touch sensors only report press edges (0 → nonzero).
    pub fn poll(&mut self) -> Option<SensorEvent> {
        if self.value == self.last_polled {
            return None;
        }
        let prev = self.last_polled;
        self.last_polled = self.value;
        if self.kind == SensorKind::Touch && !(prev == 0 && self.value != 0) {
            return None;
        }
        Some(SensorEvent {
            port: self.port,
            kind: self.kind,
            value: self.value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_sensor_reports_changes_once() {
        let mut s = Sensor::new(Port::S1, SensorKind::Light);
        assert!(s.poll().is_none());
        s.set_value(42);
        let ev = s.poll().unwrap();
        assert_eq!(ev.value, 42);
        assert!(s.poll().is_none(), "no duplicate events");
    }

    #[test]
    fn touch_sensor_reports_press_edges_only() {
        let mut s = Sensor::new(Port::S2, SensorKind::Touch);
        s.set_value(1);
        assert!(s.poll().is_some(), "press");
        s.set_value(0);
        assert!(s.poll().is_none(), "release is silent");
        s.set_value(1);
        assert!(s.poll().is_some(), "second press");
    }
}
