//! Device-layer basics: ports and the hardware command log.

use pmp_wire::wire_struct;
use std::fmt;

/// An RCX port. The controller has three motor ports (A, B, C) and
/// three sensor ports (S1, S2, S3), like LEGO's RCX brick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Port {
    /// Motor port A.
    A,
    /// Motor port B.
    B,
    /// Motor port C.
    C,
    /// Sensor port 1.
    S1,
    /// Sensor port 2.
    S2,
    /// Sensor port 3.
    S3,
}

impl Port {
    /// The three motor ports.
    pub const MOTORS: [Port; 3] = [Port::A, Port::B, Port::C];
    /// The three sensor ports.
    pub const SENSORS: [Port; 3] = [Port::S1, Port::S2, Port::S3];

    /// Index of a motor port (0..3).
    ///
    /// # Panics
    ///
    /// Panics on sensor ports.
    pub fn motor_index(self) -> usize {
        match self {
            Port::A => 0,
            Port::B => 1,
            Port::C => 2,
            _ => panic!("{self} is not a motor port"),
        }
    }

    /// Index of a sensor port (0..3).
    ///
    /// # Panics
    ///
    /// Panics on motor ports.
    pub fn sensor_index(self) -> usize {
        match self {
            Port::S1 => 0,
            Port::S2 => 1,
            Port::S3 => 2,
            _ => panic!("{self} is not a sensor port"),
        }
    }

    /// Parses `"A"`, `"B"`, `"C"`, `"S1"`, `"S2"`, `"S3"`.
    pub fn parse(s: &str) -> Option<Port> {
        Some(match s {
            "A" => Port::A,
            "B" => Port::B,
            "C" => Port::C,
            "S1" => Port::S1,
            "S2" => Port::S2,
            "S3" => Port::S3,
            _ => return None,
        })
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Port::A => "A",
            Port::B => "B",
            Port::C => "C",
            Port::S1 => "S1",
            Port::S2 => "S2",
            Port::S3 => "S3",
        };
        write!(f, "{s}")
    }
}

/// One executed hardware command, as recorded by the controller log
/// (this is what the monitoring extension ships to the base station).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HwCommand {
    /// Device name, e.g. `"motor:A"`.
    pub device: String,
    /// Command name, e.g. `"rotate"`.
    pub command: String,
    /// Arguments.
    pub args: Vec<i64>,
    /// Issue time (ns, from the controller's clock).
    pub issued_at: u64,
    /// Simulated execution duration (ns).
    pub duration_ns: u64,
}

wire_struct!(HwCommand {
    device: String,
    command: String,
    args: Vec<i64>,
    issued_at: u64,
    duration_ns: u64,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_parse_display_roundtrip() {
        for p in Port::MOTORS.iter().chain(Port::SENSORS.iter()) {
            assert_eq!(Port::parse(&p.to_string()), Some(*p));
        }
        assert_eq!(Port::parse("Z"), None);
    }

    #[test]
    fn indices() {
        assert_eq!(Port::A.motor_index(), 0);
        assert_eq!(Port::C.motor_index(), 2);
        assert_eq!(Port::S2.sensor_index(), 1);
    }

    #[test]
    #[should_panic(expected = "not a motor port")]
    fn sensor_port_is_not_motor() {
        Port::S1.motor_index();
    }

    #[test]
    fn hw_command_wire_roundtrip() {
        let c = HwCommand {
            device: "motor:A".into(),
            command: "rotate".into(),
            args: vec![30],
            issued_at: 10,
            duration_ns: 20,
        };
        let bytes = pmp_wire::to_bytes(&c);
        assert_eq!(pmp_wire::from_bytes::<HwCommand>(&bytes).unwrap(), c);
    }
}
