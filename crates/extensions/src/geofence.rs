//! The control extension (paper §4.5, "Control"): "one may forbid
//! movements beyond certain coordinates so that certain parts of the
//! paper remain untouched" — a geofence on `Plotter.moveTo`.

use crate::support::{advice_params, versioned_class};
use pmp_midas::{ExtensionMeta, ExtensionPackage};
use pmp_prose::{Aspect, Crosscut, PortableAspect, PortableClass, PortableMethod};
use pmp_vm::builder::MethodBuilder;
use pmp_vm::op::Op;

/// Extension id.
pub const ID: &str = "ext/geofence";

/// Builds the geofence package: `moveTo(x, y)` calls with a target
/// outside `[min_x, max_x] × [min_y, max_y]` are denied.
pub fn package(min_x: i64, min_y: i64, max_x: i64, max_y: i64, version: u32) -> ExtensionPackage {
    let mut b = MethodBuilder::new();
    b.locals(2); // 6: x, 7: y
    let deny = b.label();
    let ok = b.label();
    b.op(Op::Load(3)).konst(0i64).op(Op::ArrGet).op(Op::ToInt).op(Op::Store(6));
    b.op(Op::Load(3)).konst(1i64).op(Op::ArrGet).op(Op::ToInt).op(Op::Store(7));
    // x < min_x || x > max_x || y < min_y || y > max_y → deny
    b.op(Op::Load(6)).konst(min_x).op(Op::Lt);
    b.jump_if(deny);
    b.op(Op::Load(6)).konst(max_x).op(Op::Gt);
    b.jump_if(deny);
    b.op(Op::Load(7)).konst(min_y).op(Op::Lt);
    b.jump_if(deny);
    b.op(Op::Load(7)).konst(max_y).op(Op::Gt);
    b.jump_if(deny);
    b.jump(ok);
    b.bind(deny);
    b.konst("movement outside permitted area");
    b.op(Op::Throw("AccessDeniedException".into()));
    b.bind(ok);
    b.op(Op::Ret);

    let class = PortableClass {
        name: versioned_class("Geofence", version),
        fields: vec![],
        methods: vec![PortableMethod {
            name: "check".into(),
            params: advice_params(),
            ret: "any".into(),
            body: b.build(),
        }],
    };
    let aspect = Aspect::script(
        "geofence",
        class,
        vec![(
            Crosscut::parse("before void Plotter.moveTo(int, int)").expect("valid"),
            "check".into(),
            -10,
        )],
    );
    ExtensionPackage {
        meta: ExtensionMeta {
            id: ID.into(),
            version,
            description: "forbids plotter movements outside a bounding box".into(),
            requires: vec![],
            permissions: vec![],
            implicit: false,
        },
        aspect: PortableAspect::try_from(&aspect).expect("portable"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_prose::{Prose, WeaveOptions};
    use pmp_robot::{new_handle, register_robot_classes, spawn_plotter};
    use pmp_vm::perm::Permissions;
    use pmp_vm::prelude::*;

    fn fenced_vm() -> (Vm, pmp_robot::RobotHandle, Value) {
        let mut vm = Vm::new(VmConfig::default());
        let handle = new_handle();
        register_robot_classes(&mut vm, &handle).unwrap();
        let prose = Prose::attach(&mut vm);
        prose
            .weave(
                &mut vm,
                package(0, 0, 20, 20, 1).aspect.into(),
                WeaveOptions::sandboxed(Permissions::none()),
            )
            .unwrap();
        let plotter = spawn_plotter(&mut vm).unwrap();
        (vm, handle, plotter)
    }

    #[test]
    fn movements_inside_fence_proceed() {
        let (mut vm, handle, plotter) = fenced_vm();
        vm.call(
            "Plotter",
            "moveTo",
            plotter,
            vec![Value::Int(10), Value::Int(10)],
        )
        .unwrap();
        assert_eq!(handle.lock().position(), (10, 10));
    }

    #[test]
    fn movements_outside_fence_are_denied_before_hardware_acts() {
        let (mut vm, handle, plotter) = fenced_vm();
        let err = vm
            .call(
                "Plotter",
                "moveTo",
                plotter,
                vec![Value::Int(50), Value::Int(5)],
            )
            .unwrap_err();
        assert_eq!(
            err.as_exception().unwrap().class.as_ref(),
            "AccessDeniedException"
        );
        assert_eq!(
            handle.lock().position(),
            (0, 0),
            "the hardware never moved"
        );
        assert!(handle.lock().rcx.log().is_empty());
    }

    #[test]
    fn negative_coordinates_denied() {
        let (mut vm, _, plotter) = fenced_vm();
        assert!(vm
            .call(
                "Plotter",
                "moveTo",
                plotter,
                vec![Value::Int(-1), Value::Int(0)],
            )
            .is_err());
    }
}
