//! Deterministic exporters: an aligned text table for humans and JSON
//! lines for tooling.
//!
//! Formatting is canonical in the `pmp-wire` sense — the same telemetry
//! state always renders to the same bytes: metrics sort by name, JSON
//! keys appear in a fixed order with no insignificant whitespace, and
//! strings use the minimal escape set (`\"`, `\\`, control characters
//! as `\n`/`\r`/`\t`/`\u00XX`).

use crate::journal::EventKind;
use crate::{Registry, Telemetry};
use std::fmt::Write;

/// Renders the registry as an aligned text table (counters, gauges,
/// then histograms, each sorted by name). Returns an empty string when
/// nothing is registered.
#[must_use]
pub fn render_table(reg: &Registry) -> String {
    let mut out = String::new();
    let mut counters: Vec<(&str, u64)> = reg.counters().collect();
    counters.sort_unstable_by_key(|(n, _)| *n);
    let mut gauges: Vec<(&str, i64)> = reg.gauges().collect();
    gauges.sort_unstable_by_key(|(n, _)| *n);
    let mut histos: Vec<_> = reg.histograms().collect();
    histos.sort_unstable_by_key(|(n, _)| *n);

    let width = counters
        .iter()
        .map(|(n, _)| n.len())
        .chain(gauges.iter().map(|(n, _)| n.len()))
        .chain(histos.iter().map(|(n, _)| n.len()))
        .max()
        .unwrap_or(0)
        .max("metric".len());

    if !counters.is_empty() || !gauges.is_empty() {
        let _ = writeln!(out, "{:width$}  {:>12}", "metric", "value");
        for (n, v) in &counters {
            let _ = writeln!(out, "{n:width$}  {v:>12}");
        }
        for (n, v) in &gauges {
            let _ = writeln!(out, "{n:width$}  {v:>12}");
        }
    }
    if !histos.is_empty() {
        let _ = writeln!(
            out,
            "{:width$}  {:>8} {:>12} {:>12} {:>12} {:>12}",
            "histogram (ns)", "count", "p50", "p90", "p99", "max"
        );
        for (n, h) in &histos {
            let _ = writeln!(
                out,
                "{n:width$}  {:>8} {:>12} {:>12} {:>12} {:>12}",
                h.count(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max()
            );
        }
    }
    out
}

/// Escapes `s` for inclusion in a JSON string literal (minimal escape
/// set, canonical output).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the whole telemetry (metrics sorted by name, then journal
/// events oldest-first) as one JSON object per line.
#[must_use]
pub fn to_json_lines(t: &Telemetry) -> String {
    let mut out = String::new();
    let mut counters: Vec<(&str, u64)> = t.registry.counters().collect();
    counters.sort_unstable_by_key(|(n, _)| *n);
    for (n, v) in counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
            json_escape(n)
        );
    }
    let mut gauges: Vec<(&str, i64)> = t.registry.gauges().collect();
    gauges.sort_unstable_by_key(|(n, _)| *n);
    for (n, v) in gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{v}}}",
            json_escape(n)
        );
    }
    let mut histos: Vec<_> = t.registry.histograms().collect();
    histos.sort_unstable_by_key(|(n, _)| *n);
    for (n, h) in histos {
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            json_escape(n),
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            h.p50(),
            h.p90(),
            h.p99()
        );
    }
    for e in t.journal.events() {
        let kind = match e.kind {
            EventKind::SpanBegin => "span_begin",
            EventKind::SpanEnd { .. } => "span_end",
            EventKind::Point => "event",
        };
        let _ = write!(
            out,
            "{{\"type\":\"{kind}\",\"seq\":{},\"at\":{},\"subsystem\":\"{}\",\"name\":\"{}\",\"detail\":\"{}\"",
            e.seq,
            e.at,
            e.subsystem.name(),
            json_escape(&e.name),
            json_escape(&e.detail)
        );
        if e.span_id != 0 {
            let _ = write!(out, ",\"span\":{}", e.span_id);
        }
        if let EventKind::SpanEnd { dur } = e.kind {
            let _ = write!(out, ",\"dur\":{dur}");
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Subsystem;
    use std::collections::BTreeMap;

    /// A deliberately tiny JSON-line reader for round-trip testing:
    /// splits one exported line into string/number fields, undoing the
    /// canonical escapes `json_escape` produces.
    fn parse_line(line: &str) -> BTreeMap<String, String> {
        let inner = line
            .strip_prefix('{')
            .and_then(|l| l.strip_suffix('}'))
            .expect("object line");
        let mut fields = BTreeMap::new();
        let mut chars = inner.chars().peekable();
        loop {
            // Key.
            assert_eq!(chars.next(), Some('"'), "key opens");
            let mut key = String::new();
            for c in chars.by_ref() {
                if c == '"' {
                    break;
                }
                key.push(c);
            }
            assert_eq!(chars.next(), Some(':'));
            // Value: string (with escapes) or bare number.
            let mut val = String::new();
            if chars.peek() == Some(&'"') {
                chars.next();
                while let Some(c) = chars.next() {
                    if c == '\\' {
                        match chars.next().expect("escape payload") {
                            'n' => val.push('\n'),
                            'r' => val.push('\r'),
                            't' => val.push('\t'),
                            'u' => {
                                let hex: String = (0..4).map(|_| chars.next().unwrap()).collect();
                                let code = u32::from_str_radix(&hex, 16).unwrap();
                                val.push(char::from_u32(code).unwrap());
                            }
                            other => val.push(other),
                        }
                    } else if c == '"' {
                        break;
                    } else {
                        val.push(c);
                    }
                }
            } else {
                while let Some(&c) = chars.peek() {
                    if c == ',' {
                        break;
                    }
                    val.push(c);
                    chars.next();
                }
            }
            fields.insert(key, val);
            match chars.next() {
                Some(',') => {}
                None => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        fields
    }

    // -- JSON-lines round-trip (satellite: telemetry coverage) --

    #[test]
    fn jsonl_round_trips_metrics_and_events() {
        let mut t = Telemetry::new();
        let c = t.registry.counter("vm.hooks.checks");
        t.registry.add(c, 41);
        let g = t.registry.gauge("prose.aspects.active");
        t.registry.set_gauge(g, -2);
        let h = t.registry.histogram("prose.weave.latency_ns");
        t.registry.record(h, 1500);
        t.journal
            .event(Subsystem::Midas, "midas.ship", "ext/\"quoted\"\n\tid\u{1}");

        let text = t.to_json_lines();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);

        let counter = parse_line(lines[0]);
        assert_eq!(counter["type"], "counter");
        assert_eq!(counter["name"], "vm.hooks.checks");
        assert_eq!(counter["value"], "41");

        let gauge = parse_line(lines[1]);
        assert_eq!(gauge["value"], "-2");

        let histo = parse_line(lines[2]);
        assert_eq!(histo["count"], "1");
        assert_eq!(histo["p99"], "1500");

        let ev = parse_line(lines[3]);
        assert_eq!(ev["subsystem"], "midas");
        // Escapes round-trip exactly, control characters included.
        assert_eq!(ev["detail"], "ext/\"quoted\"\n\tid\u{1}");
    }

    #[test]
    fn jsonl_is_canonical() {
        let mut t = Telemetry::new();
        // Registration order differs from name order; export sorts.
        t.registry.counter("b.second");
        t.registry.counter("a.first");
        let once = t.to_json_lines();
        let twice = t.to_json_lines();
        assert_eq!(once, twice, "same state, same bytes");
        assert!(once.lines().next().unwrap().contains("a.first"));
    }

    #[test]
    fn table_renders_all_kinds() {
        let mut t = Telemetry::new();
        let c = t.registry.counter("net.sim.sent");
        t.registry.add(c, 12);
        let g = t.registry.gauge("prose.aspects.active");
        t.registry.set_gauge(g, 3);
        let h = t.registry.histogram("midas.receiver.verify_ns");
        t.registry.record(h, 900);
        let table = render_table(&t.registry);
        assert!(table.contains("net.sim.sent"));
        assert!(table.contains("12"));
        assert!(table.contains("prose.aspects.active"));
        assert!(table.contains("midas.receiver.verify_ns"));
        assert!(table.contains("histogram"));
    }

    #[test]
    fn empty_registry_renders_empty() {
        let t = Telemetry::new();
        assert_eq!(render_table(&t.registry), "");
        assert_eq!(t.to_json_lines(), "");
    }

    #[test]
    fn span_end_line_has_duration() {
        let mut t = Telemetry::new();
        let span = t.journal.span_begin(Subsystem::Prose, "prose.weave");
        t.journal.span_end(span, "aspect=a1");
        let text = t.to_json_lines();
        let end_line = text.lines().last().unwrap();
        let f = parse_line(end_line);
        assert_eq!(f["type"], "span_end");
        assert_eq!(f["dur"], "0");
        assert_eq!(f["detail"], "aspect=a1");
    }

    // -- Span trees + dynamic gauge names (satellite: coverage) --

    /// Builds the same telemetry twice; used for byte-equality checks.
    fn span_tree_telemetry() -> Telemetry {
        let mut t = Telemetry::new();
        // A nested "tree" of spans: outer weave, inner verify, plus an
        // interleaved sibling — exactly the shape exporters must keep
        // matchable.
        let outer = t.journal.span_begin(Subsystem::Prose, "prose.weave");
        let inner = t.journal.span_begin(Subsystem::Midas, "midas.verify");
        t.journal.span_end(inner, "ext/monitoring");
        let sibling = t.journal.span_begin(Subsystem::Midas, "midas.analyze");
        t.journal.span_end(sibling, "");
        t.journal.span_end(outer, "aspect=a1");
        // Dynamic instance-embedded gauge names, as the simulator mints
        // per-channel (`net.channel.<name>.*`) metrics lazily.
        for ch in ["midas", "rpc", "tuplespace"] {
            let g = t.registry.gauge(&format!("net.channel.{ch}.queue"));
            t.registry.set_gauge(g, 2);
            let c = t.registry.counter(&format!("net.channel.{ch}.bytes"));
            t.registry.add(c, 640);
        }
        t
    }

    #[test]
    fn jsonl_round_trips_span_trees_with_matching_ids() {
        let t = span_tree_telemetry();
        let text = t.to_json_lines();
        let events: Vec<BTreeMap<String, String>> = text
            .lines()
            .map(parse_line)
            .filter(|f| f["type"].starts_with("span_"))
            .collect();
        assert_eq!(events.len(), 6, "three begin/end pairs");
        // Every end's span id resolves to exactly one earlier begin of
        // the same name — the tree reconstructs from the export alone.
        for end in events.iter().filter(|f| f["type"] == "span_end") {
            let matching: Vec<_> = events
                .iter()
                .filter(|b| {
                    b["type"] == "span_begin"
                        && b["span"] == end["span"]
                        && b["name"] == end["name"]
                })
                .collect();
            assert_eq!(matching.len(), 1, "unpaired span_end: {end:?}");
        }
        // The interleaved sibling does not steal the inner pair's id.
        let verify_ids: Vec<&String> = events
            .iter()
            .filter(|f| f["name"] == "midas.verify")
            .map(|f| &f["span"])
            .collect();
        assert_eq!(verify_ids[0], verify_ids[1]);
    }

    #[test]
    fn jsonl_round_trips_dynamic_channel_gauges() {
        let t = span_tree_telemetry();
        let text = t.to_json_lines();
        let fields: Vec<BTreeMap<String, String>> =
            text.lines().map(parse_line).collect();
        for ch in ["midas", "rpc", "tuplespace"] {
            let gauge = fields
                .iter()
                .find(|f| f["name"] == format!("net.channel.{ch}.queue"))
                .unwrap_or_else(|| panic!("gauge for {ch} exported"));
            assert_eq!(gauge["type"], "gauge");
            assert_eq!(gauge["value"], "2");
            let counter = fields
                .iter()
                .find(|f| f["name"] == format!("net.channel.{ch}.bytes"))
                .unwrap();
            assert_eq!(counter["value"], "640");
        }
    }

    #[test]
    fn identical_runs_export_identical_bytes() {
        let a = span_tree_telemetry().to_json_lines();
        let b = span_tree_telemetry().to_json_lines();
        assert_eq!(a, b, "canonical output: same state, same bytes");
        assert_eq!(
            render_table(&span_tree_telemetry().registry),
            render_table(&span_tree_telemetry().registry)
        );
    }
}
