//! The adaptation service each mobile node carries (paper Fig. 2b):
//! advertises the node, accepts signed extensions, weaves them with
//! PROSE, tracks their leases, and withdraws them autonomously.

use crate::package::{ExtensionPackage, SignedExtension};
use crate::policy::ReceiverPolicy;
use crate::proto::{MidasMsg, CHANNEL};
use pmp_analyze::{perms, termination, verifier};
use pmp_analyze::{AnalysisReport, AnalyzeOptions, SysPerm};
use pmp_discovery::{DiscoveryClient, DiscoveryEvent, Lease, ServiceItem};
use pmp_net::{Incoming, NetPort, NodeId};
use pmp_prose::{Aspect, AspectId, Prose, WeaveOptions};
use pmp_telemetry::{Shared, Sink, Subsystem};
use pmp_trace::{TraceCtx, Traced, Tracer};
use pmp_vm::perm::Permissions;
use pmp_vm::Vm;
use std::collections::{HashMap, HashSet};

const EXPIRY_TAG: &str = "midas.expiry";

/// Events surfaced by the adaptation service to its host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReceiverEvent {
    /// An extension was verified, woven, and is now active.
    Installed {
        /// Extension id.
        ext_id: String,
        /// Version.
        version: u32,
        /// The delivering base's node.
        base: NodeId,
    },
    /// A delivered extension was refused.
    Rejected {
        /// Extension id (or `"?"` if unreadable).
        ext_id: String,
        /// Why.
        reason: String,
    },
    /// An extension was withdrawn (lease expiry, revocation,
    /// replacement, or cascade).
    Removed {
        /// Extension id.
        ext_id: String,
        /// Why.
        reason: String,
    },
    /// A dependency was requested from the delivering base.
    DependencyRequested {
        /// The missing dependency id.
        ext_id: String,
    },
    /// A new base took over this node's leases after roaming: the
    /// listed extensions' grants were swapped in place — nothing was
    /// reinstalled or rewoven.
    Rebound {
        /// The adopting base.
        base: NodeId,
        /// Rebound extension ids, sorted.
        ext_ids: Vec<String>,
    },
}

#[derive(Debug)]
struct Installed {
    version: u32,
    aspect_id: AspectId,
    grant: u64,
    base: NodeId,
    lease: Lease,
    implicit: bool,
    requires: Vec<String>,
    dependents: HashSet<String>,
}

#[derive(Debug)]
struct PendingInstall {
    ext: SignedExtension,
    lease_ns: u64,
    grant: u64,
    from: NodeId,
    ctx: TraceCtx,
}

/// The adaptation-service state machine. Drive it by passing every
/// [`Incoming`] of its node — along with the node's VM and PROSE — to
/// [`AdaptationService::handle`].
#[derive(Debug)]
pub struct AdaptationService {
    node: NodeId,
    name: String,
    /// Trust store and permission caps.
    pub policy: ReceiverPolicy,
    discovery: DiscoveryClient,
    installed: HashMap<String, Installed>,
    pending: Vec<PendingInstall>,
    advertise_lease_ns: u64,
    expiry_check_ns: u64,
    expiry_token: Option<u64>,
    started: bool,
    events: Vec<ReceiverEvent>,
    telemetry: Option<Sink>,
    tracer: Option<Tracer>,
}

impl AdaptationService {
    /// Creates the adaptation service for `node`, advertising under
    /// `name` (the paper's `robot:1:1`).
    pub fn new(node: NodeId, name: impl Into<String>, policy: ReceiverPolicy) -> Self {
        Self {
            node,
            name: name.into(),
            policy,
            discovery: DiscoveryClient::new(node),
            installed: HashMap::new(),
            pending: Vec::new(),
            advertise_lease_ns: 2_000_000_000, // 2 s presence lease
            expiry_check_ns: 500_000_000,      // 0.5 s sweep
            expiry_token: None,
            started: false,
            events: Vec::new(),
            telemetry: None,
            tracer: None,
        }
    }

    /// Mirrors receiver activity into `shared`: `midas.receiver.*`
    /// counters, verify/weave wall-time histograms, and the
    /// verify/weave stages of the distribution trail in the journal.
    pub fn attach_telemetry(&mut self, shared: &Shared) {
        self.attach_sink(Sink::direct(shared));
    }

    /// Routes telemetry through a per-cell [`Sink`] (sharded drivers
    /// buffer journal events and merge them at the epoch barrier).
    pub fn attach_sink(&mut self, sink: Sink) {
        self.discovery.attach_sink(sink.clone());
        self.telemetry = Some(sink);
    }

    /// Mints verify/weave spans (and arms first-interception watches)
    /// on this node's [`Tracer`]. Without one, contexts still flow
    /// through the receiver but no spans are recorded.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    fn span_child(&self, parent: TraceCtx, now: u64, name: &str, detail: &str) -> TraceCtx {
        match &self.tracer {
            Some(t) => t.child(parent, now, name, detail),
            None => TraceCtx::NIL,
        }
    }

    fn count(&self, name: &str) {
        if let Some(s) = &self.telemetry {
            s.inc(name);
        }
    }

    fn record_ns(&self, name: &str, start: std::time::Instant) {
        if let Some(s) = &self.telemetry {
            let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            s.record(name, ns);
        }
    }

    /// Overrides the presence (discovery) lease duration.
    pub fn set_advertise_lease(&mut self, ns: u64) {
        self.advertise_lease_ns = ns;
    }

    /// Starts advertising and lease sweeping. Idempotent.
    pub fn start(&mut self, sim: &mut dyn NetPort) {
        if self.started {
            return;
        }
        self.started = true;
        self.discovery.start(sim);
        self.expiry_token = Some(sim.set_timer(self.node, self.expiry_check_ns, EXPIRY_TAG));
    }

    fn advertise(&mut self, sim: &mut dyn NetPort, registrar: NodeId) {
        let item = ServiceItem::new("midas.adaptation", self.name.clone(), self.node.0)
            .with_attr("vm", "pmp");
        self.discovery
            .register(sim, registrar, item, self.advertise_lease_ns);
    }

    /// Ids of currently installed extensions, sorted.
    pub fn installed_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.installed.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Is the extension installed?
    pub fn is_installed(&self, ext_id: &str) -> bool {
        self.installed.contains_key(ext_id)
    }

    /// Absolute lease deadline (sim-time ns) per installed extension,
    /// sorted by id. Oracles use this to bound how long an extension
    /// may outlive its lease: one sweep interval after the deadline the
    /// sweep must have withdrawn it.
    pub fn lease_deadlines(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .installed
            .iter()
            .map(|(id, inst)| (id.clone(), inst.lease.expires.0))
            .collect();
        out.sort();
        out
    }

    /// The lease-sweep period: the slack an oracle must grant before
    /// calling a still-installed, lapsed extension a violation.
    pub fn sweep_interval_ns(&self) -> u64 {
        self.expiry_check_ns
    }

    /// The node's advertised name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `(extension id, grant)` per installed extension, sorted by id.
    /// Federation oracles compare these across a roaming handoff.
    pub fn grants(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .installed
            .iter()
            .map(|(id, i)| (id.clone(), i.grant))
            .collect();
        out.sort();
        out
    }

    /// The base currently holding an installed extension's lease.
    pub fn lease_holder(&self, ext_id: &str) -> Option<NodeId> {
        self.installed.get(ext_id).map(|i| i.base)
    }

    /// Processes one inbox entry.
    pub fn handle(
        &mut self,
        sim: &mut dyn NetPort,
        vm: &mut Vm,
        prose: &Prose,
        incoming: &Incoming,
    ) -> Vec<ReceiverEvent> {
        match incoming {
            Incoming::Timer { token, .. } if Some(*token) == self.expiry_token => {
                self.sweep(sim, vm, prose);
                self.expiry_token =
                    Some(sim.set_timer(self.node, self.expiry_check_ns, EXPIRY_TAG));
            }
            Incoming::Message {
                from,
                channel,
                payload,
                ..
            } if &**channel == CHANNEL => {
                if let Ok(env) = pmp_wire::from_bytes::<Traced<MidasMsg>>(payload) {
                    self.handle_midas(sim, vm, prose, *from, env.msg, env.ctx);
                }
            }
            other => {
                for ev in self.discovery.handle(sim, other) {
                    match ev {
                        // Advertise the adaptation service (Fig. 2b):
                        // announce that this node can be adapted.
                        DiscoveryEvent::RegistrarDiscovered { node, .. } => {
                            self.advertise(sim, node);
                        }
                        // A lossy radio killed our presence lease while
                        // the registrar is still around: re-advertise
                        // immediately.
                        DiscoveryEvent::RegistrationLost { registrar, .. }
                            if self
                                .discovery
                                .known_registrars()
                                .iter()
                                .any(|(n, _)| *n == registrar)
                            => {
                                self.advertise(sim, registrar);
                            }
                        _ => {}
                    }
                }
            }
        }
        std::mem::take(&mut self.events)
    }

    fn handle_midas(
        &mut self,
        sim: &mut dyn NetPort,
        vm: &mut Vm,
        prose: &Prose,
        from: NodeId,
        msg: MidasMsg,
        ctx: TraceCtx,
    ) {
        match msg {
            MidasMsg::Deliver {
                ext,
                lease_ns,
                grant,
            } => {
                self.try_install(sim, vm, prose, from, ext, lease_ns, grant, ctx);
                self.retry_pending(sim, vm, prose);
            }
            MidasMsg::LeaseRenew { grant } => {
                let now = sim.now();
                let mut known = false;
                for inst in self.installed.values_mut() {
                    if inst.grant == grant {
                        inst.lease.renew(now);
                        known = true;
                    }
                }
                if known {
                    self.count("midas.receiver.lease_renewals");
                }
                if !known {
                    // The base believes we hold this grant but we do not
                    // (its outage outlived our leases, or the delivery
                    // was lost). Tell it so it redelivers.
                    let msg = MidasMsg::Ack {
                        ext_id: String::new(),
                        grant,
                        ok: false,
                        reason: "unknown grant".into(),
                    };
                    sim.send(self.node, from, CHANNEL, ctx.wrap(&msg));
                }
            }
            MidasMsg::Revoke { ext_id, reason } => {
                if self.installed.contains_key(&ext_id) {
                    self.uninstall(sim, vm, prose, &ext_id, &format!("revoked: {reason}"), true);
                }
            }
            MidasMsg::Replace {
                old_id,
                ext,
                lease_ns,
                grant,
            } => {
                if self.installed.contains_key(&old_id) {
                    self.uninstall(sim, vm, prose, &old_id, "replaced by newer policy", true);
                }
                self.try_install(sim, vm, prose, from, ext, lease_ns, grant, ctx);
                self.retry_pending(sim, vm, prose);
            }
            MidasMsg::GrantTransfer {
                node_name,
                rebinds,
                lease_ns,
            } => {
                if node_name != self.name {
                    return;
                }
                let now = sim.now();
                let mut rebound = Vec::new();
                for (ext_id, old, new) in rebinds {
                    let matched = self
                        .installed
                        .get_mut(&ext_id)
                        .filter(|i| i.grant == old)
                        .map(|i| {
                            i.grant = new;
                            i.base = from;
                            i.lease = Lease::grant(now, lease_ns);
                        })
                        .is_some();
                    if matched {
                        self.count("midas.receiver.rebound");
                        rebound.push(ext_id);
                    } else {
                        // We do not hold that grant (legacy handoff,
                        // lost delivery, or the lease lapsed en route):
                        // ask the adopting base to redeliver under its
                        // fresh grant.
                        let msg = MidasMsg::Ack {
                            ext_id,
                            grant: new,
                            ok: false,
                            reason: "unknown grant".into(),
                        };
                        sim.send(self.node, from, CHANNEL, ctx.wrap(&msg));
                    }
                }
                if !rebound.is_empty() {
                    rebound.sort();
                    self.events.push(ReceiverEvent::Rebound {
                        base: from,
                        ext_ids: rebound,
                    });
                }
            }
            // Base-bound messages are ignored by the receiver.
            MidasMsg::Ack { .. }
            | MidasMsg::RequestDep { .. }
            | MidasMsg::RoamingHandoff { .. }
            | MidasMsg::HandoffState { .. }
            | MidasMsg::MovementExport { .. }
            | MidasMsg::CatalogDigest { .. }
            | MidasMsg::CatalogPull { .. }
            | MidasMsg::CatalogPush { .. }
            | MidasMsg::LeaseSync { .. }
            | MidasMsg::StreamDelta { .. } => {}
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn nack(
        &mut self,
        sim: &mut dyn NetPort,
        to: NodeId,
        ext_id: &str,
        grant: u64,
        reason: String,
        ctx: TraceCtx,
    ) {
        self.count("midas.receiver.rejected");
        self.events.push(ReceiverEvent::Rejected {
            ext_id: ext_id.to_string(),
            reason: reason.clone(),
        });
        let msg = MidasMsg::Ack {
            ext_id: ext_id.to_string(),
            grant,
            ok: false,
            reason,
        };
        sim.send(self.node, to, CHANNEL, ctx.wrap(&msg));
    }

    /// Runs the static passes of the admission gate (bytecode
    /// verification, permission inference, termination) over a
    /// signature-verified package, timing each pass. `Err` carries the
    /// offending pass's name and the first finding at or above the
    /// policy threshold.
    fn analyze_package(
        &mut self,
        vm: &Vm,
        pkg: &ExtensionPackage,
    ) -> Result<(), (String, String)> {
        let policy = self.policy.analysis;
        if !policy.enabled {
            return Ok(());
        }
        let declared = Permissions::from_names(pkg.meta.permissions.iter().map(String::as_str));
        let reg = vm.sys_registry();
        let resolver = |name: &str| match reg.lookup(name) {
            Some(idx) => match reg.perm_of(idx) {
                Some(p) => SysPerm::Guarded(p),
                None => SysPerm::Unguarded,
            },
            None => SysPerm::Unknown,
        };
        // Everything this receiver weaves is sandboxed with finite
        // fuel, so back-edges are bounded (pass 3 reports them as
        // info, not warnings).
        let opts = AnalyzeOptions::default();

        let t = std::time::Instant::now();
        let mut findings = verifier::verify_class(&pkg.aspect.class, &opts);
        self.record_ns("midas.analyze.bytecode_ns", t);

        let t = std::time::Instant::now();
        let inference = perms::check_permissions(&pkg.aspect, declared, &resolver);
        self.record_ns("midas.analyze.perms_ns", t);

        let t = std::time::Instant::now();
        findings.extend(termination::check_class(&pkg.aspect.class, &opts));
        self.record_ns("midas.analyze.termination_ns", t);

        let required = inference.required;
        findings.extend(inference.findings);
        let report = AnalysisReport { findings, required };

        if let Some(f) = report.first_at(policy.reject_at) {
            let mut detail = String::new();
            if !f.method.is_empty() {
                detail.push_str(&f.method);
                if let Some(pc) = f.pc {
                    detail.push_str(&format!(" @{pc}"));
                }
                detail.push_str(": ");
            }
            detail.push_str(&f.message);
            return Err((f.pass.to_string(), detail));
        }

        self.count("midas.analyze.accepted");
        if let Some(s) = &self.telemetry {
            let summary = if report.findings.is_empty() {
                "clean".to_string()
            } else {
                format!(
                    "{} finding(s), worst {}",
                    report.findings.len(),
                    report.worst().expect("non-empty findings")
                )
            };
            s.event(
                Subsystem::Midas,
                "midas.analyze",
                format!("{} ok: {summary}", pkg.meta.id),
            );
        }
        Ok(())
    }

    /// Pass 4 of the gate: interference of the newly woven aspect with
    /// the ones already active, computed on the live dispatch tables.
    /// Advisory by default (journal + counter); when the policy makes
    /// interference fatal, the newcomer is unwoven again and the
    /// offending report returned.
    fn check_interference(
        &mut self,
        vm: &mut Vm,
        prose: &Prose,
        pkg: &ExtensionPackage,
        aspect_id: AspectId,
    ) -> Result<(), (String, String)> {
        if !self.policy.analysis.enabled {
            return Ok(());
        }
        let t = std::time::Instant::now();
        let name = &pkg.aspect.name;
        let reports: Vec<_> = prose
            .interference_report(vm)
            .into_iter()
            .filter(|r| r.aspect_a == *name || r.aspect_b == *name)
            .collect();
        self.record_ns("midas.analyze.interference_ns", t);
        if reports.is_empty() {
            return Ok(());
        }
        if let Some(s) = &self.telemetry {
            for f in pmp_analyze::interference::findings(&reports) {
                s.inc("midas.analyze.interference");
                s.event(
                    Subsystem::Midas,
                    "midas.analyze",
                    format!("{} {}", pkg.meta.id, f),
                );
            }
        }
        if self.policy.analysis.reject_on_interference {
            let _ = prose.unweave(vm, aspect_id, "interference rejected");
            let first = &reports[0];
            return Err(("interference".into(), first.detail.clone()));
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn try_install(
        &mut self,
        sim: &mut dyn NetPort,
        vm: &mut Vm,
        prose: &Prose,
        from: NodeId,
        ext: SignedExtension,
        lease_ns: u64,
        grant: u64,
        ctx: TraceCtx,
    ) {
        // 1. Trust and integrity (paper §3.2: verification of the
        //    originator before insertion). `verify_ns` is recorded on
        //    the rejection path too — slow *failed* verifications are
        //    exactly the ones worth seeing.
        let signer = ext.signer().to_string();
        let verify_start = std::time::Instant::now();
        let verified = ext.verify_and_open(&self.policy.trust);
        self.record_ns("midas.receiver.verify_ns", verify_start);
        let pkg = match verified {
            Ok(pkg) => pkg,
            Err(reason) => {
                let id = ext.open().map(|p| p.meta.id).unwrap_or_else(|_| "?".into());
                if let Some(s) = &self.telemetry {
                    s.event(Subsystem::Midas, "midas.verify", format!("{id} REJECTED: {reason}"));
                }
                self.span_child(
                    ctx,
                    sim.now().0,
                    "midas.verify",
                    &format!("{id} REJECTED: {reason}"),
                );
                self.nack(sim, from, &id, grant, reason, ctx);
                return;
            }
        };
        let id = pkg.meta.id.clone();
        if let Some(s) = &self.telemetry {
            s.event(Subsystem::Midas, "midas.verify", format!("{id} ok (signer {signer})"));
        }
        let verify_ctx = self.span_child(
            ctx,
            sim.now().0,
            "midas.verify",
            &format!("{id} ok (signer {signer})"),
        );

        // 2. Static analysis (the admission gate): a valid signature
        //    says who shipped the code, not that the code is safe to
        //    weave. Our VM has no JVM-style load-time verifier, so the
        //    receiver runs one here.
        if let Err((pass, detail)) = self.analyze_package(vm, &pkg) {
            self.count("midas.analyze.rejected");
            if let Some(s) = &self.telemetry {
                s.event(
                    Subsystem::Midas,
                    "midas.analyze",
                    format!("{id} REJECTED by {pass}: {detail}"),
                );
            }
            self.nack(sim, from, &id, grant, format!("analysis: {pass}: {detail}"), ctx);
            return;
        }

        // 3. Version check: same or newer only.
        if let Some(existing) = self.installed.get_mut(&id) {
            if existing.version > pkg.meta.version {
                self.nack(sim, from, &id, grant, "version downgrade refused".into(), ctx);
                return;
            }
            if existing.version == pkg.meta.version {
                // Duplicate delivery: adopt the new grant and lease.
                existing.grant = grant;
                existing.lease = Lease::grant(sim.now(), lease_ns);
                existing.base = from;
                let msg = MidasMsg::Ack {
                    ext_id: id,
                    grant,
                    ok: true,
                    reason: String::new(),
                };
                sim.send(self.node, from, CHANNEL, ctx.wrap(&msg));
                return;
            }
            // Newer version: replace in place.
            self.uninstall(sim, vm, prose, &id, "upgraded", true);
        }

        // 4. Implicit dependencies must be present (paper: the session
        //    management extension is automatically added first).
        let missing: Vec<String> = pkg
            .meta
            .requires
            .iter()
            .filter(|d| !self.installed.contains_key(*d))
            .cloned()
            .collect();
        if !missing.is_empty() {
            for dep in &missing {
                self.events.push(ReceiverEvent::DependencyRequested {
                    ext_id: dep.clone(),
                });
                let msg = MidasMsg::RequestDep {
                    ext_id: dep.clone(),
                };
                sim.send(self.node, from, CHANNEL, ctx.wrap(&msg));
            }
            self.pending.push(PendingInstall {
                ext,
                lease_ns,
                grant,
                from,
                ctx,
            });
            return;
        }

        // 5. Weave under the sandbox: requested ∩ policy cap.
        let perms = self.policy.effective(&signer, &pkg.meta.permissions);
        let aspect: Aspect = pkg.aspect.clone().into();
        let weave_start = std::time::Instant::now();
        let woven = prose.weave(vm, aspect, WeaveOptions::sandboxed(perms));
        self.record_ns("midas.receiver.weave_ns", weave_start);
        if let Some(s) = &self.telemetry {
            s.event(
                Subsystem::Midas,
                "midas.weave",
                format!("{id} {}", if woven.is_ok() { "ok" } else { "FAILED" }),
            );
        }
        let weave_ctx = self.span_child(
            verify_ctx,
            sim.now().0,
            "midas.weave",
            &format!("{id} {}", if woven.is_ok() { "ok" } else { "FAILED" }),
        );
        match woven {
            Ok(aspect_id) => {
                // 6. Pass 4 of the gate — interference against the
                //    aspects already active, read off the live
                //    dispatch tables the weave just rebuilt.
                if let Err((pass, detail)) =
                    self.check_interference(vm, prose, &pkg, aspect_id)
                {
                    self.count("midas.analyze.rejected");
                    if let Some(s) = &self.telemetry {
                        s.event(
                            Subsystem::Midas,
                            "midas.analyze",
                            format!("{id} REJECTED by {pass}: {detail}"),
                        );
                    }
                    self.nack(sim, from, &id, grant, format!("analysis: {pass}: {detail}"), ctx);
                    return;
                }
                // Hook-check hoisting: recompute which advice methods
                // the purity analysis proves can never need a join
                // point of their own, and elide their JIT stub checks.
                // Recomputed locally from the shipped class — the
                // receiver never trusts the base's optimization report.
                for m in pmp_analyze::opt::hoist::hoistable_methods(&pkg.aspect.class) {
                    if vm.hoist_hooks(&pkg.aspect.class.name, &m) {
                        self.count("midas.receiver.hoisted");
                    }
                }
                // Arm the first-interception watch: the next advice
                // dispatch past this baseline closes the adaptation's
                // span tree with a `midas.intercept` leaf.
                if let Some(t) = &self.tracer {
                    if !weave_ctx.is_nil() {
                        t.watch_interception(weave_ctx, &id, vm.stats().advice_dispatches);
                    }
                }
                for dep in &pkg.meta.requires {
                    if let Some(d) = self.installed.get_mut(dep) {
                        d.dependents.insert(id.clone());
                    }
                }
                self.installed.insert(
                    id.clone(),
                    Installed {
                        version: pkg.meta.version,
                        aspect_id,
                        grant,
                        base: from,
                        lease: Lease::grant(sim.now(), lease_ns),
                        implicit: pkg.meta.implicit,
                        requires: pkg.meta.requires.clone(),
                        dependents: HashSet::new(),
                    },
                );
                self.count("midas.receiver.installed");
                self.events.push(ReceiverEvent::Installed {
                    ext_id: id.clone(),
                    version: pkg.meta.version,
                    base: from,
                });
                let msg = MidasMsg::Ack {
                    ext_id: id,
                    grant,
                    ok: true,
                    reason: String::new(),
                };
                sim.send(self.node, from, CHANNEL, ctx.wrap(&msg));
            }
            Err(e) => {
                self.nack(sim, from, &id, grant, format!("weave failed: {e}"), ctx);
            }
        }
    }

    fn retry_pending(&mut self, sim: &mut dyn NetPort, vm: &mut Vm, prose: &Prose) {
        // Retry queued installs whose dependencies may now be present;
        // loop until a fixpoint so chains resolve in one pass.
        loop {
            let ready: Vec<usize> = self
                .pending
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    p.ext.open().map_or(true, |pkg| {
                        pkg.meta
                            .requires
                            .iter()
                            .all(|d| self.installed.contains_key(d))
                    })
                })
                .map(|(i, _)| i)
                .collect();
            if ready.is_empty() {
                return;
            }
            for idx in ready.into_iter().rev() {
                let p = self.pending.remove(idx);
                self.try_install(sim, vm, prose, p.from, p.ext, p.lease_ns, p.grant, p.ctx);
            }
        }
    }

    /// Withdraws an extension: dependents are cascaded first, PROSE
    /// unweaves with a shutdown notification, implicit dependencies
    /// with no remaining dependents are removed too, and the granting
    /// base is told the grant was released (so it stops renewing and
    /// does not redeliver).
    #[allow(clippy::too_many_arguments)]
    fn uninstall(
        &mut self,
        sim: &mut dyn NetPort,
        vm: &mut Vm,
        prose: &Prose,
        ext_id: &str,
        reason: &str,
        notify_base: bool,
    ) {
        let Some(inst) = self.installed.get(ext_id) else {
            return;
        };
        // Cascade to dependents first (they rely on this extension),
        // in id order — removal order is observable (unweave journal
        // events, Removed reasons) and must not depend on hash order.
        let mut dependents: Vec<String> = inst.dependents.iter().cloned().collect();
        dependents.sort();
        for d in dependents {
            self.uninstall(
                sim,
                vm,
                prose,
                &d,
                &format!("dependency {ext_id} removed"),
                notify_base,
            );
        }
        let Some(inst) = self.installed.remove(ext_id) else {
            return;
        };
        let _ = prose.unweave(vm, inst.aspect_id, reason);
        if notify_base {
            // Deliberate removal: tell the base to stop renewing this
            // grant (best-effort; silently lost if out of range). Lease
            // expiries do NOT notify — if the base is in fact alive, its
            // next renewal triggers redelivery instead.
            let msg = MidasMsg::Ack {
                ext_id: ext_id.to_string(),
                grant: inst.grant,
                ok: false,
                reason: "released".into(),
            };
            sim.send(self.node, inst.base, CHANNEL, TraceCtx::NIL.wrap(&msg));
        }
        self.count("midas.receiver.removed");
        self.events.push(ReceiverEvent::Removed {
            ext_id: ext_id.to_string(),
            reason: reason.to_string(),
        });
        // Release implicit dependencies.
        for dep in &inst.requires {
            let remove_dep = match self.installed.get_mut(dep) {
                Some(d) => {
                    d.dependents.remove(ext_id);
                    d.implicit && d.dependents.is_empty()
                }
                None => false,
            };
            if remove_dep {
                self.uninstall(sim, vm, prose, dep, "no longer required", true);
            }
        }
    }

    /// Lease sweep: extensions whose base failed to renew are
    /// "immediately withdrawn from the system" (paper §3.2).
    fn sweep(&mut self, sim: &mut dyn NetPort, vm: &mut Vm, prose: &Prose) {
        let now = sim.now();
        let mut expired: Vec<String> = self
            .installed
            .iter()
            .filter(|(_, i)| i.lease.expired(now))
            .map(|(id, _)| id.clone())
            .collect();
        // Sweep in id order: which lease "expires first" within one
        // sweep is observable through cascade reasons and must be
        // hash-order independent.
        expired.sort();
        for id in expired {
            self.count("midas.receiver.lease_expiries");
            self.uninstall(sim, vm, prose, &id, "lease expired", false);
        }
    }
}
