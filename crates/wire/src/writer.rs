/// Append-only encoder producing canonical wire bytes.
///
/// All multi-byte integers are little-endian; lengths and counts use
/// LEB128 varints. See the crate docs for the format overview.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16` little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an unsigned LEB128 varint.
    pub fn put_varu64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a signed integer with zig-zag + LEB128 encoding.
    pub fn put_vari64(&mut self, v: i64) {
        self.put_varu64(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Writes a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes an `f64` as its IEEE-754 bit pattern, little-endian.
    ///
    /// NaN payloads are canonicalised so equal-by-meaning values encode
    /// identically (required for signing).
    pub fn put_f64(&mut self, v: f64) {
        let bits = if v.is_nan() {
            f64::NAN.to_bits()
        } else {
            v.to_bits()
        };
        self.put_u64(bits);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_varu64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes length-prefixed raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_varu64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Writes raw bytes with no length prefix (caller manages framing).
    pub fn put_raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_single_byte_values() {
        for v in 0u64..128 {
            let mut w = Writer::new();
            w.put_varu64(v);
            assert_eq!(w.as_bytes(), &[v as u8]);
        }
    }

    #[test]
    fn varint_multi_byte() {
        let mut w = Writer::new();
        w.put_varu64(300);
        assert_eq!(w.as_bytes(), &[0xac, 0x02]);
    }

    #[test]
    fn zigzag_small_negatives_are_small() {
        let mut w = Writer::new();
        w.put_vari64(-1);
        assert_eq!(w.as_bytes(), &[1]);
        let mut w = Writer::new();
        w.put_vari64(1);
        assert_eq!(w.as_bytes(), &[2]);
    }

    #[test]
    fn nan_is_canonical() {
        let mut w1 = Writer::new();
        w1.put_f64(f64::NAN);
        let mut w2 = Writer::new();
        w2.put_f64(-f64::NAN);
        assert_eq!(w1.as_bytes(), w2.as_bytes());
    }
}
