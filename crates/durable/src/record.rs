//! WAL record framing.
//!
//! Every durable file — log segment or snapshot — is a sequence of
//! *frames*:
//!
//! ```text
//! | len: u32 le | body: len bytes | crc: u32 le |
//! ```
//!
//! where `crc` is CRC-32 over the length prefix **and** the body.
//! Covering the prefix matters: a bit flip in `len` would otherwise
//! shift the checksum window and could masquerade as a torn tail at
//! the wrong offset. With this layout, *any* single corrupted byte in
//! a complete frame yields [`FrameError::Crc`] at the frame's start
//! offset, and only genuinely missing bytes yield [`FrameError::Torn`].
//!
//! A WAL frame's body is the [`pmp_wire`] encoding of a [`WalRecord`];
//! snapshot files reuse the same framing around a snapshot body.

use crate::crc::Crc32;
use pmp_wire::{wire_struct, WireError};

/// Upper bound on a single frame body. Far above any real record, low
/// enough that a corrupt length prefix cannot demand a huge allocation.
pub const MAX_FRAME_BODY: usize = 1 << 24;

/// One logical write-ahead-log entry: a monotonically increasing
/// sequence number, the namespace it belongs to, and an opaque payload
/// the owning [`crate::Durable`] state knows how to apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Global sequence number (1-based, assigned at append).
    pub seq: u64,
    /// Owning namespace, e.g. `"store.movements"`.
    pub ns: String,
    /// Namespace-defined operation bytes.
    pub payload: Vec<u8>,
}

wire_struct!(WalRecord {
    seq: u64,
    ns: String,
    payload: Vec<u8>,
});

/// Why a frame could not be read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The file ends before the frame does — a torn write. At the tail
    /// of the final segment this is expected after a crash and is
    /// repaired by truncation; anywhere else it is corruption.
    Torn {
        /// Byte offset of the frame's start.
        offset: usize,
        /// Bytes actually present from `offset`.
        have: usize,
        /// Bytes the frame header demands.
        need: usize,
    },
    /// The stored checksum does not match the recomputed one.
    Crc {
        /// Byte offset of the frame's start.
        offset: usize,
        /// Checksum stored in the frame.
        stored: u32,
        /// Checksum recomputed over the frame bytes.
        computed: u32,
    },
    /// The length prefix exceeds [`MAX_FRAME_BODY`] — either corruption
    /// in the prefix itself or a foreign file.
    BadLength {
        /// Byte offset of the frame's start.
        offset: usize,
        /// The declared body length.
        declared: u32,
    },
    /// The checksum passed but the body failed wire decoding; the
    /// inner error carries the offset *within the body*.
    Malformed {
        /// Byte offset of the frame's start.
        offset: usize,
        /// The decoder's complaint.
        err: WireError,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Torn { offset, have, need } => {
                write!(f, "torn frame at byte {offset}: have {have} of {need}")
            }
            FrameError::Crc {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "crc mismatch at byte {offset}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            FrameError::BadLength { offset, declared } => {
                write!(f, "implausible frame length {declared} at byte {offset}")
            }
            FrameError::Malformed { offset, err } => {
                write!(f, "undecodable frame at byte {offset}: {err}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// The byte offset of the offending frame's start.
    #[must_use]
    pub fn offset(&self) -> usize {
        match self {
            FrameError::Torn { offset, .. }
            | FrameError::Crc { offset, .. }
            | FrameError::BadLength { offset, .. }
            | FrameError::Malformed { offset, .. } => *offset,
        }
    }

    /// Whether this is a torn (incomplete) frame rather than a
    /// checksum/decode failure.
    #[must_use]
    pub fn is_torn(&self) -> bool {
        matches!(self, FrameError::Torn { .. })
    }
}

/// Appends a frame wrapping `body` to `out`.
pub fn encode_framed(body: &[u8], out: &mut Vec<u8>) {
    debug_assert!(body.len() <= MAX_FRAME_BODY);
    let len = (body.len() as u32).to_le_bytes();
    let mut h = Crc32::new();
    h.update(&len);
    h.update(body);
    out.extend_from_slice(&len);
    out.extend_from_slice(body);
    out.extend_from_slice(&h.finish().to_le_bytes());
}

/// Reads the frame starting at `offset`, returning its body slice and
/// the offset of the next frame. `Ok(None)` at the exact end of input.
///
/// # Errors
///
/// Any [`FrameError`]; the offset inside always names the frame start.
pub fn decode_framed(bytes: &[u8], offset: usize) -> Result<Option<(&[u8], usize)>, FrameError> {
    let rest = &bytes[offset..];
    if rest.is_empty() {
        return Ok(None);
    }
    if rest.len() < 4 {
        return Err(FrameError::Torn {
            offset,
            have: rest.len(),
            need: 8,
        });
    }
    let declared = u32::from_le_bytes(rest[..4].try_into().unwrap());
    if declared as usize > MAX_FRAME_BODY {
        return Err(FrameError::BadLength { offset, declared });
    }
    let total = 8 + declared as usize;
    if rest.len() < total {
        return Err(FrameError::Torn {
            offset,
            have: rest.len(),
            need: total,
        });
    }
    let stored = u32::from_le_bytes(rest[total - 4..total].try_into().unwrap());
    let mut h = Crc32::new();
    h.update(&rest[..total - 4]);
    let computed = h.finish();
    if stored != computed {
        return Err(FrameError::Crc {
            offset,
            stored,
            computed,
        });
    }
    Ok(Some((&rest[4..total - 4], offset + total)))
}

/// Appends a framed [`WalRecord`] to `out`.
pub fn encode_record(rec: &WalRecord, out: &mut Vec<u8>) {
    encode_framed(&pmp_wire::to_bytes(rec), out);
}

/// Appends a framed [`WalRecord`] directly into `w` — the
/// allocation-free encode path. The length prefix is reserved and
/// patched in place instead of encoding the body into an intermediate
/// `Vec` first; byte-for-byte identical to [`encode_record`].
pub fn encode_record_into(rec: &WalRecord, w: &mut pmp_wire::Writer) {
    use pmp_wire::Wire;
    let frame_start = w.mark();
    let slot = w.reserve_u32();
    rec.encode(w);
    let body_len = w.mark() - slot - 4;
    debug_assert!(body_len <= MAX_FRAME_BODY);
    w.patch_u32(slot, body_len as u32);
    let mut h = Crc32::new();
    h.update(w.bytes_from(frame_start));
    w.put_u32(h.finish());
}

/// Reads the framed [`WalRecord`] starting at `offset`; `Ok(None)` at
/// the exact end of input.
///
/// # Errors
///
/// Any [`FrameError`] (a checksum-valid but undecodable body maps to
/// [`FrameError::Malformed`]).
pub fn decode_record(bytes: &[u8], offset: usize) -> Result<Option<(WalRecord, usize)>, FrameError> {
    match decode_framed(bytes, offset)? {
        None => Ok(None),
        Some((body, next)) => {
            let rec = pmp_wire::from_bytes::<WalRecord>(body)
                .map_err(|err| FrameError::Malformed { offset, err })?;
            Ok(Some((rec, next)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64) -> WalRecord {
        WalRecord {
            seq,
            ns: "store.movements".into(),
            payload: vec![1, 2, 3, seq as u8],
        }
    }

    #[test]
    fn record_roundtrip_across_a_segment() {
        let mut buf = Vec::new();
        for seq in 1..=5 {
            encode_record(&sample(seq), &mut buf);
        }
        let mut offset = 0;
        let mut seen = Vec::new();
        while let Some((rec, next)) = decode_record(&buf, offset).unwrap() {
            seen.push(rec.seq);
            offset = next;
        }
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(offset, buf.len());
    }

    #[test]
    fn truncation_reports_torn_at_the_frame_start() {
        let mut buf = Vec::new();
        encode_record(&sample(1), &mut buf);
        let start = buf.len();
        encode_record(&sample(2), &mut buf);
        buf.truncate(buf.len() - 3);
        let (_, next) = decode_record(&buf, 0).unwrap().unwrap();
        let err = decode_record(&buf, next).unwrap_err();
        assert!(err.is_torn());
        assert_eq!(err.offset(), start);
    }

    #[test]
    fn every_single_byte_flip_is_caught_with_the_right_offset() {
        let mut buf = Vec::new();
        encode_record(&sample(1), &mut buf);
        let start = buf.len();
        encode_record(&sample(2), &mut buf);
        for i in start..buf.len() {
            let mut copy = buf.clone();
            copy[i] ^= 0x10;
            let (_, next) = decode_record(&copy, 0).unwrap().unwrap();
            let err = decode_record(&copy, next).unwrap_err();
            // A flip in the length prefix may declare more bytes than
            // exist (torn) or an implausible size; any flip in a frame
            // whose length still fits must fail the checksum. All carry
            // the frame-start offset.
            assert_eq!(err.offset(), start, "flip at byte {i}");
            assert!(
                !matches!(err, FrameError::Malformed { .. }),
                "flip at byte {i} slipped past the checksum: {err}"
            );
        }
    }

    #[test]
    fn hostile_length_is_rejected_without_allocation() {
        let mut buf = (u32::MAX).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0; 16]);
        assert!(matches!(
            decode_record(&buf, 0),
            Err(FrameError::BadLength { offset: 0, .. })
        ));
    }

    #[test]
    fn empty_input_is_a_clean_end() {
        assert_eq!(decode_record(&[], 0).unwrap(), None);
    }

    #[test]
    fn into_writer_framing_is_byte_identical_to_the_vec_path() {
        let mut w = pmp_wire::Writer::new();
        let mut vecs = Vec::new();
        for seq in 1..=4 {
            encode_record_into(&sample(seq), &mut w);
            encode_record(&sample(seq), &mut vecs);
        }
        assert_eq!(w.as_bytes(), &vecs[..]);
    }
}
