//! Hook-check hoisting for provably pure advice paths.
//!
//! Advice bodies always execute inside `begin_advice`, where the VM
//! suppresses join-point dispatch (`hooks_live()` is false while
//! `advice_depth > 0`). The per-call stub check is therefore pure
//! overhead for advice code — but the VM flag that elides it
//! (`Vm::hoist_hooks`) is only set for methods this analysis *proves*
//! could never need a hook even outside advice context, as a static
//! belt on top of the dynamic suppression:
//!
//! - no `Sys` ops (observable effects stay instrumentable);
//! - no `Throw` ops and no exception handlers (throw/catch join
//!   points stay live);
//! - field access only on the aspect instance itself (receiver proven
//!   [`AbsVal::SelfRef`] by the lattice);
//! - calls only to sibling methods that are themselves hoistable,
//!   computed as a greatest fixpoint (mutual recursion is fine).

use crate::lattice::{analyze_method, AbsVal};
use pmp_prose::{PortableClass, PortableMethod};
use std::collections::BTreeSet;

/// Returns the names of `class`'s methods whose hook checks may be
/// hoisted, in sorted order.
pub fn hoistable_methods(class: &PortableClass) -> Vec<String> {
    let mut candidates: BTreeSet<&str> =
        class.methods.iter().map(|m| m.name.as_str()).collect();
    loop {
        let demoted: Vec<&str> = candidates
            .iter()
            .filter(|name| {
                let m = class
                    .methods
                    .iter()
                    .find(|m| m.name == **name)
                    .expect("candidate from class");
                !method_ok(class, m, &candidates)
            })
            .copied()
            .collect();
        if demoted.is_empty() {
            return candidates.iter().map(|s| (*s).to_string()).collect();
        }
        for d in demoted {
            candidates.remove(d);
        }
    }
}

fn method_ok(class: &PortableClass, m: &PortableMethod, candidates: &BTreeSet<&str>) -> bool {
    use pmp_vm::op::Op;
    if !m.body.handlers.is_empty() {
        return false; // a catch would be a suppressed join point
    }
    let Some(states) = analyze_method(&m.body, m.params.len()) else {
        return false;
    };
    // Receiver of an op popping `argc + 1` sits at stack[len - 1 - argc].
    let recv_is_self = |pc: usize, argc: usize| {
        states[pc].as_ref().is_some_and(|s| {
            s.stack
                .len()
                .checked_sub(argc + 1)
                .is_some_and(|i| s.stack[i] == AbsVal::SelfRef)
        })
    };
    m.body.ops.iter().enumerate().all(|(pc, op)| match op {
        Op::Sys { .. } | Op::Throw(_) => false,
        Op::GetField { .. } => recv_is_self(pc, 0),
        Op::PutField { .. } => recv_is_self(pc, 1),
        Op::CallV { method, argc } => {
            recv_is_self(pc, *argc as usize) && candidates.contains(method.as_str())
        }
        Op::CallDirect { class: c, method, argc } => {
            *c == class.name
                && recv_is_self(pc, *argc as usize)
                && candidates.contains(method.as_str())
        }
        Op::CallStatic { class: c, method, .. } => {
            *c == class.name && candidates.contains(method.as_str())
        }
        _ => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_vm::op::{BytecodeBody, Const, HandlerDef, Op};

    fn method(name: &str, ops: Vec<Op>) -> PortableMethod {
        PortableMethod {
            name: name.into(),
            params: vec![],
            ret: "any".into(),
            body: BytecodeBody {
                extra_locals: 0,
                ops,
                handlers: vec![],
            },
        }
    }

    fn class(methods: Vec<PortableMethod>) -> PortableClass {
        PortableClass {
            name: "A".into(),
            fields: vec![],
            methods,
        }
    }

    #[test]
    fn pure_self_contained_methods_are_hoistable() {
        let c = class(vec![
            method(
                "m",
                vec![
                    Op::Load(0),
                    Op::GetField {
                        class: "A".into(),
                        field: "n".into(),
                    },
                    Op::RetVal,
                ],
            ),
            method("nop", vec![Op::Ret]),
        ]);
        assert_eq!(hoistable_methods(&c), vec!["m", "nop"]);
    }

    #[test]
    fn sys_ops_block_hoisting() {
        let c = class(vec![method(
            "m",
            vec![
                Op::Sys {
                    name: "print".into(),
                    argc: 0,
                },
                Op::Pop,
                Op::Ret,
            ],
        )]);
        assert!(hoistable_methods(&c).is_empty());
    }

    #[test]
    fn call_to_impure_sibling_demotes_transitively() {
        let c = class(vec![
            method(
                "m",
                vec![
                    Op::Load(0),
                    Op::CallV {
                        method: "noisy".into(),
                        argc: 0,
                    },
                    Op::Pop,
                    Op::Ret,
                ],
            ),
            method(
                "noisy",
                vec![
                    Op::Sys {
                        name: "print".into(),
                        argc: 0,
                    },
                    Op::Pop,
                    Op::Ret,
                ],
            ),
            method("quiet", vec![Op::Ret]),
        ]);
        assert_eq!(hoistable_methods(&c), vec!["quiet"]);
    }

    #[test]
    fn field_access_on_foreign_object_blocks_hoisting() {
        let c = class(vec![method(
            "m",
            vec![
                Op::New("B".into()),
                Op::GetField {
                    class: "B".into(),
                    field: "x".into(),
                },
                Op::RetVal,
            ],
        )]);
        assert!(hoistable_methods(&c).is_empty());
    }

    #[test]
    fn handlers_block_hoisting() {
        let mut m = method(
            "m",
            vec![Op::Const(Const::Int(1)), Op::Pop, Op::Ret, Op::Pop, Op::Ret],
        );
        m.body.handlers.push(HandlerDef {
            start: 0,
            end: 2,
            class: "*".into(),
            target: 3,
        });
        assert!(hoistable_methods(&class(vec![m])).is_empty());
    }
}
