//! Cryptographic substrate for the pmp platform, written from scratch.
//!
//! MIDAS requires every extension instance to be **signed** so that a
//! mobile node only accepts extensions "instantiated and configured by a
//! trusted entity" (paper §3.2). The paper used the stock Java security
//! model; this crate provides the equivalent building blocks:
//!
//! * [`sha256()`] — FIPS-180-4 SHA-256 (one-shot and incremental),
//! * [`hmac`] — HMAC-SHA256,
//! * [`group`] — modular arithmetic in a Schnorr group over a 62-bit
//!   safe prime,
//! * [`keys`] / [`sign`] — key pairs and deterministic Schnorr
//!   signatures,
//! * [`principal`] — named principals, trust stores and the signed-blob
//!   envelope used by the MIDAS delivery protocol.
//!
//! **Security note:** the group modulus is 62 bits, so signatures here are
//! *simulation-grade*: they faithfully reproduce the sign → verify →
//! trust-decision protocol shape of the paper, not its cryptographic
//! strength. The hash and HMAC implementations, by contrast, are the real
//! algorithms and are tested against published vectors.
//!
//! # Examples
//!
//! ```
//! use pmp_crypto::KeyPair;
//!
//! let pair = KeyPair::from_seed(b"hall-a authority");
//! let sig = pair.sign(b"extension bytes");
//! assert!(pair.public_key().verify(b"extension bytes", &sig));
//! assert!(!pair.public_key().verify(b"tampered bytes", &sig));
//! ```

pub mod group;
pub mod hmac;
pub mod keys;
pub mod principal;
pub mod sha256;
pub mod sign;

pub use hmac::hmac_sha256;
pub use keys::{KeyPair, PublicKey, SecretKey};
pub use principal::{Principal, SignedBlob, TrustStore};
pub use sha256::{sha256, sha256_parts, Digest, Sha256};
pub use sign::Signature;
