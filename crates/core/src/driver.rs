//! The execution engine: node cells, epoch dispatch, and the pluggable
//! serial/parallel drivers.
//!
//! DESIGN.md §10 describes the model. In short, every pump is a loop of
//! *epochs*: the scheduler ([`pmp_net::Simulator`]) drains all events
//! within one conservative lookahead window partitioned by destination
//! node ([`Simulator::drain_epoch`](pmp_net::Simulator::drain_epoch)),
//! each busy node's stack — a [`NodeCell`] — computes against its own
//! batch with a private clock, a buffering network port, and a
//! buffering telemetry sink, and at the barrier the cells' effects are
//! merged back into the scheduler in deterministic
//! `(time, cell rank, emission seq)` order.
//!
//! Both drivers run the *same* pipeline; [`SerialDriver`] executes the
//! cells one by one on the calling thread and [`ParallelDriver`] shards
//! them over scoped threads. Because nothing a cell observes (its
//! batch, its clock) or produces (ordered commands, ordered events)
//! depends on which thread ran it, the two drivers are behaviourally
//! identical by construction — the determinism suite pins this with
//! trace/journal digests.

use crate::node::{BaseStation, MobileNode};
use crate::platform::RpcOutcome;
use crate::wiring::{AppMsg, RpcMsg, APP_CHANNEL, MIRROR_CHANNEL, RPC_CHANNEL};
use pmp_midas::{BaseEvent, MidasMsg, ReceiverEvent};
use pmp_net::{ClockHandle, Incoming, NetPort, NodeId, PortBuf, SimTime, TimedIncoming};
use pmp_store::MovementRecord;
use pmp_telemetry::{Shared, Sink};
use pmp_trace::{Traced, Tracer};
use pmp_vm::prelude::{Value, VmError};
use std::sync::Arc;

/// Per-cell runtime state owned by the platform alongside each node's
/// stack: the cell clock (set to the timestamp of the event being
/// dispatched), the buffering network port, and the buffering telemetry
/// sink whose clones the cell's components hold.
#[derive(Debug)]
pub(crate) struct CellState {
    pub(crate) clock: ClockHandle,
    pub(crate) port: PortBuf,
    pub(crate) sink: Sink,
    /// The cell's span factory + flight recorder (see `pmp-trace`).
    /// Cloned into the stack's components; spans are drained at the
    /// epoch barrier in rank order.
    pub(crate) tracer: Tracer,
}

impl CellState {
    pub(crate) fn new(node: NodeId, now: SimTime, telemetry: &Shared) -> CellState {
        let clock = ClockHandle::new();
        clock.set(now);
        let c = clock.clone();
        let sink = Sink::buffered(telemetry, Arc::new(move || c.now().0));
        CellState {
            port: PortBuf::new(node, clock.clone()),
            clock,
            sink,
            tracer: Tracer::new(node.0),
        }
    }

    /// A `Fn() -> u64` view of the cell clock (VM/robot time source).
    pub(crate) fn clock_fn(&self) -> Arc<dyn Fn() -> u64 + Send + Sync> {
        let c = self.clock.clone();
        Arc::new(move || c.now().0)
    }
}

/// The node stack a cell drives for one epoch.
pub(crate) enum CellBody<'a> {
    Base(&'a mut BaseStation),
    Mobile(&'a mut MobileNode),
}

/// One node's stack plus its epoch batch: the self-contained `Send`
/// unit of work a driver schedules. A cell's rank — its position in
/// the slice handed to [`Driver::compute`], bases first then mobiles —
/// fixes the merge order of everything it produces.
pub struct NodeCell<'a> {
    pub(crate) body: CellBody<'a>,
    pub(crate) state: &'a mut CellState,
    pub(crate) batch: Vec<TimedIncoming>,
    pub(crate) rpc: Vec<RpcOutcome>,
}

impl NodeCell<'_> {
    /// Dispatches the cell's whole batch. Call exactly once per epoch,
    /// from whichever thread the driver chose.
    pub fn run(&mut self) {
        for item in self.batch.drain(..) {
            self.state.clock.set(item.at);
            match &mut self.body {
                CellBody::Base(station) => {
                    dispatch_base(station, &mut self.state.port, &mut self.rpc, &item.incoming);
                }
                CellBody::Mobile(node) => {
                    dispatch_mobile(
                        node,
                        &mut self.state.port,
                        &mut self.rpc,
                        &item.incoming,
                        Some(&self.state.tracer),
                    );
                }
            }
        }
    }
}

// A NodeCell must be able to cross threads: this is the compile-time
// audit that every layer of a node stack (VM, PROSE, MIDAS, robot
// hardware, wiring) is `Send`.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<NodeCell<'static>>();
    assert_send::<MobileNode>();
    assert_send::<BaseStation>();
};

/// Schedules [`NodeCell`]s within one epoch. Implementations decide
/// only *where* each cell runs — all ordering that affects observable
/// behaviour happens at the barrier merge, outside the driver.
pub trait Driver: Send + Sync {
    /// Driver name for reports (`"serial"` / `"parallel"`).
    fn name(&self) -> &'static str;

    /// Runs every cell exactly once.
    fn compute(&self, cells: &mut [NodeCell<'_>]);
}

/// The golden reference: cells run one by one, in rank order, on the
/// calling thread.
#[derive(Debug, Default, Clone, Copy)]
pub struct SerialDriver;

impl Driver for SerialDriver {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn compute(&self, cells: &mut [NodeCell<'_>]) {
        for cell in cells {
            cell.run();
        }
    }
}

/// Shards cells over scoped threads, one contiguous chunk per worker,
/// with the epoch barrier at scope exit. Thread count (and the chunk
/// shape) cannot affect results; epochs with at most one busy cell run
/// inline to skip spawn overhead.
#[derive(Debug, Clone, Copy)]
pub struct ParallelDriver {
    /// Worker cap; defaults to the host's available parallelism.
    pub threads: usize,
}

impl Default for ParallelDriver {
    fn default() -> Self {
        ParallelDriver {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

impl Driver for ParallelDriver {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn compute(&self, cells: &mut [NodeCell<'_>]) {
        let workers = self.threads.max(1).min(cells.len());
        if workers <= 1 || cells.len() <= 1 {
            SerialDriver.compute(cells);
            return;
        }
        let chunk = cells.len().div_ceil(workers);
        std::thread::scope(|s| {
            for shard in cells.chunks_mut(chunk) {
                s.spawn(move || {
                    for cell in shard {
                        cell.run();
                    }
                });
            }
        });
    }
}

/// The driver selected by the `PMP_DRIVER` environment variable
/// (`parallel` or `serial`; unset/unknown means serial, the golden
/// reference).
pub(crate) fn driver_from_env() -> Box<dyn Driver> {
    match std::env::var("PMP_DRIVER").as_deref() {
        Ok("parallel") => Box::new(ParallelDriver::default()),
        _ => Box::new(SerialDriver),
    }
}

// ----------------------------------------------------------------------
// Per-cell dispatch (the former Platform::dispatch_all internals)
// ----------------------------------------------------------------------

/// Feeds one incoming event through a base station's stack.
pub(crate) fn dispatch_base(
    station: &mut BaseStation,
    port: &mut PortBuf,
    rpc: &mut Vec<RpcOutcome>,
    inc: &Incoming,
) {
    station.registrar.handle(port, inc);
    let found = station.lookup.handle(port, inc);
    station.discoveries.extend(found);
    let evs = station.base.handle(port, inc);
    handle_base_federation(station, port, &evs);
    station.events.extend(evs);
    handle_rpc_retry(station, port, rpc, inc);
    handle_base_app(station, port, rpc, inc);
}

/// Drives the caller-side retransmission schedule: a fired `rpc.retry`
/// timer either re-sends the outstanding call with the *same* request
/// id (dedup is keyed on it) and arms the next backoff step, or — once
/// the attempt budget is spent — resolves the call as a failed
/// outcome. Runs inside the cell, so retries are sharded and merged
/// exactly like any other network effect.
fn handle_rpc_retry(
    station: &mut BaseStation,
    port: &mut dyn NetPort,
    rpc: &mut Vec<RpcOutcome>,
    inc: &Incoming,
) {
    let Incoming::Timer { token, tag } = inc else {
        return;
    };
    if &**tag != crate::rpc::RPC_RETRY_TAG {
        return;
    }
    let Some(req) = station.rpc.take_timer(*token) else {
        return;
    };
    let cfg = *station.rpc.config();
    let Some(call) = station.rpc.get(req) else {
        return; // resolved before the timer fired
    };
    if call.attempts >= cfg.max_attempts {
        let attempts = call.attempts;
        station.rpc.exhausted += 1;
        station.rpc.resolve(req);
        rpc.push(RpcOutcome {
            req,
            ok: false,
            value: format!("rpc timeout after {attempts} attempts"),
            at: port.now().0,
        });
        return;
    }
    let Some(attempts) = station.rpc.note_attempt(req) else {
        return;
    };
    let call = station.rpc.get(req).expect("attempt noted on live call");
    let msg = RpcMsg::CallSem {
        caller: call.caller.clone(),
        class: call.class.clone(),
        method: call.method.clone(),
        args: call.args.clone(),
        req,
        sem: call.sem,
        attempt: attempts,
    };
    let target = NodeId(call.target);
    port.send(
        station.node,
        target,
        RPC_CHANNEL,
        pmp_trace::TraceCtx::NIL.wrap(&msg),
    );
    let delay = crate::rpc::backoff_delay(&cfg, req, attempts);
    let token = port.set_timer(station.node, delay, crate::rpc::RPC_RETRY_TAG);
    station.rpc.arm(token, req);
}

/// Roaming side-effects that live above the extension base: when a node
/// departs, its movement history follows it to every neighbour base (the
/// paper's §4.5 data travels with the robot), and an incoming
/// [`BaseEvent::MovementImport`] is folded into the local movement store
/// — deduplicated by issue time so histories bouncing between bases
/// converge instead of growing.
fn handle_base_federation(station: &mut BaseStation, port: &mut dyn NetPort, evs: &[BaseEvent]) {
    for e in evs {
        match e {
            BaseEvent::NodeDeparted { node_name } => {
                let records: Vec<Vec<u8>> = station
                    .store
                    .by_robot(node_name)
                    .into_iter()
                    .map(pmp_wire::to_bytes)
                    .collect();
                if records.is_empty() {
                    continue;
                }
                let msg = MidasMsg::MovementExport {
                    node_name: node_name.clone(),
                    records,
                };
                for nb in station.base.neighbors().to_vec() {
                    port.send(
                        station.node,
                        nb,
                        pmp_midas::CHANNEL,
                        pmp_trace::TraceCtx::NIL.wrap(&msg),
                    );
                }
            }
            BaseEvent::MovementImport { node_name, records } => {
                let seen: std::collections::HashSet<u64> = station
                    .store
                    .by_robot(node_name)
                    .iter()
                    .map(|r| r.issued_at)
                    .collect();
                for raw in records {
                    let Ok(rec) = pmp_wire::from_bytes::<MovementRecord>(raw) else {
                        continue;
                    };
                    if rec.robot == *node_name && !seen.contains(&rec.issued_at) {
                        station.record_movement(rec);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Feeds one incoming event through a mobile node's stack, then flushes
/// anything the handlers queued on the host outbox.
pub(crate) fn dispatch_mobile(
    node: &mut MobileNode,
    port: &mut PortBuf,
    rpc: &mut Vec<RpcOutcome>,
    inc: &Incoming,
    tracer: Option<&Tracer>,
) {
    let evs = node
        .receiver
        .handle(port, &mut node.vm, &node.prose, inc);
    for e in &evs {
        match e {
            ReceiverEvent::Installed { base, .. } => node.home_base = Some(*base),
            // A roaming handoff rebound this node's grants in place: the
            // adopting base is its home now, without any re-delivery.
            ReceiverEvent::Rebound { base, .. } => node.home_base = Some(*base),
            _ => {}
        }
    }
    node.events.extend(evs);
    handle_node_channels(node, port, rpc, inc);
    // Any advice dispatch this event caused closes armed
    // first-interception watches (the `midas.intercept` leaf span).
    if let Some(t) = tracer {
        t.poll_interception(port.now().0, node.vm.stats().advice_dispatches);
    }
    flush_outbox(node, port);
}

fn handle_base_app(
    station: &mut BaseStation,
    port: &mut dyn NetPort,
    rpc: &mut Vec<RpcOutcome>,
    inc: &Incoming,
) {
    let Incoming::Message {
        channel, payload, ..
    } = inc
    else {
        return;
    };
    if &**channel == RPC_CHANNEL {
        if let Ok(Traced {
            msg: RpcMsg::Reply { req, ok, value },
            ..
        }) = pmp_wire::from_bytes::<Traced<RpcMsg>>(payload)
        {
            if station.rpc.is_outstanding(req) {
                // First reply to an engine-tracked call wins.
                station.rpc.resolve(req);
                rpc.push(RpcOutcome {
                    req,
                    ok,
                    value,
                    at: port.now().0,
                });
            } else if !station.rpc.recently_resolved(req) {
                // A legacy (maybe-semantics) call the engine never
                // tracked: surface it exactly as before. Replies to
                // recently-resolved ids are late duplicates from
                // retransmission — dropped.
                rpc.push(RpcOutcome {
                    req,
                    ok,
                    value,
                    at: port.now().0,
                });
            }
        }
        return;
    }
    if &**channel != APP_CHANNEL {
        return;
    }
    let Ok(msg) = pmp_wire::from_bytes::<AppMsg>(payload) else {
        return;
    };
    match msg {
        AppMsg::Monitor { record } => {
            station.record_movement(record);
        }
        AppMsg::Replicate { record } => {
            station.record_movement(record.clone());
            let routes = station
                .mirrors
                .get(&record.robot)
                .cloned()
                .unwrap_or_default();
            let from = station.node;
            for (replica, num, den) in routes {
                let mut scaled = record.clone();
                for a in &mut scaled.args {
                    *a = *a * num / den;
                }
                port.send(from, replica, MIRROR_CHANNEL, pmp_wire::to_bytes(&scaled));
            }
        }
        AppMsg::Charge {
            robot,
            reason,
            amount,
        } => {
            station.charges.push((robot, reason, amount));
        }
        AppMsg::Persist { robot, key, value } => {
            station.persisted.push((robot, key, value));
        }
    }
}

fn handle_node_channels(
    node: &mut MobileNode,
    port: &mut dyn NetPort,
    rpc: &mut Vec<RpcOutcome>,
    inc: &Incoming,
) {
    let Incoming::Message {
        from,
        channel,
        payload,
        ..
    } = inc
    else {
        return;
    };
    if &**channel == MIRROR_CHANNEL {
        if let Ok(record) = pmp_wire::from_bytes::<MovementRecord>(payload) {
            // Mirror application errors (frozen hardware etc.) are
            // isolated: a broken replica must not wedge the pump.
            let _ = pmp_extensions::replication::mirror_record(
                &mut node.vm,
                &node.motors,
                &record,
                1,
                1,
            );
        }
        return;
    }
    if &**channel != RPC_CHANNEL {
        return;
    }
    let Ok(env) = pmp_wire::from_bytes::<Traced<RpcMsg>>(payload) else {
        return;
    };
    let ctx = env.ctx;
    match env.msg {
        RpcMsg::Call {
            caller,
            class,
            method,
            args,
            req,
        } => {
            let (ok, value) = execute_service_call(node, caller, &class, &method, args);
            let reply = RpcMsg::Reply { req, ok, value };
            port.send(node.node, *from, RPC_CHANNEL, ctx.wrap(&reply));
        }
        RpcMsg::CallSem {
            caller,
            class,
            method,
            args,
            req,
            sem,
            attempt: _,
        } => {
            use crate::rpc::InvocationSemantics as Sem;
            // At-most-once: a duplicate whose id is cached is answered
            // from the dedup table without touching the service.
            if sem == Sem::AtMostOnce {
                if let Some((ok, value)) = node.rpc_server.dedup.lookup(req).cloned() {
                    node.rpc_server.dedup.hits += 1;
                    let reply = RpcMsg::Reply { req, ok, value };
                    port.send(node.node, *from, RPC_CHANNEL, ctx.wrap(&reply));
                    return;
                }
            }
            let (ok, value) = execute_service_call(node, caller, &class, &method, args);
            node.rpc_server.note_execution(req, sem);
            if sem == Sem::AtMostOnce {
                node.rpc_server.dedup.insert(req, ok, value.clone());
            }
            let reply = RpcMsg::Reply { req, ok, value };
            port.send(node.node, *from, RPC_CHANNEL, ctx.wrap(&reply));
        }
        RpcMsg::Reply { req, ok, value } => {
            rpc.push(RpcOutcome {
                req,
                ok,
                value,
                at: port.now().0,
            });
        }
    }
}

/// Runs one service invocation on the node's VM with `session.caller`
/// bound for the duration; returns `(ok, display value)`.
fn execute_service_call(
    node: &mut MobileNode,
    caller: String,
    class: &str,
    method: &str,
    args: Vec<i64>,
) -> (bool, String) {
    *node.wiring.caller.lock() = caller;
    let result = match node.services.get(class).cloned() {
        Some(svc) => node
            .vm
            .call(class, method, svc, args.into_iter().map(Value::Int).collect()),
        None => Err(VmError::link(format!("no service {class:?}"))),
    };
    *node.wiring.caller.lock() = String::new();
    match result {
        Ok(v) => (true, v.to_string()),
        Err(e) => (false, e.to_string()),
    }
}

/// Sends the host outbox to the node's home base ("first locally
/// stored", §4.4: without a home base the data stays queued).
pub(crate) fn flush_outbox(node: &mut MobileNode, port: &mut dyn NetPort) {
    let Some(home) = node.home_base else {
        return;
    };
    let msgs: Vec<AppMsg> = {
        let mut outbox = node.wiring.outbox.lock();
        if outbox.is_empty() {
            return;
        }
        outbox.drain(..).collect()
    };
    for m in msgs {
        port.send(node.node, home, APP_CHANNEL, pmp_wire::to_bytes(&m));
    }
}
