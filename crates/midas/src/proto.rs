//! The MIDAS wire protocol, carried on the `"midas"` channel.

use crate::package::SignedExtension;
use pmp_wire::{Reader, Wire, WireError, Writer};
use std::collections::BTreeMap;

/// Channel name for all MIDAS traffic.
pub const CHANNEL: &str = "midas";

/// A MIDAS protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum MidasMsg {
    /// Base → receiver: install this extension under a lease.
    Deliver {
        /// The signed extension.
        ext: SignedExtension,
        /// Lease duration (ns); the base keeps it alive with
        /// [`MidasMsg::LeaseRenew`].
        lease_ns: u64,
        /// Grant id, unique per base; names this lease.
        grant: u64,
    },
    /// Receiver → base: installation result.
    Ack {
        /// The extension id.
        ext_id: String,
        /// The grant being answered.
        grant: u64,
        /// Whether installation succeeded.
        ok: bool,
        /// Failure reason when `ok` is false.
        reason: String,
    },
    /// Base → receiver: keep the grant alive (the paper: "it is the
    /// responsibility of each extension base to keep alive the
    /// functionality it has distributed").
    LeaseRenew {
        /// The grant to refresh.
        grant: u64,
    },
    /// Base → receiver: withdraw an extension now.
    Revoke {
        /// The extension id.
        ext_id: String,
        /// Why (surfaced to the extension's shutdown procedure).
        reason: String,
    },
    /// Base → receiver: atomically replace `old_id` with a new
    /// extension (local policy evolved).
    Replace {
        /// The id being replaced.
        old_id: String,
        /// The replacement.
        ext: SignedExtension,
        /// Lease duration for the replacement (ns).
        lease_ns: u64,
        /// Grant id for the replacement.
        grant: u64,
    },
    /// Receiver → base: a delivered extension requires `ext_id` but it
    /// is not installed; please deliver it.
    RequestDep {
        /// The missing dependency id.
        ext_id: String,
    },
    /// Base → base: a node this base had adapted left towards your
    /// area (the paper's "simple roaming algorithm"). Legacy form:
    /// carries only extension ids, so the target must re-deliver
    /// everything. Superseded by [`MidasMsg::HandoffState`].
    RoamingHandoff {
        /// The roaming node's advertised name.
        node_name: String,
        /// Extensions it held here.
        ext_ids: Vec<String>,
    },
    /// Base → base: full roaming handoff — the departing node's lease
    /// grants *and* the signed packages behind them, so the adopting
    /// base can take over the leases with zero re-`Deliver` messages.
    HandoffState {
        /// The roaming node's advertised name.
        node_name: String,
        /// Extension id → grant the node held at the sender.
        grants: BTreeMap<String, u64>,
        /// Signed packages for those grants (the adopting base may not
        /// catalogue them; it still needs them for fallback redelivery
        /// and onward handoffs).
        exts: Vec<SignedExtension>,
    },
    /// Base → receiver: your installed extensions now lease from this
    /// base — swap each old grant for a fresh local one, no reinstall.
    GrantTransfer {
        /// The node's advertised name (as the handoff recorded it).
        node_name: String,
        /// `(ext_id, old_grant, new_grant)` per migrated extension.
        rebinds: Vec<(String, u64, u64)>,
        /// Lease duration for the rebound grants (ns).
        lease_ns: u64,
    },
    /// Base → base: a departed node's movement history, as opaque
    /// store records — the fabric moves context, it does not interpret
    /// it.
    MovementExport {
        /// The node's advertised name.
        node_name: String,
        /// Encoded movement records in arrival order.
        records: Vec<Vec<u8>>,
    },
    /// Base → replica: anti-entropy probe — a digest of the sender's
    /// catalog. Matching digests end the exchange silently.
    CatalogDigest {
        /// FNV-64 over the sorted `(id, version)` catalog entries.
        digest: u64,
    },
    /// Replica → base: digests differed; here is what I hold, send me
    /// what I am missing.
    CatalogPull {
        /// Sorted `(id, version)` pairs the sender already holds.
        have: Vec<(String, u32)>,
    },
    /// Base → replica: catalog entries the peer lacks (or holds older
    /// versions of).
    CatalogPush {
        /// The missing/newer signed packages.
        exts: Vec<SignedExtension>,
    },
    /// Base → replica: the sender's live lease table (present nodes
    /// only), so a replica can adopt those nodes without redelivery if
    /// the sender crashes. Sent only when the table changes.
    LeaseSync {
        /// `(node name, network id, ext id → grant)` per present node,
        /// sorted by name.
        entries: Vec<(String, u32, BTreeMap<String, u64>)>,
    },
    /// Base → replica: one committed catalog WAL record riding the
    /// rev-stream (pmp-stream) — steady-state anti-entropy without
    /// waiting for the scan-tick digest exchange. The delta bytes are
    /// the sender's `BaseWalOp` payload verbatim; application is
    /// version-gated, so loss or reordering costs nothing but latency
    /// (the digest → pull → push exchange remains the convergence
    /// anchor).
    StreamDelta {
        /// The sender's per-namespace stream revision of this record.
        rev: u64,
        /// The encoded `BaseWalOp` exactly as the sender logged it.
        delta: Vec<u8>,
    },
}

impl Wire for MidasMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            MidasMsg::Deliver {
                ext,
                lease_ns,
                grant,
            } => {
                w.put_u8(0);
                ext.encode(w);
                w.put_u64(*lease_ns);
                w.put_u64(*grant);
            }
            MidasMsg::Ack {
                ext_id,
                grant,
                ok,
                reason,
            } => {
                w.put_u8(1);
                w.put_str(ext_id);
                w.put_u64(*grant);
                w.put_bool(*ok);
                w.put_str(reason);
            }
            MidasMsg::LeaseRenew { grant } => {
                w.put_u8(2);
                w.put_u64(*grant);
            }
            MidasMsg::Revoke { ext_id, reason } => {
                w.put_u8(3);
                w.put_str(ext_id);
                w.put_str(reason);
            }
            MidasMsg::Replace {
                old_id,
                ext,
                lease_ns,
                grant,
            } => {
                w.put_u8(4);
                w.put_str(old_id);
                ext.encode(w);
                w.put_u64(*lease_ns);
                w.put_u64(*grant);
            }
            MidasMsg::RequestDep { ext_id } => {
                w.put_u8(5);
                w.put_str(ext_id);
            }
            MidasMsg::RoamingHandoff { node_name, ext_ids } => {
                w.put_u8(6);
                w.put_str(node_name);
                ext_ids.encode(w);
            }
            MidasMsg::HandoffState {
                node_name,
                grants,
                exts,
            } => {
                w.put_u8(7);
                w.put_str(node_name);
                grants.encode(w);
                exts.encode(w);
            }
            MidasMsg::GrantTransfer {
                node_name,
                rebinds,
                lease_ns,
            } => {
                w.put_u8(8);
                w.put_str(node_name);
                rebinds.encode(w);
                w.put_u64(*lease_ns);
            }
            MidasMsg::MovementExport { node_name, records } => {
                w.put_u8(9);
                w.put_str(node_name);
                records.encode(w);
            }
            MidasMsg::CatalogDigest { digest } => {
                w.put_u8(10);
                w.put_u64(*digest);
            }
            MidasMsg::CatalogPull { have } => {
                w.put_u8(11);
                have.encode(w);
            }
            MidasMsg::CatalogPush { exts } => {
                w.put_u8(12);
                exts.encode(w);
            }
            MidasMsg::LeaseSync { entries } => {
                w.put_u8(13);
                entries.encode(w);
            }
            MidasMsg::StreamDelta { rev, delta } => {
                w.put_u8(14);
                w.put_u64(*rev);
                w.put_bytes(delta);
            }
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => MidasMsg::Deliver {
                ext: SignedExtension::decode(r)?,
                lease_ns: r.get_u64()?,
                grant: r.get_u64()?,
            },
            1 => MidasMsg::Ack {
                ext_id: r.get_str()?,
                grant: r.get_u64()?,
                ok: r.get_bool()?,
                reason: r.get_str()?,
            },
            2 => MidasMsg::LeaseRenew {
                grant: r.get_u64()?,
            },
            3 => MidasMsg::Revoke {
                ext_id: r.get_str()?,
                reason: r.get_str()?,
            },
            4 => MidasMsg::Replace {
                old_id: r.get_str()?,
                ext: SignedExtension::decode(r)?,
                lease_ns: r.get_u64()?,
                grant: r.get_u64()?,
            },
            5 => MidasMsg::RequestDep {
                ext_id: r.get_str()?,
            },
            6 => MidasMsg::RoamingHandoff {
                node_name: r.get_str()?,
                ext_ids: Vec::<String>::decode(r)?,
            },
            7 => MidasMsg::HandoffState {
                node_name: r.get_str()?,
                grants: BTreeMap::decode(r)?,
                exts: Vec::<SignedExtension>::decode(r)?,
            },
            8 => MidasMsg::GrantTransfer {
                node_name: r.get_str()?,
                rebinds: Vec::<(String, u64, u64)>::decode(r)?,
                lease_ns: r.get_u64()?,
            },
            9 => MidasMsg::MovementExport {
                node_name: r.get_str()?,
                records: Vec::<Vec<u8>>::decode(r)?,
            },
            10 => MidasMsg::CatalogDigest {
                digest: r.get_u64()?,
            },
            11 => MidasMsg::CatalogPull {
                have: Vec::<(String, u32)>::decode(r)?,
            },
            12 => MidasMsg::CatalogPush {
                exts: Vec::<SignedExtension>::decode(r)?,
            },
            13 => MidasMsg::LeaseSync {
                entries: Vec::<(String, u32, BTreeMap<String, u64>)>::decode(r)?,
            },
            14 => MidasMsg::StreamDelta {
                rev: r.get_u64()?,
                delta: r.get_bytes()?,
            },
            tag => {
                return Err(r.bad_tag("MidasMsg", tag))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::{ExtensionMeta, ExtensionPackage};
    use pmp_crypto::KeyPair;
    use pmp_prose::{Aspect, PortableAspect, PortableClass};

    fn signed() -> SignedExtension {
        let aspect = Aspect::script(
            "m",
            PortableClass {
                name: "M".into(),
                fields: vec![],
                methods: vec![],
            },
            vec![],
        );
        let pkg = ExtensionPackage {
            meta: ExtensionMeta {
                id: "m".into(),
                version: 1,
                description: String::new(),
                requires: vec![],
                permissions: vec![],
                implicit: false,
            },
            aspect: PortableAspect::try_from(&aspect).unwrap(),
        };
        SignedExtension::seal("a", &KeyPair::from_seed(b"a"), &pkg)
    }

    #[test]
    fn roundtrip_all_variants() {
        let msgs = vec![
            MidasMsg::Deliver {
                ext: signed(),
                lease_ns: 9,
                grant: 2,
            },
            MidasMsg::Ack {
                ext_id: "m".into(),
                grant: 2,
                ok: false,
                reason: "untrusted".into(),
            },
            MidasMsg::LeaseRenew { grant: 2 },
            MidasMsg::Revoke {
                ext_id: "m".into(),
                reason: "policy change".into(),
            },
            MidasMsg::Replace {
                old_id: "m".into(),
                ext: signed(),
                lease_ns: 9,
                grant: 3,
            },
            MidasMsg::RequestDep {
                ext_id: "session".into(),
            },
            MidasMsg::RoamingHandoff {
                node_name: "robot:1:1".into(),
                ext_ids: vec!["m".into()],
            },
            MidasMsg::HandoffState {
                node_name: "robot:1:1".into(),
                grants: [("m".to_string(), 4u64)].into(),
                exts: vec![signed()],
            },
            MidasMsg::GrantTransfer {
                node_name: "robot:1:1".into(),
                rebinds: vec![("m".into(), 4, 11)],
                lease_ns: 9,
            },
            MidasMsg::MovementExport {
                node_name: "robot:1:1".into(),
                records: vec![vec![1, 2, 3], vec![]],
            },
            MidasMsg::CatalogDigest { digest: 0xfeed },
            MidasMsg::CatalogPull {
                have: vec![("m".into(), 1)],
            },
            MidasMsg::CatalogPush {
                exts: vec![signed()],
            },
            MidasMsg::LeaseSync {
                entries: vec![(
                    "robot:1:1".into(),
                    7,
                    [("m".to_string(), 4u64)].into(),
                )],
            },
            MidasMsg::StreamDelta {
                rev: 12,
                delta: vec![0, 9, 9],
            },
        ];
        for m in msgs {
            let bytes = pmp_wire::to_bytes(&m);
            assert_eq!(pmp_wire::from_bytes::<MidasMsg>(&bytes).unwrap(), m);
        }
    }
}
