//! The RCX controller: three motors, three sensors, a command log, and
//! the freeze-on-event semantics of the paper's task model.

use crate::device::{HwCommand, Port};
use crate::motor::Motor;
use crate::sensor::{Sensor, SensorEvent, SensorKind};
use std::sync::Arc;

/// The LeJOS-like device controller. All hardware activity funnels
/// through [`Rcx::rotate`]/[`Rcx::stop`]/[`Rcx::set_power`] so a single
/// command log captures everything (what the monitoring extension taps).
pub struct Rcx {
    motors: [Motor; 3],
    sensors: [Sensor; 3],
    log: Vec<HwCommand>,
    frozen: bool,
    clock: Arc<dyn Fn() -> u64 + Send + Sync>,
}

impl std::fmt::Debug for Rcx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rcx")
            .field("motors", &self.motors)
            .field("log_len", &self.log.len())
            .field("frozen", &self.frozen)
            .finish_non_exhaustive()
    }
}

impl Default for Rcx {
    fn default() -> Self {
        Self::new()
    }
}

impl Rcx {
    /// Creates a controller with light sensors on every sensor port and
    /// a zeroed clock.
    pub fn new() -> Self {
        Self {
            motors: [Motor::new(Port::A), Motor::new(Port::B), Motor::new(Port::C)],
            sensors: [
                Sensor::new(Port::S1, SensorKind::Touch),
                Sensor::new(Port::S2, SensorKind::Light),
                Sensor::new(Port::S3, SensorKind::Rotation),
            ],
            log: Vec::new(),
            frozen: false,
            clock: Arc::new(|| 0),
        }
    }

    /// Installs the clock used to timestamp log entries (the platform
    /// wires the simulated clock here).
    pub fn set_clock(&mut self, clock: Arc<dyn Fn() -> u64 + Send + Sync>) {
        self.clock = clock;
    }

    /// A motor by port.
    ///
    /// # Panics
    ///
    /// Panics on sensor ports.
    pub fn motor(&self, port: Port) -> &Motor {
        &self.motors[port.motor_index()]
    }

    /// A sensor by port.
    ///
    /// # Panics
    ///
    /// Panics on motor ports.
    pub fn sensor(&self, port: Port) -> &Sensor {
        &self.sensors[port.sensor_index()]
    }

    /// Mutable sensor access (environment hooks).
    ///
    /// # Panics
    ///
    /// Panics on motor ports.
    pub fn sensor_mut(&mut self, port: Port) -> &mut Sensor {
        &mut self.sensors[port.sensor_index()]
    }

    /// Whether hardware is frozen awaiting a task decision.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Unfreezes the hardware (a task decided to continue or abort).
    pub fn unfreeze(&mut self) {
        self.frozen = false;
    }

    fn record(&mut self, device: String, command: &str, args: Vec<i64>, duration_ns: u64) {
        let issued_at = (self.clock)();
        self.log.push(HwCommand {
            device,
            command: command.to_string(),
            args,
            issued_at,
            duration_ns,
        });
    }

    /// Rotates a motor; returns the simulated duration, or `None` while
    /// frozen (commands are refused until the task layer reacts —
    /// paper §4.1: "the hardware completely freezes its activity").
    pub fn rotate(&mut self, port: Port, degrees: i64) -> Option<u64> {
        if self.frozen {
            return None;
        }
        let motor = &mut self.motors[port.motor_index()];
        let duration = motor.rotate(degrees);
        let device = motor.device_name();
        self.record(device, "rotate", vec![degrees], duration);
        Some(duration)
    }

    /// Sets a motor's power.
    pub fn set_power(&mut self, port: Port, power: i64) -> Option<u64> {
        if self.frozen {
            return None;
        }
        let motor = &mut self.motors[port.motor_index()];
        motor.set_power(power);
        let device = motor.device_name();
        self.record(device, "setPower", vec![power], 0);
        Some(0)
    }

    /// Stops a motor.
    pub fn stop(&mut self, port: Port) -> Option<u64> {
        if self.frozen {
            return None;
        }
        let motor = &mut self.motors[port.motor_index()];
        let duration = motor.stop();
        let device = motor.device_name();
        self.record(device, "stop", vec![], duration);
        Some(duration)
    }

    /// Polls all sensors; the first event freezes the hardware and is
    /// returned for the task layer to decide on.
    pub fn poll_sensors(&mut self) -> Option<SensorEvent> {
        for s in &mut self.sensors {
            if let Some(ev) = s.poll() {
                self.frozen = true;
                return Some(ev);
            }
        }
        None
    }

    /// The command log.
    pub fn log(&self) -> &[HwCommand] {
        &self.log
    }

    /// Drains the command log (the monitoring extension consumes it).
    pub fn take_log(&mut self) -> Vec<HwCommand> {
        std::mem::take(&mut self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_are_logged_with_durations() {
        let mut rcx = Rcx::new();
        rcx.rotate(Port::A, 90).unwrap();
        rcx.set_power(Port::A, 3).unwrap();
        rcx.stop(Port::A).unwrap();
        let log = rcx.log();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].command, "rotate");
        assert_eq!(log[0].args, vec![90]);
        assert!(log[0].duration_ns > 0);
        assert_eq!(log[1].command, "setPower");
        assert_eq!(log[2].command, "stop");
    }

    #[test]
    fn sensor_event_freezes_hardware() {
        let mut rcx = Rcx::new();
        rcx.sensor_mut(Port::S1).set_value(1);
        let ev = rcx.poll_sensors().unwrap();
        assert_eq!(ev.port, Port::S1);
        assert!(rcx.is_frozen());
        assert_eq!(rcx.rotate(Port::A, 10), None, "frozen hardware refuses");
        rcx.unfreeze();
        assert!(rcx.rotate(Port::A, 10).is_some());
    }

    #[test]
    fn take_log_drains() {
        let mut rcx = Rcx::new();
        rcx.rotate(Port::A, 10).unwrap();
        assert_eq!(rcx.take_log().len(), 1);
        assert!(rcx.log().is_empty());
    }

    #[test]
    fn clock_stamps_entries() {
        let mut rcx = Rcx::new();
        rcx.set_clock(Arc::new(|| 42));
        rcx.rotate(Port::B, 5).unwrap();
        assert_eq!(rcx.log()[0].issued_at, 42);
    }
}
