//! Span records and flight-recorder entries.

use pmp_wire::{wire_struct, Reader, Wire, WireError, Writer};

/// One finished span. Spans are *instant* — `start == end` in sim-time
/// — because within a node cell sim-time does not advance; the latency
/// structure of a trace lives in the start-time deltas between parent
/// and child spans (the network hops).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to (the root span's id).
    pub trace_id: u64,
    /// This span's id: `(node << 32) | seq`, seq starting at 1.
    pub span_id: u64,
    /// The causing span's id (0 for a root).
    pub parent_id: u64,
    /// The node the span was recorded on.
    pub node: u32,
    /// Sim-time (ns) the span was recorded at.
    pub start: u64,
    /// Sim-time (ns) the span ended at (== `start` today).
    pub end: u64,
    /// Dot-scoped name, like metrics (`"midas.verify"`).
    pub name: String,
    /// Free-form detail (extension id, target node, …).
    pub detail: String,
}

wire_struct!(SpanRecord {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    node: u32,
    start: u64,
    end: u64,
    name: String,
    detail: String
});

impl SpanRecord {
    /// The node a span id was minted on.
    #[must_use]
    pub fn node_of(span_id: u64) -> u32 {
        (span_id >> 32) as u32
    }

    /// Feeds this span's canonical fields into `h`.
    pub fn hash_into(&self, h: &mut pmp_telemetry::Fnv64) {
        h.write_u64(self.trace_id);
        h.write_u64(self.span_id);
        h.write_u64(self.parent_id);
        h.write_u64(u64::from(self.node));
        h.write_u64(self.start);
        h.write_u64(self.end);
        h.write_str(&self.name);
        h.write_str(&self.detail);
    }
}

/// One flight-recorder entry: a span recorded on the node, or a journal
/// point event mirrored into the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightEntry {
    /// A span recorded on this node.
    Span(SpanRecord),
    /// A journal-style point event.
    Event {
        /// Sim-time (ns).
        at: u64,
        /// Event name.
        name: String,
        /// Free-form detail.
        detail: String,
    },
}

impl Wire for FlightEntry {
    fn encode(&self, w: &mut Writer) {
        match self {
            FlightEntry::Span(s) => {
                w.put_u8(0);
                s.encode(w);
            }
            FlightEntry::Event { at, name, detail } => {
                w.put_u8(1);
                w.put_u64(*at);
                w.put_str(name);
                w.put_str(detail);
            }
        }
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => FlightEntry::Span(SpanRecord::decode(r)?),
            1 => FlightEntry::Event {
                at: r.get_u64()?,
                name: r.get_str()?,
                detail: r.get_str()?,
            },
            tag => return Err(r.bad_tag("FlightEntry", tag)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span() -> SpanRecord {
        SpanRecord {
            trace_id: (2u64 << 32) | 1,
            span_id: (5u64 << 32) | 3,
            parent_id: (2u64 << 32) | 1,
            node: 5,
            start: 1_000,
            end: 1_000,
            name: "midas.verify".into(),
            detail: "ext/monitoring".into(),
        }
    }

    #[test]
    fn span_roundtrips_and_decomposes() {
        let s = span();
        let bytes = pmp_wire::to_bytes(&s);
        assert_eq!(pmp_wire::from_bytes::<SpanRecord>(&bytes).unwrap(), s);
        assert_eq!(SpanRecord::node_of(s.span_id), 5);
    }

    #[test]
    fn flight_entries_roundtrip() {
        let entries = vec![
            FlightEntry::Span(span()),
            FlightEntry::Event {
                at: 7,
                name: "midas.ship".into(),
                detail: "ext/monitoring -> n3".into(),
            },
        ];
        for e in entries {
            let bytes = pmp_wire::to_bytes(&e);
            assert_eq!(pmp_wire::from_bytes::<FlightEntry>(&bytes).unwrap(), e);
        }
    }
}
