//! # pmp-core — the proactive middleware platform
//!
//! The facade over the whole reproduction: a [`platform::Platform`]
//! owns a deterministic simulated world and wires each node's stack
//! together exactly as the paper composes it (Fig. 2 / Fig. 3a):
//!
//! * **base stations** ([`node::BaseStation`]) — lookup service
//!   (`pmp-discovery`), extension base (`pmp-midas`), the hall database
//!   (`pmp-store`), and the hall's signing authority (`pmp-crypto`);
//! * **mobile nodes** ([`node::MobileNode`]) — managed runtime
//!   (`pmp-vm`), weaver (`pmp-prose`), adaptation service
//!   (`pmp-midas`), optional plotter hardware (`pmp-robot`) with the
//!   `DrawingService` the robot exports, and the host wiring
//!   ([`wiring`]) that turns extension system-calls into asynchronous
//!   network traffic;
//! * **remote calls** — the platform carries `m_R` invocations so
//!   session extraction and access control interpose exactly as in
//!   Fig. 2c.
//!
//! [`scenario::ProductionHalls`] builds the paper's two-hall world in
//! one call; the `examples/` directory shows it in action.

pub mod driver;
pub mod node;
pub mod platform;
pub mod rpc;
pub mod scenario;
pub mod wiring;

pub use driver::{Driver, NodeCell, ParallelDriver, SerialDriver};
pub use node::{BaseStation, MobileNode};
pub use platform::{BaseId, MobId, Platform, RpcOutcome, StreamSub};
pub use pmp_stream::{StreamEvent, StreamStats};
pub use rpc::{backoff_delay, DedupTable, InvocationSemantics, RpcConfig, RpcEngine, RpcServer};
pub use scenario::{ProductionHalls, CORRIDOR, IN_HALL_A, IN_HALL_B};
pub use wiring::{AppMsg, NodeWiring, RpcMsg, APP_CHANNEL, MIRROR_CHANNEL, RPC_CHANNEL};
