//! The plotter's paper: records pen strokes for verification.

/// One pen stroke from `from` to `to` (plotter step coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stroke {
    /// Start point.
    pub from: (i64, i64),
    /// End point.
    pub to: (i64, i64),
}

/// The recorded drawing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Canvas {
    strokes: Vec<Stroke>,
}

impl Canvas {
    /// Creates a blank canvas.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a stroke.
    pub fn stroke(&mut self, from: (i64, i64), to: (i64, i64)) {
        self.strokes.push(Stroke { from, to });
    }

    /// The strokes, in drawing order.
    pub fn strokes(&self) -> &[Stroke] {
        &self.strokes
    }

    /// Number of strokes.
    pub fn len(&self) -> usize {
        self.strokes.len()
    }

    /// Returns `true` if nothing was drawn.
    pub fn is_empty(&self) -> bool {
        self.strokes.is_empty()
    }

    /// Bounding box `((min_x, min_y), (max_x, max_y))`, if non-empty.
    pub fn bounds(&self) -> Option<((i64, i64), (i64, i64))> {
        let mut points = self
            .strokes
            .iter()
            .flat_map(|s| [s.from, s.to]);
        let first = points.next()?;
        let mut min = first;
        let mut max = first;
        for (x, y) in points {
            min.0 = min.0.min(x);
            min.1 = min.1.min(y);
            max.0 = max.0.max(x);
            max.1 = max.1.max(y);
        }
        Some((min, max))
    }

    /// Returns a copy with every coordinate multiplied by `num/den` —
    /// for comparing scaled replicas (paper §4.5, remote replication at
    /// a different scale).
    pub fn scaled(&self, num: i64, den: i64) -> Canvas {
        assert!(den != 0, "scale denominator must be nonzero");
        let scale = |(x, y): (i64, i64)| (x * num / den, y * num / den);
        Canvas {
            strokes: self
                .strokes
                .iter()
                .map(|s| Stroke {
                    from: scale(s.from),
                    to: scale(s.to),
                })
                .collect(),
        }
    }

    /// Total drawn length (Euclidean, floating).
    pub fn total_length(&self) -> f64 {
        self.strokes
            .iter()
            .map(|s| {
                let dx = (s.to.0 - s.from.0) as f64;
                let dy = (s.to.1 - s.from.1) as f64;
                (dx * dx + dy * dy).sqrt()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strokes_and_bounds() {
        let mut c = Canvas::new();
        assert!(c.bounds().is_none());
        c.stroke((0, 0), (10, 0));
        c.stroke((10, 0), (10, 5));
        assert_eq!(c.len(), 2);
        assert_eq!(c.bounds(), Some(((0, 0), (10, 5))));
        assert_eq!(c.total_length(), 15.0);
    }

    #[test]
    fn scaling() {
        let mut c = Canvas::new();
        c.stroke((0, 0), (10, 4));
        let doubled = c.scaled(2, 1);
        assert_eq!(doubled.strokes()[0].to, (20, 8));
        let halved = c.scaled(1, 2);
        assert_eq!(halved.strokes()[0].to, (5, 2));
    }

    #[test]
    fn equality_for_replication_checks() {
        let mut a = Canvas::new();
        a.stroke((0, 0), (5, 5));
        let mut b = Canvas::new();
        b.stroke((0, 0), (5, 5));
        assert_eq!(a, b);
        b.stroke((5, 5), (6, 6));
        assert_ne!(a, b);
    }
}
