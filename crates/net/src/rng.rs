//! A tiny deterministic RNG (splitmix64) for link-model sampling.
//!
//! The simulator's only randomness needs are "lose this copy with
//! probability p" and "uniform jitter in `[0, n)`"; splitmix64 passes
//! BigCrush-level bit-mixing for that purpose and keeps the workspace
//! free of external dependencies. Same seed, same sequence, forever —
//! the simulator's determinism guarantee rests on this.

/// Deterministic pseudo-random generator (splitmix64).
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed; equal seeds yield equal
    /// sequences.
    #[must_use]
    pub fn new(seed: u64) -> SimRng {
        SimRng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)` (53 bits of precision).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`). `p <= 0`
    /// never draws, so a lossless link consumes no randomness.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// A uniform value in `[0, n)` via Lemire's widening multiply.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    #[inline]
    pub fn range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(43);
        assert_ne!(SimRng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(1);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::new(9);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits: {hits}");
    }

    #[test]
    fn range_stays_in_bounds_and_covers() {
        let mut r = SimRng::new(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.range_u64(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
