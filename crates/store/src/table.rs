//! A generic append-only table.

use std::fmt;

/// Identifies a row within one table (dense, in insertion order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId(pub u64);

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rec#{}", self.0)
    }
}

/// An append-only table of timestamped rows.
///
/// # Examples
///
/// ```
/// use pmp_store::Table;
///
/// let mut t: Table<String> = Table::new();
/// t.append(10, "a".to_string());
/// t.append(20, "b".to_string());
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.range(15, 25).count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Table<T> {
    rows: Vec<(RecordId, u64, T)>,
}

impl<T> Default for Table<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Table<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self { rows: Vec::new() }
    }

    /// Appends a row with timestamp `at` (nanoseconds); returns its id.
    ///
    /// Timestamps are expected to be non-decreasing (rows arrive in
    /// time order from the simulator); range queries rely on scan order
    /// only, so out-of-order appends are stored but simply scanned.
    pub fn append(&mut self, at: u64, row: T) -> RecordId {
        let id = RecordId(self.rows.len() as u64);
        self.rows.push((id, at, row));
        id
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Fetches a row by id.
    pub fn get(&self, id: RecordId) -> Option<(&T, u64)> {
        self.rows.get(id.0 as usize).map(|(_, at, row)| (row, *at))
    }

    /// Iterates `(id, timestamp, row)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, u64, &T)> {
        self.rows.iter().map(|(id, at, row)| (*id, *at, row))
    }

    /// Rows with `from <= timestamp < to`.
    pub fn range(&self, from: u64, to: u64) -> impl Iterator<Item = (RecordId, u64, &T)> {
        self.iter().filter(move |(_, at, _)| *at >= from && *at < to)
    }

    /// Rows matching a predicate.
    pub fn select<'a>(
        &'a self,
        pred: impl Fn(&T) -> bool + 'a,
    ) -> impl Iterator<Item = (RecordId, u64, &'a T)> {
        self.iter().filter(move |(_, _, row)| pred(row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_get_iterate() {
        let mut t = Table::new();
        let a = t.append(1, "x");
        let b = t.append(2, "y");
        assert_eq!(t.get(a), Some((&"x", 1)));
        assert_eq!(t.get(b), Some((&"y", 2)));
        assert_eq!(t.get(RecordId(9)), None);
        let all: Vec<_> = t.iter().map(|(_, _, r)| *r).collect();
        assert_eq!(all, ["x", "y"]);
    }

    #[test]
    fn range_bounds_are_half_open() {
        let mut t = Table::new();
        for at in [10u64, 20, 30] {
            t.append(at, at);
        }
        let got: Vec<u64> = t.range(10, 30).map(|(_, _, r)| *r).collect();
        assert_eq!(got, [10, 20]);
    }

    #[test]
    fn select_filters() {
        let mut t = Table::new();
        t.append(0, 1i64);
        t.append(0, -2);
        t.append(0, 3);
        let pos: Vec<i64> = t.select(|r| *r > 0).map(|(_, _, r)| *r).collect();
        assert_eq!(pos, [1, 3]);
    }

    // Property tests need the external `proptest` crate; the offline
    // default build gates them behind the (empty) `proptest` feature.
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_ids_are_dense_and_stable(n in 0usize..100) {
                let mut t = Table::new();
                for i in 0..n {
                    let id = t.append(i as u64, i);
                    prop_assert_eq!(id, RecordId(i as u64));
                }
                prop_assert_eq!(t.len(), n);
                for i in 0..n {
                    prop_assert_eq!(t.get(RecordId(i as u64)).unwrap().0, &i);
                }
            }

            #[test]
            fn prop_range_equals_filter(times in proptest::collection::vec(0u64..1000, 0..50),
                                        from in 0u64..1000, width in 0u64..1000) {
                let mut sorted = times.clone();
                sorted.sort_unstable();
                let mut t = Table::new();
                for at in &sorted {
                    t.append(*at, *at);
                }
                let to = from.saturating_add(width);
                let via_range: Vec<u64> = t.range(from, to).map(|(_, _, r)| *r).collect();
                let via_filter: Vec<u64> = sorted.iter().copied()
                    .filter(|x| *x >= from && *x < to).collect();
                prop_assert_eq!(via_range, via_filter);
            }
        }
    }
}
