//! Errors produced by the PROSE engine.

use crate::handle::AspectId;
use crate::parser::ParsePatternError;
use pmp_vm::VmError;
use std::fmt;

/// Any failure while weaving, unweaving, or (de)serialising aspects.
#[derive(Debug, Clone, PartialEq)]
pub enum ProseError {
    /// A crosscut pattern string was malformed.
    Pattern(ParsePatternError),
    /// A shipped aspect's class name collides with an application class.
    ClassCollision(String),
    /// The shipped aspect class is malformed (bad types, etc.).
    BadAspectClass(String),
    /// A binding refers to an advice method the class does not declare
    /// (or it does not follow the 4-parameter advice convention).
    MissingAdviceMethod {
        /// The aspect class name.
        class: String,
        /// The missing/invalid method name.
        method: String,
    },
    /// The aspect id is not currently woven.
    UnknownAspect(AspectId),
    /// A native aspect cannot be serialised for distribution.
    NotPortable(String),
    /// The underlying VM rejected an operation.
    Vm(VmError),
}

impl fmt::Display for ProseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProseError::Pattern(e) => write!(f, "{e}"),
            ProseError::ClassCollision(name) => {
                write!(f, "aspect class {name:?} collides with an existing class")
            }
            ProseError::BadAspectClass(msg) => write!(f, "malformed aspect class: {msg}"),
            ProseError::MissingAdviceMethod { class, method } => {
                write!(f, "aspect class {class:?} has no valid advice method {method:?}")
            }
            ProseError::UnknownAspect(id) => write!(f, "aspect {id} is not woven"),
            ProseError::NotPortable(name) => {
                write!(f, "aspect {name:?} uses native advice and cannot be shipped")
            }
            ProseError::Vm(e) => write!(f, "vm error: {e}"),
        }
    }
}

impl std::error::Error for ProseError {}

impl From<ParsePatternError> for ProseError {
    fn from(e: ParsePatternError) -> Self {
        ProseError::Pattern(e)
    }
}

impl From<VmError> for ProseError {
    fn from(e: VmError) -> Self {
        ProseError::Vm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = ProseError::ClassCollision("Mon".into());
        assert!(e.to_string().contains("Mon"));
        let e = ProseError::MissingAdviceMethod {
            class: "Mon".into(),
            method: "onEntry".into(),
        };
        assert!(e.to_string().contains("onEntry"));
        let e = ProseError::NotPortable("local".into());
        assert!(e.to_string().contains("native advice"));
    }
}
