//! # pmp-bench — fixtures for reproducing the paper's measurements
//!
//! Shared setups used by both the criterion benches (`benches/`) and
//! the printable harness (`src/bin/harness.rs`). Each experiment Eⁿ is
//! indexed in `DESIGN.md` and recorded against the paper's numbers in
//! `EXPERIMENTS.md`.

use pmp_core::{MobId, Platform};
use pmp_net::Position;
use pmp_prose::{Aspect, Crosscut, PortableClass, PortableMethod, Prose, WeaveOptions};
use pmp_spec::{Size, Suite};
use pmp_vm::builder::MethodBuilder;
use pmp_vm::class::ClassDef;
use pmp_vm::op::Op;
use pmp_vm::prelude::*;
use std::sync::Arc;

pub use pmp_spec::PROGRAM_NAMES;

const SEC: u64 = 1_000_000_000;

// ---------------------------------------------------------------------
// E1 — SPECjvm-style baseline overhead
// ---------------------------------------------------------------------

/// A VM with the spec suite registered, stubs on or off.
pub fn suite_vm(hooks: bool) -> (Vm, Suite) {
    let mut vm = Vm::new(if hooks {
        VmConfig::default()
    } else {
        VmConfig::without_hooks()
    });
    if hooks {
        // A dispatcher is installed (as on any PROSE-enabled node) but
        // no aspects are woven — the paper's "no extensions" setup.
        let _prose = Prose::attach(&mut vm);
    }
    let suite = Suite::register_all(&mut vm).expect("suite registers");
    (vm, suite)
}

/// Runs the whole suite once; returns total bytecode ops executed.
pub fn run_suite(vm: &mut Vm, suite: &Suite, size: Size) -> u64 {
    let before = vm.stats().bytecode_ops;
    suite.run_all(vm, size).expect("suite runs");
    vm.stats().bytecode_ops - before
}

// ---------------------------------------------------------------------
// E2 — interception micro-costs
// ---------------------------------------------------------------------

/// How the `Ping.ping` call is instrumented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PingMode {
    /// Stubs compiled out (unmodified runtime).
    NoStubs,
    /// Stubs in, hook inactive (the ~7 % configuration).
    InactiveHook,
    /// A do-nothing native advice fires per call (~900 ns config).
    NativeAdvice,
    /// A do-nothing *script* advice fires per call (shipped-extension
    /// config: includes the VM-level advice invocation).
    ScriptAdvice,
}

/// A VM with a `Ping` class (`void ping()`), set up per `mode`.
/// Returns the receiver object to call on.
pub fn ping_vm(mode: PingMode) -> (Vm, Value) {
    let mut vm = Vm::new(match mode {
        PingMode::NoStubs => VmConfig::without_hooks(),
        _ => VmConfig::default(),
    });
    vm.register_class(
        ClassDef::build("Ping")
            .method("ping", [], TypeSig::Void, |b| {
                b.op(Op::Ret);
            })
            .done(),
    )
    .expect("register");
    if mode != PingMode::NoStubs {
        let prose = Prose::attach(&mut vm);
        match mode {
            PingMode::NativeAdvice => {
                let aspect = Aspect::build("nop")
                    .before("* Ping.*(..)", |_| Ok(()))
                    .done()
                    .expect("aspect");
                prose
                    .weave(&mut vm, aspect, WeaveOptions::default())
                    .expect("weave");
            }
            PingMode::ScriptAdvice => {
                let mut body = MethodBuilder::new();
                body.op(Op::Ret);
                let class = PortableClass {
                    name: "NopAspect".into(),
                    fields: vec![],
                    methods: vec![PortableMethod {
                        name: "nop".into(),
                        params: vec![
                            "any".into(),
                            "str".into(),
                            "any".into(),
                            "any".into(),
                            "any".into(),
                        ],
                        ret: "any".into(),
                        body: body.build(),
                    }],
                };
                let aspect = Aspect::script(
                    "nop-script",
                    class,
                    vec![(
                        Crosscut::parse("before * Ping.*(..)").expect("pattern"),
                        "nop".into(),
                        0,
                    )],
                );
                prose
                    .weave(&mut vm, aspect, WeaveOptions::sandboxed(Permissions::none()))
                    .expect("weave");
            }
            _ => {}
        }
    }
    let obj = vm.new_object("Ping").expect("object");
    (vm, obj)
}

/// One intercepted (or not) void interface call.
pub fn ping_once(vm: &mut Vm, obj: &Value) {
    vm.call("Ping", "ping", obj.clone(), vec![])
        .expect("ping");
}

// ---------------------------------------------------------------------
// E3 — cost of real extensions vs their interception
// ---------------------------------------------------------------------

/// Which real extension is woven over the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceExt {
    /// No extension (baseline).
    None,
    /// Do-nothing advice (pure interception cost).
    Nop,
    /// Session + access control (security).
    Security,
    /// Ad-hoc transactions over two fields.
    Transactions,
    /// Orthogonal persistence of field writes.
    Persistence,
}

/// A VM with a `Service` class whose `txWork(n)` loops `n` times
/// updating two fields, instrumented per `ext`.
pub fn service_vm(ext: ServiceExt) -> (Vm, Value) {
    let mut vm = Vm::new(VmConfig::default());
    vm.register_class(
        ClassDef::build("Service")
            .field("state", TypeSig::Int)
            .field("ops", TypeSig::Int)
            .method("txWork", [TypeSig::Int], TypeSig::Int, |b| {
                b.locals(1); // 2: i
                let top = b.label();
                let done = b.label();
                b.konst(0i64).op(Op::Store(2));
                b.bind(top);
                b.op(Op::Load(2)).op(Op::Load(1)).op(Op::Lt);
                b.jump_if_not(done);
                b.op(Op::Load(0));
                b.op(Op::Load(0)).op(Op::GetField {
                    class: "Service".into(),
                    field: "state".into(),
                });
                b.op(Op::Load(2)).op(Op::Add);
                b.op(Op::PutField {
                    class: "Service".into(),
                    field: "state".into(),
                });
                b.op(Op::Load(0));
                b.op(Op::Load(0)).op(Op::GetField {
                    class: "Service".into(),
                    field: "ops".into(),
                });
                b.konst(1i64).op(Op::Add);
                b.op(Op::PutField {
                    class: "Service".into(),
                    field: "ops".into(),
                });
                b.op(Op::Load(2)).konst(1i64).op(Op::Add).op(Op::Store(2));
                b.jump(top);
                b.bind(done);
                b.op(Op::Load(0))
                    .op(Op::GetField {
                        class: "Service".into(),
                        field: "state".into(),
                    })
                    .op(Op::RetVal);
            })
            .done(),
    )
    .expect("register");
    // Host-side stubs for extension system calls.
    pmp_extensions::support::register_session_blackboard(&mut vm);
    vm.register_sys(
        "session.caller",
        None,
        Arc::new(|_vm, _| Ok(Value::str("operator:1"))),
    );
    vm.register_sys("persist.put", None, Arc::new(|_vm, _| Ok(Value::Null)));

    let prose = Prose::attach(&mut vm);
    let sandbox = WeaveOptions::sandboxed(Permissions::all());
    match ext {
        ServiceExt::None => {}
        ServiceExt::Nop => {
            let aspect = Aspect::build("nop")
                .before("* Service.tx*(..)", |_| Ok(()))
                .after("* Service.tx*(..)", |_| Ok(()))
                .done()
                .expect("aspect");
            prose
                .weave(&mut vm, aspect, WeaveOptions::default())
                .expect("weave");
        }
        ServiceExt::Security => {
            for pkg in [
                pmp_extensions::session::package("* Service.*(..)", 1),
                pmp_extensions::access_control::package(
                    "* Service.*(..)",
                    &["operator:1"],
                    1,
                ),
            ] {
                prose
                    .weave(&mut vm, pkg.aspect.into(), sandbox)
                    .expect("weave");
            }
        }
        ServiceExt::Transactions => {
            let pkg = pmp_extensions::transactions::package(
                "* Service.tx*(..)",
                "Service",
                &["state", "ops"],
                1,
            );
            prose
                .weave(&mut vm, pkg.aspect.into(), sandbox)
                .expect("weave");
        }
        ServiceExt::Persistence => {
            let pkg = pmp_extensions::persistence::package("Service.*", 1);
            prose
                .weave(&mut vm, pkg.aspect.into(), sandbox)
                .expect("weave");
        }
    }
    let obj = vm.new_object("Service").expect("object");
    (vm, obj)
}

/// One service call of loop size `n`.
pub fn service_call(vm: &mut Vm, obj: &Value, n: i64) {
    vm.call("Service", "txWork", obj.clone(), vec![Value::Int(n)])
        .expect("txWork");
}

// ---------------------------------------------------------------------
// E4 — weaving latency vs matched join points
// ---------------------------------------------------------------------

/// A VM with `classes × methods` void methods to match against.
pub fn weave_target_vm(classes: usize, methods: usize) -> Vm {
    let mut vm = Vm::new(VmConfig::default());
    for c in 0..classes {
        let mut def = ClassDef::build(format!("Target{c}"));
        for m in 0..methods {
            def = def.method(format!("m{m}"), [], TypeSig::Void, |b| {
                b.op(Op::Ret);
            });
        }
        vm.register_class(def.done()).expect("register");
    }
    let _ = Prose::attach(&mut vm);
    vm
}

/// Weaves + unweaves a match-everything aspect once; returns how many
/// join points matched.
pub fn weave_unweave_once(vm: &mut Vm, prose: &Prose) -> usize {
    let aspect = Aspect::build("wide")
        .before("* Target*.*(..)", |_| Ok(()))
        .done()
        .expect("aspect");
    let id = prose
        .weave(vm, aspect, WeaveOptions::default())
        .expect("weave");
    let n = prose.info(id).expect("info").join_points;
    prose.unweave(vm, id, "bench").expect("unweave");
    n
}

// ---------------------------------------------------------------------
// E5 — end-to-end adapted-call cost (Fig. 2c)
// ---------------------------------------------------------------------

/// Builds an adapted robot (hall A world) and returns the pieces needed
/// to invoke its drawing service directly, with the full extension
/// stack woven. `with_extensions = false` gives the unadapted baseline.
pub fn adapted_robot(with_extensions: bool) -> (Platform, MobId) {
    let mut w = pmp_core::scenario::ProductionHalls::build(97);
    if !with_extensions {
        // Empty the hall's catalog before the robot is adapted.
        for id in ["ext/session", "ext/access-control", "ext/monitoring"] {
            w.platform.base_mut(w.base_a).base.catalog.remove(id);
        }
    }
    w.platform.pump(6 * SEC);
    (w.platform, w.robot)
}

/// One local `DrawingService.moveTo` call on the adapted robot.
pub fn adapted_call(platform: &mut Platform, robot: MobId, x: i64, y: i64) {
    let node = platform.node_mut(robot);
    let svc = node.services["DrawingService"].clone();
    *node.wiring.caller.lock() = "operator:1".into();
    node.vm
        .call(
            "DrawingService",
            "moveTo",
            svc,
            vec![Value::Int(x), Value::Int(y)],
        )
        .expect("moveTo");
}

// ---------------------------------------------------------------------
// E6 — distribution scalability (sim time, deterministic)
// ---------------------------------------------------------------------

/// Result of a distribution-scaling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionResult {
    /// Number of receiver nodes.
    pub nodes: usize,
    /// Simulated seconds from start until every node is adapted.
    pub time_to_all_adapted_s: f64,
    /// Total network messages submitted.
    pub messages: u64,
}

/// Builds the E6 world: one hall base with a billing catalog and `n`
/// devices on a circle, all in range. Shared by [`distribution_run`]
/// and the E12 driver-scaling runs so both pump the same event stream.
pub fn distribution_world(n: usize) -> (Platform, Vec<MobId>) {
    let mut p = Platform::new(1000 + n as u64);
    p.add_area("hall", Position::new(0.0, 0.0), Position::new(100.0, 100.0));
    let base = p.add_base("hall", Position::new(50.0, 50.0), 150.0);
    let pkg = pmp_extensions::billing::package("* Motor.*(..)", 1, 1);
    let sealed = p.base(base).seal(&pkg);
    p.base_mut(base).base.catalog.put(sealed);

    let cap = Permissions::none().with(Permission::Net);
    let policy = p.trusting_policy(&[base], cap);
    let mut ids: Vec<MobId> = Vec::with_capacity(n);
    for i in 0..n {
        let angle = (i as f64) * std::f64::consts::TAU / (n as f64);
        let pos = Position::new(50.0 + 30.0 * angle.cos(), 50.0 + 30.0 * angle.sin());
        ids.push(
            p.add_device(&format!("pda:{i}"), pos, 150.0, policy.clone())
                .expect("device"),
        );
    }
    (p, ids)
}

/// Measures time-to-adapted for `n` devices joining one hall at once.
pub fn distribution_run(n: usize) -> DistributionResult {
    let (mut p, ids) = distribution_world(n);
    let mut elapsed = 0u64;
    let step = SEC / 10;
    while elapsed < 120 * SEC {
        p.pump(step);
        elapsed += step;
        if ids
            .iter()
            .all(|id| p.node(*id).receiver.is_installed("ext/billing"))
        {
            break;
        }
    }
    DistributionResult {
        nodes: n,
        time_to_all_adapted_s: p.now().as_secs_f64(),
        messages: p.sim.trace.stats.sent,
    }
}

// ---------------------------------------------------------------------
// E7 — revocation latency vs lease period (sim time, deterministic)
// ---------------------------------------------------------------------

/// Result of a revocation-latency run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RevocationResult {
    /// The extension lease period (seconds).
    pub lease_s: f64,
    /// Simulated seconds from departure to autonomous withdrawal.
    pub revocation_latency_s: f64,
}

/// Measures how long after leaving the hall the extension survives.
pub fn revocation_run(lease_ns: u64) -> RevocationResult {
    let mut p = Platform::new(7_000 + lease_ns % 97);
    p.add_area("hall", Position::new(0.0, 0.0), Position::new(60.0, 60.0));
    let base = p.add_base("hall", Position::new(30.0, 30.0), 80.0);
    p.base_mut(base).base.set_lease(lease_ns);
    // Renew well within the lease period (the base's keep-alive cadence
    // follows its scan interval).
    p.base_mut(base).base.set_scan_interval((lease_ns / 4).max(SEC / 10));
    let pkg = pmp_extensions::billing::package("* Motor.*(..)", 1, 1);
    let sealed = p.base(base).seal(&pkg);
    p.base_mut(base).base.catalog.put(sealed);
    let policy = p.trusting_policy(&[base], Permissions::none().with(Permission::Net));
    let dev = p
        .add_device("pda:0", Position::new(35.0, 30.0), 80.0, policy)
        .expect("device");
    let mut waited = 0u64;
    while !p.node(dev).receiver.is_installed("ext/billing") {
        p.pump(SEC / 4);
        waited += SEC / 4;
        assert!(waited < 60 * SEC, "device never adapted");
    }
    // Let the adaptation settle into steady renewals.
    p.pump(2 * lease_ns);
    assert!(p.node(dev).receiver.is_installed("ext/billing"));

    let departure = p.now();
    p.move_node(dev, Position::new(500.0, 500.0));
    let step = SEC / 20;
    while p.node(dev).receiver.is_installed("ext/billing") {
        p.pump(step);
        if p.now().since(departure) > 300 * SEC {
            panic!("extension never revoked");
        }
    }
    RevocationResult {
        lease_s: lease_ns as f64 / 1e9,
        revocation_latency_s: p.now().since(departure) as f64 / 1e9,
    }
}

// ---------------------------------------------------------------------
// E12 — driver scaling (wall-clock, digest-checked)
// ---------------------------------------------------------------------

/// Result of one E12 run: the E6 distribution workload executed under
/// a chosen [`pmp_core::Driver`], with wall-clock cost and the two
/// determinism digests (DESIGN.md §10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverScalingResult {
    /// Number of receiver nodes.
    pub nodes: usize,
    /// Wall-clock milliseconds spent pumping (world build excluded).
    pub wall_ms: f64,
    /// [`Platform::trace_digest`] after the run.
    pub trace_digest: u64,
    /// [`Platform::journal_digest`] after the run.
    pub journal_digest: u64,
    /// Whether every device finished adapting within the time budget.
    pub all_adapted: bool,
}

/// Runs the E6 distribution workload under `driver`: `n` devices adapt
/// at once — the busy epochs fan the crypto-verify, admission-analysis
/// and weave work across all `n` cells — then a fixed 5 s settle tail
/// keeps the steady-state renewal traffic in the measurement. The seed
/// and schedule are identical across drivers, so digests must match.
pub fn driver_scaling_run(
    n: usize,
    driver: Box<dyn pmp_core::Driver>,
) -> DriverScalingResult {
    let (mut p, ids) = distribution_world(n);
    p.set_driver(driver);
    p.sim.trace.set_logging(true);
    let step = SEC / 10;
    let started = std::time::Instant::now();
    let mut elapsed = 0u64;
    let mut adapted_at: Option<u64> = None;
    while elapsed < 120 * SEC {
        p.pump(step);
        elapsed += step;
        if adapted_at.is_none()
            && ids
                .iter()
                .all(|id| p.node(*id).receiver.is_installed("ext/billing"))
        {
            adapted_at = Some(elapsed);
        }
        // A fixed settle tail after full adaptation: renewals and lease
        // sweeps keep every cell mildly busy, and a *fixed* endpoint
        // keeps the event stream identical across drivers.
        if let Some(at) = adapted_at {
            if elapsed >= at + 5 * SEC {
                break;
            }
        }
    }
    DriverScalingResult {
        nodes: n,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        trace_digest: p.trace_digest(),
        journal_digest: p.journal_digest(),
        all_adapted: adapted_at.is_some(),
    }
}

// ---------------------------------------------------------------------
// E6b — per-node message cost (derived from distribution runs)
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// E17 — federated base fabric (directory lookups + roaming handoff)
// ---------------------------------------------------------------------

/// Result of one federated-lookup scaling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedLookupResult {
    /// Number of bases in the federation.
    pub bases: usize,
    /// Registrar-to-registrar hops the query took.
    pub hops: u16,
    /// Whether the service was found.
    pub found: bool,
    /// Simulated milliseconds from query to answer.
    pub latency_ms: f64,
}

/// Builds a federation of `bases` base stations wired into a
/// `branching`-ary registrar tree, registers one service at the deepest
/// rightmost leaf, and issues a federated lookup from the deepest
/// *leftmost* leaf — the longest tree path, so the measured hop count
/// is the worst case for that federation size. Lookup cost must stay
/// O(log bases): the directory tier routes over tree edges only, never
/// a flat broadcast.
pub fn fed_lookup_run(bases: usize, branching: usize) -> FedLookupResult {
    use pmp_core::BaseId;
    use pmp_discovery::{DiscoveryEvent, ServiceItem, ServiceQuery};

    let mut p = Platform::new(9_000 + bases as u64);
    let side = (bases as f64).sqrt().ceil().max(1.0) as usize;
    let span = (side * 20 + 20) as f64;
    p.add_area("fab", Position::new(0.0, 0.0), Position::new(span, span));
    for i in 0..bases {
        let x = ((i % side) * 20 + 10) as f64;
        let y = ((i / side) * 20 + 10) as f64;
        // Tiny radios: everything interesting rides the wired tree.
        p.add_base("fab", Position::new(x, y), 4.0);
    }
    p.federate_tree(branching);

    let target = BaseId(bases - 1);
    let provider = p.base(target).node;
    p.register_service(
        target,
        ServiceItem::new("print", "laser", provider.0),
        3_600 * SEC,
    );
    // Registration + DirAdvertise propagation up the tree.
    p.pump(3 * SEC);

    let mut origin = 1usize.min(bases.saturating_sub(1));
    while origin * branching + 1 < bases {
        origin = origin * branching + 1;
    }
    let origin = BaseId(origin);
    let t0 = p.now().0;
    let req = p.fed_lookup(origin, ServiceQuery::of_type("print"));
    let mut result = FedLookupResult {
        bases,
        hops: 0,
        found: false,
        latency_ms: f64::NAN,
    };
    let step = SEC / 1_000; // 1 ms pumps: latency resolution
    for _ in 0..5_000 {
        p.pump(step);
        let done = p.take_discoveries(origin).into_iter().find_map(|e| match e {
            DiscoveryEvent::FedLookupDone { req: r, items, hops } if r == req => {
                Some((items, hops))
            }
            _ => None,
        });
        if let Some((items, hops)) = done {
            result.hops = hops;
            result.found = !items.is_empty();
            result.latency_ms = (p.now().0 - t0) as f64 / 1e6;
            break;
        }
    }
    result
}

/// Result of the federated roaming-handoff run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedHandoffResult {
    /// Extensions installed on the robot when it roamed.
    pub roamed_exts: usize,
    /// Grants rebound in place by the adopting base (migrated leases).
    pub migrated: u64,
    /// `Deliver` messages sent anywhere in the federation during the
    /// roam — the zero-re-delivery claim.
    pub redelivered: u64,
    /// Movement-history records for the robot visible at the adopting
    /// base after migration.
    pub movements: usize,
    /// Simulated milliseconds from the move until the adopting base
    /// held every lease.
    pub adopt_ms: f64,
}

/// Runs the production-halls roaming scenario with the two halls fully
/// federated (neighbours + replicas): the robot adapts and works in
/// hall A, then roams to hall B. Because the halls replicate catalogs
/// and lease tables, hall B adopts the robot by rebinding every grant
/// in place — the paper's roaming algorithm with **zero** re-`Deliver`
/// messages — and the movement history follows over the backhaul.
pub fn fed_handoff_run() -> FedHandoffResult {
    use pmp_core::scenario::{ProductionHalls, IN_HALL_B};

    let mut w = ProductionHalls::build(77);
    w.platform.federate_bases(w.base_a, w.base_b);
    // Adapt + anti-entropy: the two catalogs converge before the roam.
    w.platform.pump(10 * SEC);
    for (x0, y0, x1, y1) in [(0, 0, 12, 0), (12, 0, 12, 12)] {
        w.platform.rpc(
            w.base_a,
            w.robot,
            "operator:1",
            "DrawingService",
            "drawLine",
            vec![x0, y0, x1, y1],
        );
        w.platform.pump(SEC);
    }
    w.platform.pump(3 * SEC);

    let roamed_exts = w.platform.node(w.robot).receiver.installed_ids().len();
    let b_node = w.platform.base(w.base_b).node;
    let tel = w.platform.telemetry().clone();
    let migrated0 = tel.counter_value("midas.base.migrated");
    let delivered0 = tel.counter_value("midas.base.delivered");

    w.platform.move_node(w.robot, IN_HALL_B);
    let t0 = w.platform.now().0;
    let mut adopt_ms = f64::NAN;
    for _ in 0..600 {
        w.platform.pump(SEC / 10);
        let node = w.platform.node(w.robot);
        let ids = node.receiver.installed_ids();
        let all_at_b = !ids.is_empty()
            && ids
                .iter()
                .all(|id| node.receiver.lease_holder(id) == Some(b_node));
        if all_at_b {
            adopt_ms = (w.platform.now().0 - t0) as f64 / 1e6;
            break;
        }
    }
    // Settle: movement export and lease renewals drain.
    w.platform.pump(3 * SEC);

    FedHandoffResult {
        roamed_exts,
        migrated: tel.counter_value("midas.base.migrated") - migrated0,
        redelivered: tel.counter_value("midas.base.delivered") - delivered0,
        movements: w.platform.base(w.base_b).store.by_robot("robot:1:1").len(),
        adopt_ms,
    }
}

// ---------------------------------------------------------------------
// E13 — durability (WAL throughput, group commit, recovery)
// ---------------------------------------------------------------------

/// A throwaway durable state for WAL benchmarks: folds every replayed
/// payload into an FNV accumulator so replay cost includes apply work
/// but no allocation-heavy model.
#[derive(Debug, Default)]
pub struct BenchLedger {
    /// Number of records applied.
    pub applied: u64,
    digest: u64,
}

impl pmp_durable::Durable for BenchLedger {
    fn namespace(&self) -> &'static str {
        "bench.ledger"
    }
    fn snapshot_bytes(&self) -> Vec<u8> {
        pmp_wire::to_bytes(&(self.applied, self.digest))
    }
    fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), pmp_durable::DurableError> {
        let (applied, digest) = pmp_wire::from_bytes(bytes)?;
        self.applied = applied;
        self.digest = digest;
        Ok(())
    }
    fn apply_record(&mut self, payload: &[u8]) -> Result<(), pmp_durable::DurableError> {
        let mut h = pmp_telemetry::Fnv64::new();
        h.write_u64(self.digest);
        h.write(payload);
        self.digest = h.finish();
        self.applied += 1;
        Ok(())
    }
}

/// Builds a committed WAL of `records` payloads of `payload_bytes`
/// each, group-committed every `batch` appends. Returns the engine and
/// the in-memory state that produced it.
pub fn wal_world(records: usize, payload_bytes: usize, batch: usize) -> (pmp_durable::DurableEngine, BenchLedger) {
    let mut engine = pmp_durable::DurableEngine::new(pmp_durable::EngineConfig {
        segment_bytes: 64 * 1024,
        snapshot_every: 0,
    });
    let mut ledger = BenchLedger::default();
    for i in 0..records {
        let payload: Vec<u8> = (0..payload_bytes).map(|b| (i + b) as u8).collect();
        pmp_durable::Durable::apply_record(&mut ledger, &payload).expect("apply");
        engine.append("bench.ledger", payload);
        if (i + 1) % batch.max(1) == 0 {
            engine.commit();
        }
    }
    engine.commit();
    (engine, ledger)
}

/// One E13a/E13b measurement: appending + group-committing a fixed
/// write load at a given batch size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalAppendResult {
    /// Records per commit batch.
    pub batch: usize,
    /// Simulated fsyncs issued.
    pub syncs: u64,
    /// Wall-clock milliseconds for the whole load.
    pub wall_ms: f64,
    /// Appended records per wall-clock second.
    pub records_per_s: f64,
    /// Framed megabytes per wall-clock second.
    pub mb_per_s: f64,
}

/// Appends `records` × `payload_bytes` at `batch`-sized group commits
/// and reports throughput (E13a at one batch size; sweep `batch` for
/// E13b).
pub fn wal_append_run(records: usize, payload_bytes: usize, batch: usize) -> WalAppendResult {
    let started = std::time::Instant::now();
    let (engine, _) = wal_world(records, payload_bytes, batch);
    let wall = started.elapsed().as_secs_f64();
    WalAppendResult {
        batch,
        syncs: engine.disk().syncs(),
        wall_ms: wall * 1e3,
        records_per_s: records as f64 / wall,
        mb_per_s: engine.disk().committed_bytes() as f64 / (1024.0 * 1024.0) / wall,
    }
}

/// One E13c measurement: full recovery (snapshot scan + WAL replay)
/// over a log of `records` records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryResult {
    /// Records in the committed log.
    pub records: usize,
    /// Wall-clock milliseconds for [`pmp_durable::DurableEngine::recover`].
    pub recover_ms: f64,
    /// Records actually replayed.
    pub replayed: u64,
    /// Whether the image read back clean and the replayed state matched
    /// the writer's.
    pub verified: bool,
}

/// Crashes a `records`-long committed WAL and measures recovery.
pub fn recovery_run(records: usize) -> RecoveryResult {
    let (mut engine, ledger) = wal_world(records, 48, 32);
    use pmp_durable::Durable;
    engine.crash();
    let mut restored = BenchLedger::default();
    let started = std::time::Instant::now();
    let report = engine.recover(&mut [&mut restored]);
    let wall = started.elapsed().as_secs_f64();
    RecoveryResult {
        records,
        recover_ms: wall * 1e3,
        replayed: report.replayed,
        verified: report.is_clean()
            && restored.applied == ledger.applied
            && restored.snapshot_bytes() == ledger.snapshot_bytes(),
    }
}

// ---------------------------------------------------------------------
// E15 — tracing overhead (identical workloads, tracer off vs on)
// ---------------------------------------------------------------------

/// Result of one E15 workload leg.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceOverheadResult {
    /// Wall-clock milliseconds for the workload.
    pub wall_ms: f64,
    /// Spans retained by the platform collector at the end — zero when
    /// tracing is off, the proof that the traced leg actually traced.
    pub spans_retained: usize,
    /// Network trace digest: both legs must produce the same value,
    /// since envelopes carry their 16 context bytes either way and the
    /// link model therefore samples identically.
    pub trace_digest: u64,
}

/// E15a — the E2 hot path under platform tracing: ns per woven
/// `DrawingService.moveTo` dispatch on the adapted hall-A robot, with
/// platform tracing off vs on. By design the dispatch path carries no
/// tracing instrumentation — interception spans are detected from the
/// existing dispatch counter at epoch barriers — so this row pins that
/// claim: enabling tracing must not move per-dispatch cost.
pub fn dispatch_overhead_ns(tracing: bool) -> f64 {
    let mut w = pmp_core::scenario::ProductionHalls::build(97);
    w.platform.set_tracing(tracing);
    w.platform.pump(6 * SEC);
    let node = w.platform.node_mut(w.robot);
    // RPC dispatch sets the session caller before invoking the
    // service; the access-control advice reads it. Same here.
    *node.wiring.caller.lock() = "operator:1".to_string();
    let svc = node.services["DrawingService"].clone();
    // `position` reads through the same woven session/access-control
    // advice as `moveTo` but leaves the canvas and outbox untouched,
    // so per-call cost stays flat across the 16 samples.
    measure_ns(5_000, || {
        node.vm
            .call("DrawingService", "position", svc.clone(), vec![])
            .expect("woven dispatch");
    })
}

/// E15c — the worst-case traced-operation stress row: every operation
/// is a remote `moveTo` that mints its own `rpc.call` root span, so
/// the full per-span cost (mint, barrier drain, flight-ring mirror,
/// WAL append, collector absorb) lands on a ~20 µs baseline op. This
/// is the *ceiling* of tracing cost, not a typical workload: spans
/// ride the same WAL with the same durability as movement records.
pub fn traced_rpc_overhead_run(calls: usize, tracing: bool) -> TraceOverheadResult {
    let mut w = pmp_core::scenario::ProductionHalls::build(97);
    w.platform.set_tracing(tracing);
    w.platform.pump(6 * SEC);
    let t0 = std::time::Instant::now();
    for i in 0..calls {
        w.platform.rpc(
            w.base_a,
            w.robot,
            "operator:1",
            "DrawingService",
            "moveTo",
            vec![(i % 20) as i64, 3],
        );
        w.platform.pump(SEC / 20);
    }
    TraceOverheadResult {
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        spans_retained: w.platform.collector_stats().0,
        trace_digest: w.platform.trace_digest(),
    }
}

/// E15b — the E6 distribution workload with a *traced* publish: one
/// hall base publishes billing through the traced path, `n` devices
/// adapt, and the wall clock covers the whole time-to-all-adapted
/// loop (ship/verify/weave spans mint and drain when tracing is on).
pub fn distribution_overhead_run(n: usize, tracing: bool) -> TraceOverheadResult {
    let mut p = Platform::new(1000 + n as u64);
    p.set_tracing(tracing);
    p.add_area("hall", Position::new(0.0, 0.0), Position::new(100.0, 100.0));
    let base = p.add_base("hall", Position::new(50.0, 50.0), 150.0);
    p.publish_extension(base, &pmp_extensions::billing::package("* Motor.*(..)", 1, 1));

    let cap = Permissions::none().with(Permission::Net);
    let policy = p.trusting_policy(&[base], cap);
    let mut ids: Vec<MobId> = Vec::with_capacity(n);
    for i in 0..n {
        let angle = (i as f64) * std::f64::consts::TAU / (n as f64);
        let pos = Position::new(50.0 + 30.0 * angle.cos(), 50.0 + 30.0 * angle.sin());
        ids.push(
            p.add_device(&format!("pda:{i}"), pos, 150.0, policy.clone())
                .expect("device"),
        );
    }

    let t0 = std::time::Instant::now();
    let mut elapsed = 0u64;
    let step = SEC / 10;
    while elapsed < 120 * SEC {
        p.pump(step);
        elapsed += step;
        if ids
            .iter()
            .all(|id| p.node(*id).receiver.is_installed("ext/billing"))
        {
            break;
        }
    }
    TraceOverheadResult {
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        spans_retained: p.collector_stats().0,
        trace_digest: p.trace_digest(),
    }
}

// ---------------------------------------------------------------------
// E16 — weave-time optimization of shipped advice
// ---------------------------------------------------------------------

/// A shipped extension whose before-advice is written the way a real
/// extension author would write a guard: a constant arithmetic check,
/// a rate-limit probe through a virtual call on a sibling method, and
/// a fall-through return. Every op is resolvable at weave time — the
/// optimizer devirtualises the `limit` call, folds the guard, inlines
/// the constant summary, and DCE collapses `onCall` to a bare `Ret`,
/// with both methods proved hoistable — so the Original-vs-Optimized
/// gap on this package is the cost of shipping advice as authored.
pub fn guard_package() -> pmp_midas::ExtensionPackage {
    use pmp_vm::op::{BytecodeBody, Const};
    let advice = BytecodeBody {
        extra_locals: 0,
        ops: vec![
            Op::Const(Const::Int(6)),
            Op::Const(Const::Int(7)),
            Op::Mul, // 42
            Op::Const(Const::Int(40)),
            Op::Const(Const::Int(2)),
            Op::Add, // 42
            Op::Eq,  // true: the guard is satisfied
            Op::JumpIfNot(11),
            Op::Load(0),
            Op::CallV {
                method: "limit".into(),
                argc: 0,
            },
            Op::Pop,
            Op::Ret,
        ],
        handlers: vec![],
    };
    let limit = BytecodeBody {
        extra_locals: 0,
        ops: vec![Op::Const(Const::Int(9)), Op::RetVal],
        handlers: vec![],
    };
    let class = PortableClass {
        name: "GuardAspect".into(),
        fields: vec![],
        methods: vec![
            PortableMethod {
                name: "onCall".into(),
                params: vec!["any".into(); 5],
                ret: "any".into(),
                body: advice,
            },
            PortableMethod {
                name: "limit".into(),
                params: vec![],
                ret: "int".into(),
                body: limit,
            },
        ],
    };
    let aspect = Aspect::script(
        "guard",
        class,
        vec![(
            Crosscut::parse("before * Ping.*(..)").expect("pattern"),
            "onCall".into(),
            0,
        )],
    );
    pmp_midas::ExtensionPackage {
        meta: pmp_midas::ExtensionMeta {
            id: "bench/guard".into(),
            version: 1,
            description: "constant-guard advice for E16".into(),
            requires: vec![],
            permissions: vec![],
            implicit: false,
        },
        aspect: pmp_prose::PortableAspect::try_from(&aspect).expect("portable"),
    }
}

/// A `Ping` VM with [`guard_package`] woven the way a receiver would
/// install it: as shipped when `optimize` is false (the paper's
/// behaviour), or through the base-side optimizer plus receiver-side
/// hook hoisting when true ([`pmp_midas::ShipMode::Optimized`]).
pub fn ping_vm_shipped(optimize: bool) -> (Vm, Value) {
    let mut vm = Vm::new(VmConfig::default());
    vm.register_class(
        ClassDef::build("Ping")
            .method("ping", [], TypeSig::Void, |b| {
                b.op(Op::Ret);
            })
            .done(),
    )
    .expect("register");
    let prose = Prose::attach(&mut vm);
    let pkg = guard_package();
    let pkg = if optimize {
        let (optimized, report) = pmp_midas::optimize_package(&pkg);
        assert!(report.all_validated(), "E16 package must optimize clean");
        optimized
    } else {
        pkg
    };
    prose
        .weave(
            &mut vm,
            pkg.aspect.clone().into(),
            WeaveOptions::sandboxed(Permissions::none()),
        )
        .expect("weave");
    if optimize {
        // Receivers recompute hoisting locally from the shipped class;
        // they never trust the base's report.
        for m in pmp_analyze::opt::hoist::hoistable_methods(&pkg.aspect.class) {
            vm.hoist_hooks(&pkg.aspect.class.name, &m);
        }
    }
    let obj = vm.new_object("Ping").expect("object");
    (vm, obj)
}

// ---------------------------------------------------------------------
// E18 — pmp-stream fan-out (rev-streamed state, snapshot resync)
// ---------------------------------------------------------------------

/// Result of one stream fan-out load run (DESIGN.md §16, EXPERIMENTS.md
/// E18): one base, `subscribers` cursors on its movement namespace, a
/// fixed RPC traffic schedule, every cursor drained after every burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamFanoutResult {
    /// Synthetic subscribers attached to the base.
    pub subscribers: usize,
    /// Deltas the base's hub wire-encoded into its rings — once per
    /// committed WAL record, *independent of subscriber count* (the
    /// serialize-once claim; compare across runs).
    pub encoded: u64,
    /// Bytes wire-encoded (same once-per-record independence).
    pub encoded_bytes: u64,
    /// Platform-wide `stream.delta.encoded` telemetry delta over the
    /// run — the counter the serialize-once assertion reads.
    pub telemetry_encoded: u64,
    /// Per-subscriber delta deliveries (each a `Bytes` clone of an
    /// already-encoded buffer, never a re-serialization).
    pub deliveries: u64,
    /// Bytes handed to subscribers across all deliveries.
    pub delivered_bytes: u64,
    /// Wall-clock seconds spent in the drain (fan-out) loops only.
    pub fanout_wall_s: f64,
    /// Sustained deliveries per wall-clock second of fan-out.
    pub updates_per_s: f64,
    /// Encoding cost amortized over deliveries:
    /// `encoded_bytes / deliveries`.
    pub amortized_bytes_per_update: f64,
    /// 99th-percentile wall-clock nanoseconds of one subscriber's
    /// drain call, over ≤2048 sampled cursors per burst.
    pub p99_drain_ns: u64,
}

/// Runs the E18 load: a production-halls world, `subscribers` live
/// cursors on hall A's `store.movements` namespace, then `rounds`
/// drawing RPCs — each producing a burst of WAL-logged movement
/// records — with a full fan-out (every cursor drained) after each
/// burst. The simulated schedule is identical for every subscriber
/// count, so `encoded` / `encoded_bytes` / `telemetry_encoded` must
/// not move with `subscribers`: that *is* the serialize-once proof.
pub fn stream_fanout_run(subscribers: usize, rounds: usize) -> StreamFanoutResult {
    let mut w = pmp_core::scenario::ProductionHalls::build(41);
    w.platform.pump(6 * SEC);
    let subs: Vec<pmp_core::StreamSub> = (0..subscribers)
        .map(|_| w.platform.subscribe_live(w.base_a, "store.movements"))
        .collect();
    let tel = w.platform.telemetry().clone();
    let tel0 = tel.counter_value("stream.delta.encoded");
    let stats0 = w.platform.stream_stats(w.base_a);

    let mut deliveries = 0u64;
    let mut delivered_bytes = 0u64;
    let mut fanout_wall = 0f64;
    let mut samples: Vec<u64> = Vec::new();
    let sample_every = (subscribers / 2_048).max(1);
    for round in 0..rounds {
        let x = (round % 12) as i64;
        w.platform.rpc(
            w.base_a,
            w.robot,
            "operator:1",
            "DrawingService",
            "drawLine",
            vec![x, 0, x + 8, 4],
        );
        w.platform.pump(SEC);
        let t0 = std::time::Instant::now();
        for (i, &sub) in subs.iter().enumerate() {
            let sampled = i % sample_every == 0;
            let s0 = if sampled {
                Some(std::time::Instant::now())
            } else {
                None
            };
            for ev in w.platform.drain_updates(sub) {
                deliveries += 1;
                delivered_bytes += ev.bytes().len() as u64;
            }
            if let Some(s0) = s0 {
                samples.push(s0.elapsed().as_nanos() as u64);
            }
        }
        fanout_wall += t0.elapsed().as_secs_f64();
    }

    let stats = w.platform.stream_stats(w.base_a);
    let encoded = stats.encoded - stats0.encoded;
    let encoded_bytes = stats.encoded_bytes - stats0.encoded_bytes;
    samples.sort_unstable();
    let p99 = samples[(samples.len() * 99) / 100..].first().copied().unwrap_or(0);
    StreamFanoutResult {
        subscribers,
        encoded,
        encoded_bytes,
        telemetry_encoded: tel.counter_value("stream.delta.encoded") - tel0,
        deliveries,
        delivered_bytes,
        fanout_wall_s: fanout_wall,
        updates_per_s: deliveries as f64 / fanout_wall.max(f64::EPSILON),
        amortized_bytes_per_update: encoded_bytes as f64 / (deliveries as f64).max(1.0),
        p99_drain_ns: p99,
    }
}

/// Crude timer: median wall-clock nanoseconds per iteration of `f`.
pub fn measure_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    // Warm-up.
    for _ in 0..iters.min(16) {
        f();
    }
    let mut samples: Vec<f64> = Vec::with_capacity(16);
    for _ in 0..16 {
        let start = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(start.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_modes_all_work() {
        for mode in [
            PingMode::NoStubs,
            PingMode::InactiveHook,
            PingMode::NativeAdvice,
            PingMode::ScriptAdvice,
        ] {
            let (mut vm, obj) = ping_vm(mode);
            ping_once(&mut vm, &obj);
            let expect_dispatch = matches!(mode, PingMode::NativeAdvice | PingMode::ScriptAdvice);
            assert_eq!(
                vm.stats().advice_dispatches > 0,
                expect_dispatch,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn guard_package_collapses_and_both_legs_run() {
        let (opt, report) = pmp_midas::optimize_package(&guard_package());
        assert!(report.all_validated());
        assert_eq!(opt.aspect.class.methods[0].body.ops, vec![Op::Ret]);
        assert_eq!(
            pmp_analyze::opt::hoist::hoistable_methods(&opt.aspect.class),
            vec!["limit".to_string(), "onCall".to_string()]
        );
        for optimize in [false, true] {
            let (mut vm, obj) = ping_vm_shipped(optimize);
            ping_once(&mut vm, &obj);
            assert!(vm.stats().advice_dispatches > 0, "optimize={optimize}");
        }
    }

    #[test]
    fn service_exts_all_work() {
        for ext in [
            ServiceExt::None,
            ServiceExt::Nop,
            ServiceExt::Security,
            ServiceExt::Transactions,
            ServiceExt::Persistence,
        ] {
            let (mut vm, obj) = service_vm(ext);
            service_call(&mut vm, &obj, 10);
        }
    }

    #[test]
    fn weave_counts_join_points() {
        let mut vm = weave_target_vm(4, 25);
        let prose = Prose::attach(&mut vm);
        assert_eq!(weave_unweave_once(&mut vm, &prose), 100);
    }

    #[test]
    fn adapted_robot_call_paths() {
        let (mut p, robot) = adapted_robot(true);
        assert_eq!(p.node(robot).receiver.installed_ids().len(), 3);
        adapted_call(&mut p, robot, 3, 3);
        let (mut p, robot) = adapted_robot(false);
        assert!(p.node(robot).receiver.installed_ids().is_empty());
        adapted_call(&mut p, robot, 3, 3);
    }

    #[test]
    fn distribution_and_revocation_runs() {
        let d = distribution_run(3);
        assert_eq!(d.nodes, 3);
        assert!(d.time_to_all_adapted_s < 30.0);
        let r = revocation_run(2 * SEC);
        assert!(r.revocation_latency_s > 0.0);
        assert!(r.revocation_latency_s < 30.0);
    }

    #[test]
    fn driver_scaling_digests_agree() {
        let s = driver_scaling_run(3, Box::new(pmp_core::SerialDriver));
        let p = driver_scaling_run(3, Box::new(pmp_core::ParallelDriver { threads: 3 }));
        assert!(s.all_adapted && p.all_adapted);
        assert_eq!(s.trace_digest, p.trace_digest);
        assert_eq!(s.journal_digest, p.journal_digest);
    }

    #[test]
    fn stream_fanout_serializes_once() {
        let control = stream_fanout_run(1, 2);
        let r = stream_fanout_run(64, 2);
        assert!(control.encoded > 0, "the schedule must commit deltas");
        assert_eq!(r.encoded, control.encoded);
        assert_eq!(r.encoded_bytes, control.encoded_bytes);
        assert_eq!(r.telemetry_encoded, control.telemetry_encoded);
        assert_eq!(r.deliveries, control.deliveries * 64);
        assert!(r.delivered_bytes >= r.encoded_bytes);
    }
}
