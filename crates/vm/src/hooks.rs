//! Join-point hooks: the "minimal stubs" the simulated JIT plants.
//!
//! The paper's PROSE instructs the JIT compiler to insert minimal hooks
//! before/after every potential join point; when a join point fires, a
//! hook checks whether any advice is registered and, only then, calls
//! into the AOP runtime (Fig. 1). Here:
//!
//! * a *stub* is compiled into a method iff `VmConfig::prose_hooks` was
//!   set when the method was JIT-compiled (the ~7 % baseline cost of the
//!   paper's §4.6),
//! * an *active* hook is an atomic flag set by the weaver; only then is
//!   the [`Dispatcher`] invoked (the ~900 ns per-interception cost).

use crate::error::{VmError, VmException};
use crate::value::{ObjId, Value};
use crate::vm::Vm;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Dense index of a registered class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// Dense global index of a declared method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId(pub u32);

/// Dense global index of a declared field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub u32);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}
impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "method#{}", self.0)
    }
}
impl fmt::Display for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "field#{}", self.0)
    }
}

/// Method hook flag: entry advice present.
pub const HOOK_ENTRY: u8 = 1 << 0;
/// Method hook flag: exit advice present.
pub const HOOK_EXIT: u8 = 1 << 1;
/// Field hook flag: get advice present.
pub const HOOK_GET: u8 = 1 << 0;
/// Field hook flag: set advice present.
pub const HOOK_SET: u8 = 1 << 1;
/// Exception hook flag: throw advice present.
pub const HOOK_THROW: u8 = 1 << 0;
/// Exception hook flag: catch advice present.
pub const HOOK_CATCH: u8 = 1 << 1;

/// Per-VM tables of active hook flags, indexed by dense ids.
///
/// Flags are atomics so the weaver can flip them without recompiling;
/// this is exactly the paper's activation model.
#[derive(Debug, Default)]
pub struct HookRegistry {
    methods: Vec<AtomicU8>,
    fields: Vec<AtomicU8>,
    exceptions: AtomicU8,
}

impl HookRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the method table to cover `mid`.
    pub(crate) fn ensure_method(&mut self, mid: MethodId) {
        while self.methods.len() <= mid.0 as usize {
            self.methods.push(AtomicU8::new(0));
        }
    }

    /// Grows the field table to cover `fid`.
    pub(crate) fn ensure_field(&mut self, fid: FieldId) {
        while self.fields.len() <= fid.0 as usize {
            self.fields.push(AtomicU8::new(0));
        }
    }

    /// Current flags for a method (0 if unknown).
    #[inline]
    pub fn method_flags(&self, mid: MethodId) -> u8 {
        self.methods
            .get(mid.0 as usize)
            .map_or(0, |f| f.load(Ordering::Relaxed))
    }

    /// Sets the given flag bits on a method hook.
    pub fn activate_method(&self, mid: MethodId, flags: u8) {
        if let Some(f) = self.methods.get(mid.0 as usize) {
            f.fetch_or(flags, Ordering::Relaxed);
        }
    }

    /// Clears the given flag bits on a method hook.
    pub fn deactivate_method(&self, mid: MethodId, flags: u8) {
        if let Some(f) = self.methods.get(mid.0 as usize) {
            f.fetch_and(!flags, Ordering::Relaxed);
        }
    }

    /// Current flags for a field (0 if unknown).
    #[inline]
    pub fn field_flags(&self, fid: FieldId) -> u8 {
        self.fields
            .get(fid.0 as usize)
            .map_or(0, |f| f.load(Ordering::Relaxed))
    }

    /// Sets the given flag bits on a field hook.
    pub fn activate_field(&self, fid: FieldId, flags: u8) {
        if let Some(f) = self.fields.get(fid.0 as usize) {
            f.fetch_or(flags, Ordering::Relaxed);
        }
    }

    /// Clears the given flag bits on a field hook.
    pub fn deactivate_field(&self, fid: FieldId, flags: u8) {
        if let Some(f) = self.fields.get(fid.0 as usize) {
            f.fetch_and(!flags, Ordering::Relaxed);
        }
    }

    /// Current global exception-hook flags.
    #[inline]
    pub fn exception_flags(&self) -> u8 {
        self.exceptions.load(Ordering::Relaxed)
    }

    /// Sets global exception-hook flag bits.
    pub fn activate_exception(&self, flags: u8) {
        self.exceptions.fetch_or(flags, Ordering::Relaxed);
    }

    /// Clears global exception-hook flag bits.
    pub fn deactivate_exception(&self, flags: u8) {
        self.exceptions.fetch_and(!flags, Ordering::Relaxed);
    }

    /// Clears every flag (used when unweaving all aspects).
    pub fn clear_all(&self) {
        for f in &self.methods {
            f.store(0, Ordering::Relaxed);
        }
        for f in &self.fields {
            f.store(0, Ordering::Relaxed);
        }
        self.exceptions.store(0, Ordering::Relaxed);
    }
}

/// Outcome of a method body, as seen by exit advice. Exit advice may
/// replace the return value but cannot turn a throw into a return.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The method returned this value.
    Returned(Value),
    /// The method threw this exception.
    Threw(VmException),
}

/// The AOP runtime's entry points, invoked from active hooks.
///
/// Implemented by PROSE's dispatcher; the VM knows nothing about aspects
/// beyond this trait. All methods receive `&mut Vm` so advice can execute
/// bytecode, allocate, and call system operations.
pub trait Dispatcher: Send + Sync {
    /// Fires before a method body runs. May mutate `args`; returning an
    /// `Err` aborts the call (used by access-control advice).
    ///
    /// # Errors
    ///
    /// Any [`VmError`]; an exception aborts the intercepted call.
    fn method_entry(
        &self,
        vm: &mut Vm,
        mid: MethodId,
        this: &Value,
        args: &mut Vec<Value>,
    ) -> Result<(), VmError>;

    /// Fires after a method body completes (normally or exceptionally).
    /// Receives the (entry-time) arguments and may replace the return
    /// value inside `outcome`.
    ///
    /// # Errors
    ///
    /// Any [`VmError`]; it replaces the method outcome.
    fn method_exit(
        &self,
        vm: &mut Vm,
        mid: MethodId,
        this: &Value,
        args: &[Value],
        outcome: &mut Outcome,
    ) -> Result<(), VmError>;

    /// Fires after a field read; may replace the observed value.
    ///
    /// # Errors
    ///
    /// Any [`VmError`]; aborts the reading method.
    fn field_get(
        &self,
        vm: &mut Vm,
        fid: FieldId,
        obj: ObjId,
        value: &mut Value,
    ) -> Result<(), VmError>;

    /// Fires before a field write; may replace the value to be written.
    ///
    /// # Errors
    ///
    /// Any [`VmError`]; aborts the writing method (vetoes the write).
    fn field_set(
        &self,
        vm: &mut Vm,
        fid: FieldId,
        obj: ObjId,
        value: &mut Value,
    ) -> Result<(), VmError>;

    /// Fires when an explicit `Throw` op raises `exc` inside `site`.
    ///
    /// # Errors
    ///
    /// Any [`VmError`]; replaces the thrown exception.
    fn exception_throw(
        &self,
        vm: &mut Vm,
        site: MethodId,
        exc: &VmException,
    ) -> Result<(), VmError>;

    /// Fires when a handler in `site` catches `exc`.
    ///
    /// # Errors
    ///
    /// Any [`VmError`]; aborts the catching method.
    fn exception_catch(
        &self,
        vm: &mut Vm,
        site: MethodId,
        exc: &VmException,
    ) -> Result<(), VmError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_flags_lifecycle() {
        let mut reg = HookRegistry::new();
        reg.ensure_method(MethodId(3));
        assert_eq!(reg.method_flags(MethodId(3)), 0);
        reg.activate_method(MethodId(3), HOOK_ENTRY);
        reg.activate_method(MethodId(3), HOOK_EXIT);
        assert_eq!(reg.method_flags(MethodId(3)), HOOK_ENTRY | HOOK_EXIT);
        reg.deactivate_method(MethodId(3), HOOK_ENTRY);
        assert_eq!(reg.method_flags(MethodId(3)), HOOK_EXIT);
    }

    #[test]
    fn unknown_ids_read_as_zero_and_ignore_writes() {
        let reg = HookRegistry::new();
        assert_eq!(reg.method_flags(MethodId(42)), 0);
        reg.activate_method(MethodId(42), HOOK_ENTRY); // no-op, no panic
        assert_eq!(reg.method_flags(MethodId(42)), 0);
    }

    #[test]
    fn field_and_exception_flags() {
        let mut reg = HookRegistry::new();
        reg.ensure_field(FieldId(0));
        reg.activate_field(FieldId(0), HOOK_SET);
        assert_eq!(reg.field_flags(FieldId(0)), HOOK_SET);
        reg.activate_exception(HOOK_THROW | HOOK_CATCH);
        reg.deactivate_exception(HOOK_THROW);
        assert_eq!(reg.exception_flags(), HOOK_CATCH);
    }

    #[test]
    fn clear_all_resets() {
        let mut reg = HookRegistry::new();
        reg.ensure_method(MethodId(0));
        reg.ensure_field(FieldId(0));
        reg.activate_method(MethodId(0), HOOK_ENTRY);
        reg.activate_field(FieldId(0), HOOK_GET);
        reg.activate_exception(HOOK_THROW);
        reg.clear_all();
        assert_eq!(reg.method_flags(MethodId(0)), 0);
        assert_eq!(reg.field_flags(FieldId(0)), 0);
        assert_eq!(reg.exception_flags(), 0);
    }
}
