//! Cross-driver determinism of the rev stream (pmp-stream): the delta
//! sequence every subscriber observes — revs, event kinds, and the
//! exact bytes — must be identical under the serial and parallel epoch
//! drivers, including across a crash → restart boundary where cursors
//! go through forced snapshot resync.
//!
//! The test also closes the loop semantically: a mirror `MovementStore`
//! built purely from drained stream events must converge to the
//! publisher's state digest at every barrier.

use pmp::core::{
    Driver, ParallelDriver, Platform, ProductionHalls, SerialDriver, StreamEvent, StreamSub,
};
use pmp::durable::Durable;
use pmp::store::MovementStore;
use pmp::telemetry::Fnv64;

const SEC: u64 = 1_000_000_000;

const NAMESPACES: [&str; 3] = ["store.movements", "midas.base", "trace.flight"];

fn fingerprint_event(ns: &str, ev: &StreamEvent) -> String {
    let (kind, rev, bytes) = match ev {
        StreamEvent::Delta { rev, bytes } => ("delta", *rev, bytes),
        StreamEvent::Snapshot { rev, bytes } => ("snapshot", *rev, bytes),
    };
    let mut h = Fnv64::new();
    h.write(bytes);
    format!("{ns} {kind} rev={rev} len={} fnv={:016x}", bytes.len(), h.finish())
}

/// Applies one stream event to a mirror store the way any subscriber
/// would: deltas through `apply_record`, snapshots adopted whole.
fn apply_to_mirror(mirror: &mut MovementStore, ev: &StreamEvent) {
    match ev {
        StreamEvent::Delta { bytes, .. } => mirror.apply_record(bytes).expect("delta applies"),
        StreamEvent::Snapshot { bytes, .. } => {
            mirror.restore_snapshot(bytes).expect("snapshot restores");
        }
    }
}

struct StreamRun {
    /// Every drained event of every subscriber, in drain order.
    log: Vec<String>,
    driver: &'static str,
}

fn drain_all(
    p: &mut Platform,
    subs: &[(String, StreamSub)],
    log: &mut Vec<String>,
    mirror: &mut MovementStore,
) {
    for (ns, sub) in subs {
        for ev in p.drain_updates(*sub) {
            log.push(fingerprint_event(ns, &ev));
            if ns == "store.movements" {
                apply_to_mirror(mirror, &ev);
            }
        }
    }
}

fn run_stream(driver: Box<dyn Driver>) -> StreamRun {
    let name = driver.name();
    let mut w = ProductionHalls::build(23);
    w.platform.set_driver(driver);
    let base_a = w.base_a;
    let subs: Vec<(String, StreamSub)> = NAMESPACES
        .iter()
        .map(|ns| (ns.to_string(), w.platform.subscribe(base_a, ns)))
        .collect();
    let mut log = Vec::new();
    let mut mirror = MovementStore::new();

    // Adaptation: catalog deliveries land in "midas.base", spans in
    // "trace.flight".
    w.platform.pump(6 * SEC);
    drain_all(&mut w.platform, &subs, &mut log, &mut mirror);

    // A drawing RPC: the monitoring extension reports movements to the
    // base, which WAL-logs them into "store.movements".
    w.platform.rpc(
        base_a,
        w.robot,
        "operator:1",
        "DrawingService",
        "drawLine",
        vec![0, 0, 10, 0],
    );
    w.platform.pump(3 * SEC);
    drain_all(&mut w.platform, &subs, &mut log, &mut mirror);
    assert_eq!(
        mirror.state_digest(),
        w.platform.base(base_a).store.state_digest(),
        "mirror diverged from publisher before the crash"
    );

    // Crash → restart: cursors are force-resynced; the drained sequence
    // after restart must start with snapshots, identically per driver.
    w.platform.crash_base(base_a);
    w.platform.pump(2 * SEC);
    drain_all(&mut w.platform, &subs, &mut log, &mut mirror); // crashed: drains empty
    w.platform.restart_base(base_a);
    w.platform.pump(6 * SEC);
    drain_all(&mut w.platform, &subs, &mut log, &mut mirror);

    // A late subscriber bootstraps the full history (log or snapshot)
    // — also identically per driver.
    let late = w.platform.subscribe(base_a, "store.movements");
    let mut late_mirror = MovementStore::new();
    for ev in w.platform.drain_updates(late) {
        log.push(fingerprint_event("late:store.movements", &ev));
        apply_to_mirror(&mut late_mirror, &ev);
    }

    assert_eq!(
        mirror.state_digest(),
        w.platform.base(base_a).store.state_digest(),
        "mirror diverged from publisher after restart resync"
    );
    assert_eq!(
        late_mirror.state_digest(),
        w.platform.base(base_a).store.state_digest(),
        "late subscriber did not converge"
    );

    StreamRun { log, driver: name }
}

#[test]
fn subscriber_streams_are_driver_invariant() {
    let serial = run_stream(Box::new(SerialDriver));
    let parallel = run_stream(Box::new(ParallelDriver { threads: 3 }));
    assert_eq!(
        serial.log, parallel.log,
        "{} vs {} subscriber event sequences diverged",
        serial.driver, parallel.driver
    );
    // The run exercised all three stream kinds: ordinary deltas, the
    // forced post-restart resync, and a late bootstrap.
    assert!(serial.log.iter().any(|l| l.contains(" delta ")));
    assert!(
        serial.log.iter().any(|l| l.contains("snapshot")),
        "restart should have forced at least one snapshot resync: {:?}",
        serial.log.iter().take(8).collect::<Vec<_>>()
    );
    assert!(serial.log.iter().any(|l| l.starts_with("late:")));
}

#[test]
fn serial_stream_runs_are_repeatable() {
    let a = run_stream(Box::new(SerialDriver));
    let b = run_stream(Box::new(SerialDriver));
    assert_eq!(a.log, b.log);
}
