//! # pmp-durable — crash-recoverable WAL + snapshot storage engine
//!
//! The paper's base stations are the *stationary* half of the platform:
//! they hold the extension catalog, the lease table for every adapted
//! node, and the movement history replicated between halls. In the
//! paper these live in Java heap and die with the process. This crate
//! gives the reproduction what a production deployment would need: a
//! log-structured storage engine so a base station can crash mid-epoch
//! and come back with byte-identical state.
//!
//! Layout:
//!
//! * [`crc`] — CRC-32 (IEEE) over every frame, no external crate.
//! * [`disk`] — [`SimDisk`], an in-memory disk with an explicit
//!   committed/pending boundary (the simulated `fsync`) and fault
//!   injection on the committed image.
//! * [`record`] — the frame format (`len | body | crc`) and
//!   [`WalRecord`]; all decode errors carry byte offsets.
//! * [`engine`] — [`DurableEngine`]: segmented WAL, group commit,
//!   snapshot + compaction, and a recovery path that truncates torn
//!   tails and reports corruption instead of panicking.
//!
//! State plugs in through the [`Durable`] trait: anything that can
//! snapshot itself to bytes and apply namespaced log records can be
//! made crash-safe. `pmp-store`'s movement table, `pmp-midas`'s
//! extension base, and `pmp-tuplespace`'s tuple bag all implement it.
//!
//! Components share one engine through a [`DurableHub`]; each keeps a
//! cheap [`NamespaceHandle`] for its own append stream. Appends buffer
//! in memory; the platform calls [`DurableHub::commit`] at epoch
//! barriers (group commit), which keeps the write path off the
//! parallel driver's worker threads and the event journal
//! deterministic across drivers.

pub mod crc;
pub mod disk;
pub mod engine;
pub mod record;

pub use disk::SimDisk;
pub use engine::{Anomaly, CommitTap, DurableEngine, EngineConfig, RecoverReport};
pub use record::{FrameError, WalRecord};

use pmp_telemetry::{sync, Fnv64, Sink};
use pmp_wire::WireError;
use std::sync::Arc;

/// Error from restoring or applying durable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// A snapshot or record payload failed wire decoding.
    Wire(WireError),
    /// A decoded operation violated an invariant of the state.
    Invalid(&'static str),
}

impl From<WireError> for DurableError {
    fn from(e: WireError) -> Self {
        DurableError::Wire(e)
    }
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Wire(e) => write!(f, "wire: {e}"),
            DurableError::Invalid(reason) => write!(f, "invalid operation: {reason}"),
        }
    }
}

impl std::error::Error for DurableError {}

/// State that can be made crash-safe by the engine.
///
/// Implementations must keep `snapshot_bytes` **canonical**: equal
/// logical state produces identical bytes (sort maps, fix iteration
/// order). Crash-recovery tests compare [`Durable::state_digest`]
/// across a crash/restart boundary, which only works if the encoding
/// is a pure function of the state.
pub trait Durable {
    /// The namespace this state owns, e.g. `"midas.base"`. Must be
    /// unique within a hub.
    fn namespace(&self) -> &'static str;

    /// Canonical serialisation of the full current state.
    fn snapshot_bytes(&self) -> Vec<u8>;

    /// Replaces the state with a previously-taken snapshot.
    ///
    /// # Errors
    ///
    /// [`DurableError`] when the bytes do not decode.
    fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), DurableError>;

    /// Applies one logged operation (a payload this state previously
    /// appended through its [`NamespaceHandle`]).
    ///
    /// # Errors
    ///
    /// [`DurableError`] when the payload does not decode or violates
    /// an invariant.
    fn apply_record(&mut self, payload: &[u8]) -> Result<(), DurableError>;

    /// A stable digest of the current state, derived from the
    /// canonical snapshot encoding. Used by crash-recovery tests to
    /// prove restored state matches the pre-crash original.
    fn state_digest(&self) -> u64 {
        let bytes = self.snapshot_bytes();
        let mut h = Fnv64::new();
        h.write_u64(bytes.len() as u64);
        h.write(&bytes);
        h.finish()
    }
}

/// A cloneable, thread-safe handle on one shared [`DurableEngine`].
///
/// Node cells may append from worker threads under the parallel driver
/// (the engine sits behind a mutex); commits, checkpoints, and
/// recovery happen on the platform thread at epoch barriers.
#[derive(Clone, Debug, Default)]
pub struct DurableHub {
    inner: Arc<sync::Mutex<DurableEngine>>,
}

impl DurableHub {
    /// A hub around a fresh engine with default tuning.
    #[must_use]
    pub fn new() -> DurableHub {
        DurableHub::with_config(EngineConfig::default())
    }

    /// A hub around a fresh engine with explicit tuning.
    #[must_use]
    pub fn with_config(cfg: EngineConfig) -> DurableHub {
        DurableHub {
            inner: Arc::new(sync::Mutex::new(DurableEngine::new(cfg))),
        }
    }

    /// Runs `f` with the engine locked.
    pub fn with<R>(&self, f: impl FnOnce(&mut DurableEngine) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Routes engine telemetry through `sink`.
    pub fn attach_sink(&self, sink: Sink) {
        self.inner.lock().attach_sink(sink);
    }

    /// Installs the engine's commit observer (see
    /// [`engine::CommitTap`]): called with every batch right after the
    /// sync that makes it durable.
    pub fn set_commit_tap(&self, tap: CommitTap) {
        self.inner.lock().set_commit_tap(tap);
    }

    /// The committed WAL suffix from `since_seq` (see
    /// [`DurableEngine::wal_tail`]); `None` when not servable.
    #[must_use]
    pub fn wal_tail(&self, since_seq: u64) -> Option<Vec<WalRecord>> {
        self.inner.lock().wal_tail(since_seq)
    }

    /// An append handle bound to one namespace.
    #[must_use]
    pub fn namespace(&self, ns: &'static str) -> NamespaceHandle {
        NamespaceHandle {
            hub: self.clone(),
            ns,
        }
    }

    /// Buffers a record under `ns`; returns its sequence number.
    pub fn append(&self, ns: &str, payload: Vec<u8>) -> u64 {
        self.inner.lock().append(ns, payload)
    }

    /// Buffers a record that does not advance the snapshot cadence
    /// (see [`DurableEngine::append_weightless`]).
    pub fn append_weightless(&self, ns: &str, payload: Vec<u8>) -> u64 {
        self.inner.lock().append_weightless(ns, payload)
    }

    /// Group-commits the buffered batch; returns the batch size.
    pub fn commit(&self) -> usize {
        self.inner.lock().commit()
    }

    /// Whether the engine's checkpoint hint has tripped.
    #[must_use]
    pub fn should_checkpoint(&self) -> bool {
        self.inner.lock().should_checkpoint()
    }

    /// Snapshots the given states and compacts the log.
    pub fn checkpoint(&self, states: &[&dyn Durable]) {
        self.inner.lock().checkpoint(states);
    }

    /// Simulates the owning process dying (drops all unsynced work).
    pub fn crash(&self) {
        self.inner.lock().crash();
    }

    /// Recovers the given states from the committed image.
    pub fn recover(&self, states: &mut [&mut dyn Durable]) -> RecoverReport {
        self.inner.lock().recover(states)
    }
}

/// A [`DurableHub`] bound to one namespace: the write handle a
/// component keeps to log its own operations.
#[derive(Clone, Debug)]
pub struct NamespaceHandle {
    hub: DurableHub,
    ns: &'static str,
}

impl NamespaceHandle {
    /// The namespace this handle writes to.
    #[must_use]
    pub fn namespace(&self) -> &'static str {
        self.ns
    }

    /// Buffers one operation payload; returns its sequence number.
    pub fn append(&self, payload: Vec<u8>) -> u64 {
        self.hub.append(self.ns, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct Counter {
        total: u64,
    }

    impl Durable for Counter {
        fn namespace(&self) -> &'static str {
            "test.counter"
        }
        fn snapshot_bytes(&self) -> Vec<u8> {
            pmp_wire::to_bytes(&self.total)
        }
        fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), DurableError> {
            self.total = pmp_wire::from_bytes(bytes)?;
            Ok(())
        }
        fn apply_record(&mut self, payload: &[u8]) -> Result<(), DurableError> {
            let n: u64 = pmp_wire::from_bytes(payload)?;
            self.total += n;
            Ok(())
        }
    }

    #[test]
    fn hub_round_trip_through_a_namespace_handle() {
        let hub = DurableHub::new();
        let handle = hub.namespace("test.counter");
        let mut live = Counter::default();
        for n in [5u64, 7] {
            live.total += n;
            handle.append(pmp_wire::to_bytes(&n));
        }
        assert_eq!(hub.commit(), 2);
        hub.crash();

        let mut restored = Counter::default();
        let report = hub.recover(&mut [&mut restored]);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(restored.total, 12);
        assert_eq!(restored.state_digest(), live.state_digest());
    }

    #[test]
    fn state_digest_tracks_canonical_bytes() {
        let a = Counter { total: 3 };
        let b = Counter { total: 3 };
        let c = Counter { total: 4 };
        assert_eq!(a.state_digest(), b.state_digest());
        assert_ne!(a.state_digest(), c.state_digest());
    }

    #[test]
    fn hub_clones_share_one_engine() {
        let hub = DurableHub::new();
        let clone = hub.clone();
        hub.append("test.counter", pmp_wire::to_bytes(&1u64));
        assert_eq!(clone.commit(), 1);
    }

    // Property tests need the external `proptest` crate; the offline
    // default build gates them behind the (empty) `proptest` feature.
    #[cfg(feature = "proptest")]
    mod props {
        use crate::record::{decode_record, encode_record, FrameError, WalRecord};
        use proptest::prelude::*;

        proptest! {
            /// The satellite property: encode a WAL record, corrupt any
            /// single byte, decode. The decoder never panics; it either
            /// round-trips (impossible here — every flip changes some
            /// bit) or reports an error anchored at the frame start.
            #[test]
            fn prop_corrupt_one_byte_never_panics(
                seq in any::<u64>(),
                ns in "[a-z.]{1,24}",
                payload in proptest::collection::vec(any::<u8>(), 0..128),
                flip_pos in any::<proptest::sample::Index>(),
                flip_bit in 0u8..8,
            ) {
                let rec = WalRecord { seq, ns, payload };
                let mut buf = Vec::new();
                encode_record(&rec, &mut buf);
                let i = flip_pos.index(buf.len());
                buf[i] ^= 1 << flip_bit;

                match decode_record(&buf, 0) {
                    Ok(Some((back, next))) => {
                        // Only reachable if the flip cancelled out —
                        // it cannot, but stay honest about the contract.
                        prop_assert_eq!(back, rec);
                        prop_assert_eq!(next, buf.len());
                    }
                    Ok(None) => prop_assert!(false, "non-empty input decoded as end"),
                    Err(err) => {
                        prop_assert_eq!(err.offset(), 0, "error must carry the frame offset");
                        prop_assert!(
                            !matches!(err, FrameError::Malformed { .. }),
                            "checksum must catch the flip before the wire decoder: {}", err
                        );
                    }
                }
            }

            /// Un-corrupted frames always round-trip.
            #[test]
            fn prop_clean_records_roundtrip(
                seq in any::<u64>(),
                ns in "[a-z.]{1,24}",
                payload in proptest::collection::vec(any::<u8>(), 0..128),
            ) {
                let rec = WalRecord { seq, ns, payload };
                let mut buf = Vec::new();
                encode_record(&rec, &mut buf);
                let (back, next) = decode_record(&buf, 0).unwrap().unwrap();
                prop_assert_eq!(back, rec);
                prop_assert_eq!(next, buf.len());
            }

            /// Arbitrary garbage never panics the frame decoder.
            #[test]
            fn prop_decoding_random_bytes_never_panics(
                b in proptest::collection::vec(any::<u8>(), 0..256),
            ) {
                let _ = decode_record(&b, 0);
            }

            /// Truncating a valid frame anywhere yields Torn at offset 0
            /// (or a length complaint if the prefix itself is cut).
            #[test]
            fn prop_truncation_reports_torn(
                seq in any::<u64>(),
                payload in proptest::collection::vec(any::<u8>(), 0..64),
                cut in any::<proptest::sample::Index>(),
            ) {
                let rec = WalRecord { seq, ns: "ns".into(), payload };
                let mut buf = Vec::new();
                encode_record(&rec, &mut buf);
                let keep = cut.index(buf.len()); // strictly less than full
                buf.truncate(keep);
                if keep == 0 {
                    prop_assert_eq!(decode_record(&buf, 0), Ok(None));
                } else {
                    let err = decode_record(&buf, 0).unwrap_err();
                    prop_assert!(err.is_torn() || matches!(err, FrameError::BadLength { .. }));
                    prop_assert_eq!(err.offset(), 0);
                }
            }
        }
    }
}
