//! The VM heap: objects, arrays, and byte buffers.
//!
//! Entries live for the lifetime of the VM (arena semantics, no GC) —
//! the platform's workloads are bounded, and determinism matters more
//! than reclamation here.

use crate::error::{exception_class, VmError};
use crate::hooks::ClassId;
use crate::value::{ObjId, Value};

/// One allocated heap entry.
#[derive(Debug, Clone, PartialEq)]
pub enum HeapEntry {
    /// A class instance with field slots.
    Object {
        /// Runtime class.
        class: ClassId,
        /// Field values, indexed by slot.
        fields: Vec<Value>,
    },
    /// An array of values.
    Array(Vec<Value>),
    /// A mutable byte buffer (the paper's `byte[]`).
    Buffer(Vec<u8>),
}

/// The heap.
#[derive(Debug, Default)]
pub struct Heap {
    entries: Vec<HeapEntry>,
}

fn oob(index: i64, len: usize) -> VmError {
    VmError::exception(
        exception_class::INDEX_OUT_OF_BOUNDS,
        format!("index {index} out of bounds for length {len}"),
    )
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn alloc(&mut self, entry: HeapEntry) -> ObjId {
        self.entries.push(entry);
        ObjId((self.entries.len() - 1) as u32)
    }

    /// Allocates an object with `fields` initial slot values.
    pub fn alloc_object(&mut self, class: ClassId, fields: Vec<Value>) -> ObjId {
        self.alloc(HeapEntry::Object { class, fields })
    }

    /// Allocates an array of `len` nulls.
    pub fn alloc_array(&mut self, len: usize) -> ObjId {
        self.alloc(HeapEntry::Array(vec![Value::Null; len]))
    }

    /// Allocates an array from existing values.
    pub fn alloc_array_from(&mut self, values: Vec<Value>) -> ObjId {
        self.alloc(HeapEntry::Array(values))
    }

    /// Allocates a zeroed byte buffer of `len`.
    pub fn alloc_buffer(&mut self, len: usize) -> ObjId {
        self.alloc(HeapEntry::Buffer(vec![0; len]))
    }

    /// Allocates a buffer from existing bytes.
    pub fn alloc_buffer_from(&mut self, bytes: Vec<u8>) -> ObjId {
        self.alloc(HeapEntry::Buffer(bytes))
    }

    /// Borrows an entry.
    ///
    /// # Errors
    ///
    /// `NullPointerException` if the id is stale/invalid.
    pub fn get(&self, id: ObjId) -> Result<&HeapEntry, VmError> {
        self.entries.get(id.0 as usize).ok_or_else(|| {
            VmError::exception(exception_class::NULL_POINTER, format!("dangling ref {id}"))
        })
    }

    /// Mutably borrows an entry.
    ///
    /// # Errors
    ///
    /// `NullPointerException` if the id is stale/invalid.
    pub fn get_mut(&mut self, id: ObjId) -> Result<&mut HeapEntry, VmError> {
        self.entries.get_mut(id.0 as usize).ok_or_else(|| {
            VmError::exception(exception_class::NULL_POINTER, format!("dangling ref {id}"))
        })
    }

    /// The runtime class of an object entry.
    ///
    /// # Errors
    ///
    /// `TypeError` if the entry is not an object.
    pub fn object_class(&self, id: ObjId) -> Result<ClassId, VmError> {
        match self.get(id)? {
            HeapEntry::Object { class, .. } => Ok(*class),
            other => Err(VmError::exception(
                exception_class::TYPE,
                format!("expected object, found {}", entry_kind(other)),
            )),
        }
    }

    /// Reads an object field slot.
    ///
    /// # Errors
    ///
    /// `TypeError` for non-objects, `IndexOutOfBoundsException` for bad
    /// slots.
    pub fn field(&self, id: ObjId, slot: u16) -> Result<Value, VmError> {
        match self.get(id)? {
            HeapEntry::Object { fields, .. } => fields
                .get(slot as usize)
                .cloned()
                .ok_or_else(|| oob(i64::from(slot), fields.len())),
            other => Err(VmError::exception(
                exception_class::TYPE,
                format!("field access on {}", entry_kind(other)),
            )),
        }
    }

    /// Writes an object field slot.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Heap::field`].
    pub fn set_field(&mut self, id: ObjId, slot: u16, value: Value) -> Result<(), VmError> {
        match self.get_mut(id)? {
            HeapEntry::Object { fields, .. } => {
                let len = fields.len();
                let cell = fields
                    .get_mut(slot as usize)
                    .ok_or_else(|| oob(i64::from(slot), len))?;
                *cell = value;
                Ok(())
            }
            other => Err(VmError::exception(
                exception_class::TYPE,
                format!("field write on {}", entry_kind(other)),
            )),
        }
    }

    /// Reads an array element.
    ///
    /// # Errors
    ///
    /// `TypeError` for non-arrays, `IndexOutOfBoundsException` for bad or
    /// negative indices.
    pub fn array_get(&self, id: ObjId, index: i64) -> Result<Value, VmError> {
        match self.get(id)? {
            HeapEntry::Array(v) => {
                let len = v.len();
                usize::try_from(index)
                    .ok()
                    .and_then(|i| v.get(i).cloned())
                    .ok_or_else(|| oob(index, len))
            }
            other => Err(VmError::exception(
                exception_class::TYPE,
                format!("array read on {}", entry_kind(other)),
            )),
        }
    }

    /// Writes an array element.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Heap::array_get`].
    pub fn array_set(&mut self, id: ObjId, index: i64, value: Value) -> Result<(), VmError> {
        match self.get_mut(id)? {
            HeapEntry::Array(v) => {
                let len = v.len();
                let cell = usize::try_from(index)
                    .ok()
                    .and_then(|i| v.get_mut(i))
                    .ok_or_else(|| oob(index, len))?;
                *cell = value;
                Ok(())
            }
            other => Err(VmError::exception(
                exception_class::TYPE,
                format!("array write on {}", entry_kind(other)),
            )),
        }
    }

    /// Length of an array entry.
    ///
    /// # Errors
    ///
    /// `TypeError` for non-arrays.
    pub fn array_len(&self, id: ObjId) -> Result<usize, VmError> {
        match self.get(id)? {
            HeapEntry::Array(v) => Ok(v.len()),
            other => Err(VmError::exception(
                exception_class::TYPE,
                format!("array length on {}", entry_kind(other)),
            )),
        }
    }

    /// Reads a buffer byte.
    ///
    /// # Errors
    ///
    /// `TypeError` for non-buffers, `IndexOutOfBoundsException` for bad
    /// indices.
    pub fn buffer_get(&self, id: ObjId, index: i64) -> Result<u8, VmError> {
        match self.get(id)? {
            HeapEntry::Buffer(v) => {
                let len = v.len();
                usize::try_from(index)
                    .ok()
                    .and_then(|i| v.get(i).copied())
                    .ok_or_else(|| oob(index, len))
            }
            other => Err(VmError::exception(
                exception_class::TYPE,
                format!("buffer read on {}", entry_kind(other)),
            )),
        }
    }

    /// Writes a buffer byte (truncating the int operand).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Heap::buffer_get`].
    pub fn buffer_set(&mut self, id: ObjId, index: i64, byte: i64) -> Result<(), VmError> {
        match self.get_mut(id)? {
            HeapEntry::Buffer(v) => {
                let len = v.len();
                let cell = usize::try_from(index)
                    .ok()
                    .and_then(|i| v.get_mut(i))
                    .ok_or_else(|| oob(index, len))?;
                *cell = byte as u8;
                Ok(())
            }
            other => Err(VmError::exception(
                exception_class::TYPE,
                format!("buffer write on {}", entry_kind(other)),
            )),
        }
    }

    /// Length of a buffer entry.
    ///
    /// # Errors
    ///
    /// `TypeError` for non-buffers.
    pub fn buffer_len(&self, id: ObjId) -> Result<usize, VmError> {
        match self.get(id)? {
            HeapEntry::Buffer(v) => Ok(v.len()),
            other => Err(VmError::exception(
                exception_class::TYPE,
                format!("buffer length on {}", entry_kind(other)),
            )),
        }
    }

    /// Borrows a buffer's bytes.
    ///
    /// # Errors
    ///
    /// `TypeError` for non-buffers.
    pub fn buffer_bytes(&self, id: ObjId) -> Result<&[u8], VmError> {
        match self.get(id)? {
            HeapEntry::Buffer(v) => Ok(v),
            other => Err(VmError::exception(
                exception_class::TYPE,
                format!("buffer access on {}", entry_kind(other)),
            )),
        }
    }

    /// Mutably borrows a buffer's bytes.
    ///
    /// # Errors
    ///
    /// `TypeError` for non-buffers.
    pub fn buffer_bytes_mut(&mut self, id: ObjId) -> Result<&mut Vec<u8>, VmError> {
        match self.get_mut(id)? {
            HeapEntry::Buffer(v) => Ok(v),
            other => Err(VmError::exception(
                exception_class::TYPE,
                format!("buffer access on {}", entry_kind(other)),
            )),
        }
    }
}

fn entry_kind(e: &HeapEntry) -> &'static str {
    match e {
        HeapEntry::Object { .. } => "object",
        HeapEntry::Array(_) => "array",
        HeapEntry::Buffer(_) => "buffer",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_field_roundtrip() {
        let mut h = Heap::new();
        let id = h.alloc_object(ClassId(0), vec![Value::Int(1), Value::Null]);
        assert_eq!(h.field(id, 0).unwrap(), Value::Int(1));
        h.set_field(id, 1, Value::str("x")).unwrap();
        assert_eq!(h.field(id, 1).unwrap(), Value::str("x"));
        assert!(h.field(id, 9).is_err());
    }

    #[test]
    fn array_roundtrip_and_bounds() {
        let mut h = Heap::new();
        let id = h.alloc_array(3);
        assert_eq!(h.array_len(id).unwrap(), 3);
        h.array_set(id, 2, Value::Int(9)).unwrap();
        assert_eq!(h.array_get(id, 2).unwrap(), Value::Int(9));
        assert!(h.array_get(id, 3).is_err());
        assert!(h.array_get(id, -1).is_err());
    }

    #[test]
    fn buffer_roundtrip() {
        let mut h = Heap::new();
        let id = h.alloc_buffer_from(vec![1, 2, 3]);
        assert_eq!(h.buffer_len(id).unwrap(), 3);
        h.buffer_set(id, 0, 0x1ff).unwrap(); // truncates
        assert_eq!(h.buffer_get(id, 0).unwrap(), 0xff);
        assert_eq!(h.buffer_bytes(id).unwrap(), &[0xff, 2, 3]);
    }

    #[test]
    fn kind_mismatches_are_type_errors() {
        let mut h = Heap::new();
        let arr = h.alloc_array(1);
        let buf = h.alloc_buffer(1);
        assert!(h.field(arr, 0).is_err());
        assert!(h.array_get(buf, 0).is_err());
        assert!(h.buffer_get(arr, 0).is_err());
        assert!(h.object_class(arr).is_err());
    }

    #[test]
    fn dangling_ref_is_npe() {
        let h = Heap::new();
        let err = h.get(ObjId(99)).unwrap_err();
        assert_eq!(
            err.as_exception().unwrap().class.as_ref(),
            exception_class::NULL_POINTER
        );
    }
}
