//! Receiver-side security policy: which signers are trusted and how
//! many permissions each may grant its extensions.

use pmp_crypto::TrustStore;
use pmp_vm::perm::Permissions;
use std::collections::HashMap;

/// A receiver's policy: trust store plus per-signer permission caps.
/// The effective permissions of an installed extension are
/// `requested ∩ cap(signer)`.
#[derive(Debug, Clone, Default)]
pub struct ReceiverPolicy {
    /// Who may sign extensions for this node.
    pub trust: TrustStore,
    default_cap: Permissions,
    per_signer: HashMap<String, Permissions>,
}

impl ReceiverPolicy {
    /// A policy trusting no one, granting nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the cap applied to signers without an explicit entry.
    pub fn set_default_cap(&mut self, cap: Permissions) {
        self.default_cap = cap;
    }

    /// Sets the cap for one signer.
    pub fn set_signer_cap(&mut self, signer: impl Into<String>, cap: Permissions) {
        self.per_signer.insert(signer.into(), cap);
    }

    /// The cap for `signer`.
    pub fn cap_for(&self, signer: &str) -> Permissions {
        self.per_signer
            .get(signer)
            .copied()
            .unwrap_or(self.default_cap)
    }

    /// Effective permissions for a package: requested ∩ cap.
    pub fn effective(&self, signer: &str, requested: &[String]) -> Permissions {
        let requested = Permissions::from_names(requested.iter().map(String::as_str));
        requested.intersect(self.cap_for(signer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_vm::perm::Permission;

    #[test]
    fn caps_apply_per_signer() {
        let mut p = ReceiverPolicy::new();
        p.set_default_cap(Permissions::none().with(Permission::Print));
        p.set_signer_cap(
            "hall-a",
            Permissions::none().with(Permission::Net).with(Permission::Store),
        );

        // Known signer: capped to its entry.
        let eff = p.effective("hall-a", &["net".into(), "device".into()]);
        assert!(eff.allows(Permission::Net));
        assert!(!eff.allows(Permission::Device));

        // Unknown signer: default cap.
        let eff = p.effective("other", &["net".into(), "print".into()]);
        assert!(!eff.allows(Permission::Net));
        assert!(eff.allows(Permission::Print));
    }

    #[test]
    fn empty_policy_grants_nothing() {
        let p = ReceiverPolicy::new();
        let eff = p.effective("anyone", &["print".into(), "net".into()]);
        assert_eq!(eff, Permissions::none());
    }
}
