//! E5 — Fig. 2c: the cost of a remote-service call before vs after the
//! node is fully adapted (session extraction + access control +
//! monitoring interpose on every call).

use criterion::{criterion_group, criterion_main, Criterion};
use pmp_bench::{adapted_call, adapted_robot};

fn bench_adapted_call(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptation_e2e");
    let (mut plain, plain_robot) = adapted_robot(false);
    group.bench_function("unadapted-call", |b| {
        b.iter(|| adapted_call(&mut plain, plain_robot, 3, 3));
    });
    let (mut full, full_robot) = adapted_robot(true);
    group.bench_function("fully-adapted-call", |b| {
        b.iter(|| adapted_call(&mut full, full_robot, 3, 3));
    });
    group.finish();
}

criterion_group!(benches, bench_adapted_call);
criterion_main!(benches);
