//! Explicit control-flow graph over a portable bytecode body.
//!
//! The admission verifier (pass 1) only needs per-pc stack depths, but
//! the weave-time optimizer reasons about *regions*: constant
//! propagation rewrites within basic blocks, branch folding kills whole
//! blocks, and dead-code elimination walks block reachability. This
//! module builds that region structure once so every `opt` pass shares
//! the same notion of leaders, blocks, and successors.

use pmp_vm::op::{BytecodeBody, Op};
use std::collections::BTreeSet;

/// A basic block: the half-open pc range `[start, end)`. The op at
/// `end - 1` is the block's terminator (or an ordinary op whose
/// successor is simply the next leader).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First pc of the block (a leader).
    pub start: usize,
    /// One past the last pc of the block.
    pub end: usize,
}

/// The control-flow graph of one method body.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in pc order.
    pub blocks: Vec<Block>,
    /// `block_of[pc]` — index into `blocks` of the block containing pc.
    pub block_of: Vec<usize>,
}

/// Where control can go after the op at `pc`.
pub fn successors(op: &Op, pc: usize) -> Vec<usize> {
    match op {
        Op::Jump(t) => vec![*t as usize],
        Op::JumpIf(t) | Op::JumpIfNot(t) => vec![*t as usize, pc + 1],
        Op::Ret | Op::RetVal | Op::Throw(_) => vec![],
        _ => vec![pc + 1],
    }
}

impl Cfg {
    /// Builds the CFG of `body`. Leaders: pc 0, every jump target,
    /// every pc following a jump/branch/exit, and every handler entry.
    pub fn build(body: &BytecodeBody) -> Cfg {
        let len = body.ops.len();
        let mut leaders: BTreeSet<usize> = BTreeSet::new();
        leaders.insert(0);
        for (pc, op) in body.ops.iter().enumerate() {
            match op {
                Op::Jump(t) => {
                    leaders.insert(*t as usize);
                    leaders.insert(pc + 1);
                }
                Op::JumpIf(t) | Op::JumpIfNot(t) => {
                    leaders.insert(*t as usize);
                    leaders.insert(pc + 1);
                }
                Op::Ret | Op::RetVal | Op::Throw(_) => {
                    leaders.insert(pc + 1);
                }
                _ => {}
            }
        }
        for h in &body.handlers {
            leaders.insert(h.target as usize);
        }
        leaders.retain(|&l| l < len);

        let bounds: Vec<usize> = leaders.iter().copied().chain(std::iter::once(len)).collect();
        let mut blocks = Vec::with_capacity(bounds.len().saturating_sub(1));
        for w in bounds.windows(2) {
            blocks.push(Block {
                start: w[0],
                end: w[1],
            });
        }
        let mut block_of = vec![0usize; len];
        for (i, b) in blocks.iter().enumerate() {
            block_of[b.start..b.end].fill(i);
        }
        Cfg { blocks, block_of }
    }
}

/// Op-level reachability from pc 0 plus every *live* exception
/// handler's entry — a handler is live iff some reachable pc lies in
/// its guarded range, so the set is computed to a fixpoint (a handler
/// body can itself sit inside another handler's range).
pub fn reachable_ops(body: &BytecodeBody) -> Vec<bool> {
    let len = body.ops.len();
    let mut reach = vec![false; len];
    let mut work = vec![0usize];
    loop {
        while let Some(pc) = work.pop() {
            if pc >= len || reach[pc] {
                continue;
            }
            reach[pc] = true;
            for s in successors(&body.ops[pc], pc) {
                work.push(s);
            }
        }
        // Arm handlers whose range now contains reachable code.
        let mut grew = false;
        for h in &body.handlers {
            let t = h.target as usize;
            if t < len
                && !reach[t]
                && (h.start as usize..h.end as usize).any(|pc| pc < len && reach[pc])
            {
                work.push(t);
                grew = true;
            }
        }
        if !grew {
            return reach;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_vm::op::{Const, HandlerDef};

    fn body(ops: Vec<Op>) -> BytecodeBody {
        BytecodeBody {
            extra_locals: 0,
            ops,
            handlers: vec![],
        }
    }

    #[test]
    fn straight_line_is_one_block() {
        let b = body(vec![Op::Const(Const::Int(1)), Op::Pop, Op::Ret]);
        let cfg = Cfg::build(&b);
        assert_eq!(cfg.blocks, vec![Block { start: 0, end: 3 }]);
    }

    #[test]
    fn branch_splits_blocks_at_target_and_fallthrough() {
        let b = body(vec![
            Op::Const(Const::Bool(true)), // 0
            Op::JumpIf(4),                // 1
            Op::Nop,                      // 2
            Op::Ret,                      // 3
            Op::Ret,                      // 4
        ]);
        let cfg = Cfg::build(&b);
        assert_eq!(
            cfg.blocks,
            vec![
                Block { start: 0, end: 2 },
                Block { start: 2, end: 4 },
                Block { start: 4, end: 5 },
            ]
        );
        assert_eq!(cfg.block_of[3], 1);
    }

    #[test]
    fn unreachable_ops_are_detected() {
        let b = body(vec![Op::Ret, Op::Nop, Op::Ret]);
        let reach = reachable_ops(&b);
        assert_eq!(reach, vec![true, false, false]);
    }

    #[test]
    fn handler_target_is_reachable_when_range_is() {
        let b = BytecodeBody {
            extra_locals: 0,
            ops: vec![
                Op::Const(Const::Str("boom".into())), // 0
                Op::Throw("E".into()),                // 1
                Op::Pop,                              // 2: handler
                Op::Ret,                              // 3
            ],
            handlers: vec![HandlerDef {
                start: 0,
                end: 2,
                class: "*".into(),
                target: 2,
            }],
        };
        let reach = reachable_ops(&b);
        assert_eq!(reach, vec![true, true, true, true]);
    }

    #[test]
    fn dead_handler_keeps_its_body_dead() {
        let b = BytecodeBody {
            extra_locals: 0,
            ops: vec![
                Op::Ret,               // 0
                Op::Const(Const::Null), // 1: guarded but unreachable
                Op::Ret,               // 2
                Op::Pop,               // 3: handler of dead range
                Op::Ret,               // 4
            ],
            handlers: vec![HandlerDef {
                start: 1,
                end: 3,
                class: "*".into(),
                target: 3,
            }],
        };
        let reach = reachable_ops(&b);
        assert_eq!(reach, vec![true, false, false, false, false]);
    }
}
