//! Class-hierarchy-analysis devirtualisation.
//!
//! Shipped advice classes are *leaf* classes: [`pmp_prose::PortableClass`]
//! has no superclass field, so the hierarchy below the shipped class is
//! closed by construction. When the abstract lattice proves a `CallV`
//! receiver is [`AbsVal::SelfRef`] — the aspect instance itself — the
//! dynamic dispatch can only ever resolve on the shipped class, and the
//! call is rewritten to [`Op::CallDirect`], which the JIT resolves to a
//! direct method id with no run-time class lookup.
//!
//! The rewrite is gated on a *matching sibling*: the named method must
//! exist on the class with the call's exact arity, otherwise the
//! admission verifier's `CallDirect` arity check (and the JIT's link
//! step) would reject the optimized body that plain `CallV` would have
//! accepted — dispatch errors must stay run-time errors.

use crate::lattice::{analyze_method, AbsVal};
use pmp_prose::PortableClass;
use pmp_vm::op::Op;

/// Rewrites provably-monomorphic `CallV` ops in `class.methods[midx]`
/// to `CallDirect`. Returns the number of call sites devirtualised.
pub fn devirtualize(class: &mut PortableClass, midx: usize) -> usize {
    let params = class.methods[midx].params.len();
    let Some(states) = analyze_method(&class.methods[midx].body, params) else {
        return 0;
    };

    let class_name = class.name.clone();
    let siblings: Vec<(String, usize)> = class
        .methods
        .iter()
        .map(|m| (m.name.clone(), m.params.len()))
        .collect();

    let body = &mut class.methods[midx].body;
    let mut rewritten = 0;
    for (pc, state) in states.iter().enumerate() {
        let Op::CallV { method, argc } = &body.ops[pc] else {
            continue;
        };
        let Some(state) = state.as_ref() else {
            continue; // unreachable — DCE will take it
        };
        // Receiver sits below the arguments: stack[len - 1 - argc].
        let ridx = match state.stack.len().checked_sub(*argc as usize + 1) {
            Some(i) => i,
            None => continue,
        };
        if state.stack[ridx] != AbsVal::SelfRef {
            continue;
        }
        if !siblings
            .iter()
            .any(|(n, p)| n == method && *p == *argc as usize)
        {
            continue;
        }
        body.ops[pc] = Op::CallDirect {
            class: class_name.clone(),
            method: method.clone(),
            argc: *argc,
        };
        rewritten += 1;
    }
    rewritten
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_prose::PortableMethod;
    use pmp_vm::op::{BytecodeBody, Const};

    fn method(name: &str, nparams: usize, ops: Vec<Op>) -> PortableMethod {
        PortableMethod {
            name: name.into(),
            params: vec!["any".into(); nparams],
            ret: "any".into(),
            body: BytecodeBody {
                extra_locals: 0,
                ops,
                handlers: vec![],
            },
        }
    }

    fn class(methods: Vec<PortableMethod>) -> PortableClass {
        PortableClass {
            name: "A".into(),
            fields: vec![],
            methods,
        }
    }

    #[test]
    fn self_call_is_devirtualised() {
        let mut c = class(vec![
            method(
                "onCall",
                0,
                vec![
                    Op::Load(0),
                    Op::Const(Const::Int(1)),
                    Op::CallV {
                        method: "helper".into(),
                        argc: 1,
                    },
                    Op::RetVal,
                ],
            ),
            method("helper", 1, vec![Op::Load(1), Op::RetVal]),
        ]);
        assert_eq!(devirtualize(&mut c, 0), 1);
        assert_eq!(
            c.methods[0].body.ops[2],
            Op::CallDirect {
                class: "A".into(),
                method: "helper".into(),
                argc: 1,
            }
        );
    }

    #[test]
    fn unknown_receiver_stays_virtual() {
        // Receiver is a parameter, not `this` — could be any class.
        let mut c = class(vec![
            method(
                "onCall",
                1,
                vec![
                    Op::Load(1),
                    Op::CallV {
                        method: "poke".into(),
                        argc: 0,
                    },
                    Op::RetVal,
                ],
            ),
            method("poke", 0, vec![Op::Ret]),
        ]);
        assert_eq!(devirtualize(&mut c, 0), 0);
        assert!(matches!(c.methods[0].body.ops[1], Op::CallV { .. }));
    }

    #[test]
    fn arity_mismatch_stays_virtual() {
        let mut c = class(vec![
            method(
                "onCall",
                0,
                vec![
                    Op::Load(0),
                    Op::CallV {
                        method: "helper".into(),
                        argc: 0, // helper takes 1
                    },
                    Op::RetVal,
                ],
            ),
            method("helper", 1, vec![Op::Load(1), Op::RetVal]),
        ]);
        assert_eq!(devirtualize(&mut c, 0), 0);
    }

    #[test]
    fn missing_sibling_stays_virtual() {
        let mut c = class(vec![method(
            "onCall",
            0,
            vec![
                Op::Load(0),
                Op::CallV {
                    method: "ghost".into(),
                    argc: 0,
                },
                Op::RetVal,
            ],
        )]);
        assert_eq!(devirtualize(&mut c, 0), 0);
    }
}
