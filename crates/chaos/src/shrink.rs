//! Delta-debugging shrinker for failing scenarios.
//!
//! Classic ddmin over the step list (Zeller's algorithm: try dropping
//! chunks at coarse granularity, refine on failure to make progress),
//! followed by a catalog-minimization pass that tries deleting catalog
//! lines one at a time. Step totality (see [`crate::exec`]) guarantees
//! every candidate is a valid scenario, so the predicate is the only
//! arbiter.
//!
//! The predicate is caller-supplied: callers should pin it to the
//! *original* failure (same invariant id) so the shrinker cannot
//! slide onto a different bug mid-minimization.

use crate::script::Scenario;

/// Shrink accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Predicate evaluations spent.
    pub evals: u64,
    /// Steps in the original scenario.
    pub from_steps: usize,
    /// Steps in the minimized scenario.
    pub to_steps: usize,
}

/// Minimizes `sc` while `fails` keeps returning true, spending at most
/// `max_evals` predicate calls. Returns the smallest failing scenario
/// found and the spend. `sc` itself must fail the predicate — callers
/// check that before shrinking.
pub fn shrink(
    sc: &Scenario,
    fails: &mut dyn FnMut(&Scenario) -> bool,
    max_evals: u64,
) -> (Scenario, ShrinkStats) {
    let mut best = sc.clone();
    let mut stats = ShrinkStats {
        evals: 0,
        from_steps: sc.steps.len(),
        to_steps: sc.steps.len(),
    };

    ddmin_steps(&mut best, fails, max_evals, &mut stats);
    minimize_catalogs(&mut best, fails, max_evals, &mut stats);
    // Step deletion can unlock further catalog deletions and vice
    // versa; one more steps pass is cheap on the now-small script.
    ddmin_steps(&mut best, fails, max_evals, &mut stats);

    stats.to_steps = best.steps.len();
    (best, stats)
}

fn ddmin_steps(
    best: &mut Scenario,
    fails: &mut dyn FnMut(&Scenario) -> bool,
    max_evals: u64,
    stats: &mut ShrinkStats,
) {
    let mut granularity = 2usize;
    while best.steps.len() > 1 && granularity <= best.steps.len() {
        let chunk = best.steps.len().div_ceil(granularity);
        let mut progressed = false;
        let mut start = 0;
        while start < best.steps.len() {
            if stats.evals >= max_evals {
                return;
            }
            let end = (start + chunk).min(best.steps.len());
            let mut candidate = best.clone();
            candidate.steps.drain(start..end);
            stats.evals += 1;
            if fails(&candidate) {
                *best = candidate;
                progressed = true;
                // Same start index now points at the next chunk.
            } else {
                start = end;
            }
        }
        if progressed {
            granularity = 2;
        } else {
            granularity *= 2;
        }
    }
    // Final singles pass (granularity == len is approximated above;
    // this catches stragglers when len is small).
    let mut i = 0;
    while i < best.steps.len() {
        if stats.evals >= max_evals {
            return;
        }
        let mut candidate = best.clone();
        candidate.steps.remove(i);
        stats.evals += 1;
        if fails(&candidate) {
            *best = candidate;
        } else {
            i += 1;
        }
    }
}

fn minimize_catalogs(
    best: &mut Scenario,
    fails: &mut dyn FnMut(&Scenario) -> bool,
    max_evals: u64,
    stats: &mut ShrinkStats,
) {
    for hall in 0..best.topology.catalogs.len() {
        let mut i = 0;
        while i < best.topology.catalogs[hall].len() {
            if stats.evals >= max_evals {
                return;
            }
            let mut candidate = best.clone();
            candidate.topology.catalogs[hall].remove(i);
            stats.evals += 1;
            if fails(&candidate) {
                *best = candidate;
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use crate::script::Op;

    /// A synthetic predicate: "fails" iff the script still contains a
    /// CrashBase for base 0 AND a Partition op. ddmin must reduce to
    /// exactly those two steps.
    #[test]
    fn ddmin_reduces_to_the_failure_kernel() {
        let sc = generate(11, &GenConfig::default());
        let has_kernel = |s: &Scenario| {
            let crash = s
                .steps
                .iter()
                .any(|st| matches!(st.op, Op::CrashBase { base: 0 }));
            let part = s
                .steps
                .iter()
                .any(|st| matches!(st.op, Op::Partition { .. }));
            crash && part
        };
        // Make sure the generated script actually has the kernel; if
        // not, plant it.
        let mut sc = sc;
        if !has_kernel(&sc) {
            sc.steps.push(crate::script::Step {
                at_ms: 100,
                op: Op::CrashBase { base: 0 },
            });
            sc.steps.push(crate::script::Step {
                at_ms: 200,
                op: Op::Partition { node: 0, base: 0 },
            });
        }
        let mut pred = |s: &Scenario| has_kernel(s);
        let (min, stats) = shrink(&sc, &mut pred, 10_000);
        assert_eq!(min.steps.len(), 2, "kernel is two steps: {:?}", min.steps);
        assert!(has_kernel(&min));
        assert!(stats.evals > 0);
        assert_eq!(stats.from_steps, sc.steps.len());
        assert_eq!(stats.to_steps, 2);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let sc = generate(12, &GenConfig::default());
        let mut pred1 = |s: &Scenario| s.steps.len() >= 3;
        let mut pred2 = |s: &Scenario| s.steps.len() >= 3;
        let (a, _) = shrink(&sc, &mut pred1, 10_000);
        let (b, _) = shrink(&sc, &mut pred2, 10_000);
        assert_eq!(a, b);
        assert_eq!(a.steps.len(), 3);
    }

    #[test]
    fn eval_budget_is_respected() {
        let sc = generate(13, &GenConfig::default());
        let mut evals = 0u64;
        let mut pred = |_: &Scenario| {
            evals += 1;
            true
        };
        let (_, stats) = shrink(&sc, &mut pred, 5);
        assert!(stats.evals <= 7, "close to the budget, got {}", stats.evals);
    }
}
