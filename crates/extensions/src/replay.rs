//! The simulation/replay application (paper §4.5): "if an accident or
//! failure occurs, one can replay a part of the sequence of movements
//! to see if the failure can be reproduced" — driving a robot's motor
//! proxies from the base station's movement store, preserving relative
//! time.

use pmp_store::{MovementRecord, MovementStore};
use pmp_vm::prelude::{Value, Vm, VmError};
use std::collections::HashMap;

/// One step of a replay plan: wait `delay_ns` (relative to the previous
/// step), then apply the record.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayStep {
    /// Delay since the previous step (ns).
    pub delay_ns: u64,
    /// The movement to re-issue.
    pub record: MovementRecord,
}

/// Builds a replay plan for `robot` from the store, preserving relative
/// time between commands.
pub fn plan(store: &MovementStore, robot: &str) -> Vec<ReplayStep> {
    store
        .replay(robot)
        .into_iter()
        .map(|(delay_ns, record)| ReplayStep { delay_ns, record })
        .collect()
}

/// Applies a replay plan immediately (ignoring delays) onto motor
/// proxies; returns the number of commands applied. For time-faithful
/// replay, the caller schedules each step `delay_ns` apart on the
/// simulator and calls [`apply_step`] per step.
///
/// # Errors
///
/// Any [`VmError`] from the motor proxies.
pub fn apply_plan(
    vm: &mut Vm,
    motors: &HashMap<String, Value>,
    steps: &[ReplayStep],
) -> Result<usize, VmError> {
    let mut applied = 0;
    for step in steps {
        if apply_step(vm, motors, step)? {
            applied += 1;
        }
    }
    Ok(applied)
}

/// Applies a single step; returns whether the device existed.
///
/// # Errors
///
/// Any [`VmError`] from the motor proxies.
pub fn apply_step(
    vm: &mut Vm,
    motors: &HashMap<String, Value>,
    step: &ReplayStep,
) -> Result<bool, VmError> {
    let Some(motor) = motors.get(&step.record.device) else {
        return Ok(false);
    };
    match step.record.command.as_str() {
        "Motor.rotate" | "rotate" => {
            let deg = step.record.args.first().copied().unwrap_or(0);
            vm.call("Motor", "rotate", motor.clone(), vec![Value::Int(deg)])?;
        }
        "Motor.setPower" | "setPower" => {
            let p = step.record.args.first().copied().unwrap_or(7);
            vm.call("Motor", "setPower", motor.clone(), vec![Value::Int(p)])?;
        }
        "Motor.stop" | "stop" => {
            vm.call("Motor", "stop", motor.clone(), vec![])?;
        }
        _ => return Ok(false),
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_robot::{new_handle, register_robot_classes, spawn_motor, Port};
    use pmp_vm::prelude::*;

    fn record(device: &str, arg: i64, at: u64) -> MovementRecord {
        MovementRecord {
            robot: "robot:1:1".into(),
            device: device.into(),
            command: "Motor.rotate".into(),
            args: vec![arg],
            issued_at: at,
            duration_ns: 10,
        }
    }

    #[test]
    fn plan_preserves_relative_time() {
        let mut store = MovementStore::new();
        store.append(record("motor:A", 10, 100));
        store.append(record("motor:B", 5, 400));
        let plan = plan(&store, "robot:1:1");
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].delay_ns, 0);
        assert_eq!(plan[1].delay_ns, 300);
    }

    #[test]
    fn applying_a_plan_reproduces_the_drawing_state() {
        let mut store = MovementStore::new();
        store.append(record("motor:C", 90, 0)); // pen down
        store.append(record("motor:A", 10, 10));
        store.append(record("motor:B", 5, 20));

        let mut vm = Vm::new(VmConfig::default());
        let handle = new_handle();
        register_robot_classes(&mut vm, &handle).unwrap();
        let mut motors = HashMap::new();
        for port in Port::MOTORS {
            motors.insert(format!("motor:{port}"), spawn_motor(&mut vm, port).unwrap());
        }
        let steps = plan(&store, "robot:1:1");
        let applied = apply_plan(&mut vm, &motors, &steps).unwrap();
        assert_eq!(applied, 3);
        assert_eq!(handle.lock().position(), (10, 5));
        assert_eq!(handle.lock().canvas().len(), 2, "replay redrew the strokes");
    }

    #[test]
    fn unknown_robot_plans_empty() {
        let store = MovementStore::new();
        assert!(plan(&store, "ghost").is_empty());
    }
}
