//! Delivery statistics and an optional event log.
//!
//! [`NetStats`] remains the legacy zero-cost counter struct; when a
//! [`pmp_telemetry::Shared`] registry is attached every bump is
//! mirrored into named counters (`net.sim.*`, plus per-channel
//! `net.channel.<name>.bytes`) and each delivery is re-exported as a
//! `net.deliver` journal event, so the simulator's numbers read back
//! through the same pipeline as every other layer's.

use crate::clock::SimTime;
use crate::node::NodeId;
use pmp_telemetry::{CounterId, Shared, Subsystem};
use std::collections::HashMap;

/// Aggregate counters over a simulation run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Unicast messages submitted.
    pub sent: u64,
    /// Message copies delivered into inboxes.
    pub delivered: u64,
    /// Copies dropped because sender/receiver were out of range or
    /// offline at send or delivery time.
    pub dropped_range: u64,
    /// Copies dropped by the link loss model.
    pub dropped_loss: u64,
    /// Broadcast operations submitted.
    pub broadcasts: u64,
    /// Timers fired.
    pub timers: u64,
}

/// One recorded delivery event (only kept when logging is enabled).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Delivery time.
    pub at: SimTime,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Channel name.
    pub channel: String,
    /// Payload size in bytes.
    pub bytes: usize,
}

/// Pre-registered `net.sim.*` counter ids in an attached registry.
#[derive(Debug)]
struct Mirror {
    shared: Shared,
    sent: CounterId,
    delivered: CounterId,
    dropped_range: CounterId,
    dropped_loss: CounterId,
    broadcasts: CounterId,
    timers: CounterId,
    /// Lazily-registered `net.channel.<name>.bytes` counters.
    channel_bytes: HashMap<String, CounterId>,
}

impl Mirror {
    fn new(shared: &Shared) -> Mirror {
        let mut t = shared.lock();
        let m = Mirror {
            sent: t.registry.counter("net.sim.sent"),
            delivered: t.registry.counter("net.sim.delivered"),
            dropped_range: t.registry.counter("net.sim.dropped_range"),
            dropped_loss: t.registry.counter("net.sim.dropped_loss"),
            broadcasts: t.registry.counter("net.sim.broadcasts"),
            timers: t.registry.counter("net.sim.timers"),
            channel_bytes: HashMap::new(),
            shared: shared.clone(),
        };
        drop(t);
        m
    }
}

/// Collects statistics and (optionally) per-delivery entries.
#[derive(Debug, Default)]
pub struct Trace {
    /// Aggregate counters.
    pub stats: NetStats,
    log_enabled: bool,
    log: Vec<TraceEntry>,
    mirror: Option<Mirror>,
}

impl Trace {
    /// Enables/disables the per-delivery log.
    pub fn set_logging(&mut self, enabled: bool) {
        self.log_enabled = enabled;
    }

    /// Mirrors every counter bump into `shared` (names `net.sim.*`)
    /// and re-exports deliveries through its journal.
    pub fn attach_telemetry(&mut self, shared: &Shared) {
        self.mirror = Some(Mirror::new(shared));
    }

    pub(crate) fn record_sent(&mut self) {
        self.stats.sent += 1;
        if let Some(m) = &self.mirror {
            m.shared.with(|t| t.registry.inc(m.sent));
        }
    }

    pub(crate) fn record_broadcast(&mut self) {
        self.stats.broadcasts += 1;
        if let Some(m) = &self.mirror {
            m.shared.with(|t| t.registry.inc(m.broadcasts));
        }
    }

    pub(crate) fn record_timer(&mut self) {
        self.stats.timers += 1;
        if let Some(m) = &self.mirror {
            m.shared.with(|t| t.registry.inc(m.timers));
        }
    }

    pub(crate) fn record_drop_range(&mut self) {
        self.stats.dropped_range += 1;
        if let Some(m) = &self.mirror {
            m.shared.with(|t| t.registry.inc(m.dropped_range));
        }
    }

    pub(crate) fn record_drop_loss(&mut self) {
        self.stats.dropped_loss += 1;
        if let Some(m) = &self.mirror {
            m.shared.with(|t| t.registry.inc(m.dropped_loss));
        }
    }

    pub(crate) fn record_delivery(&mut self, entry: TraceEntry) {
        self.stats.delivered += 1;
        if let Some(m) = &mut self.mirror {
            let chan_id = *m
                .channel_bytes
                .entry(entry.channel.clone())
                .or_insert_with(|| {
                    m.shared
                        .lock()
                        .registry
                        .counter(&format!("net.channel.{}.bytes", entry.channel))
                });
            m.shared.with(|t| {
                t.registry.inc(m.delivered);
                t.registry.add(chan_id, entry.bytes as u64);
                t.journal.event(
                    Subsystem::Net,
                    "net.deliver",
                    format!(
                        "{}->{} {} {}B",
                        entry.from.0, entry.to.0, entry.channel, entry.bytes
                    ),
                );
            });
        }
        if self.log_enabled {
            self.log.push(entry);
        }
    }

    /// The recorded deliveries (empty unless logging was enabled).
    pub fn log(&self) -> &[TraceEntry] {
        &self.log
    }

    /// Stable 64-bit FNV-1a digest over the aggregate counters and —
    /// when logging is enabled — every delivery's `(at, from, to,
    /// channel, bytes)` in order. The cross-driver determinism suite
    /// enables logging and compares digests between the serial and
    /// parallel engines; equal digests mean the byte-level delivery
    /// sequence is identical.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = pmp_telemetry::Fnv64::new();
        h.write_u64(self.stats.sent);
        h.write_u64(self.stats.delivered);
        h.write_u64(self.stats.dropped_range);
        h.write_u64(self.stats.dropped_loss);
        h.write_u64(self.stats.broadcasts);
        h.write_u64(self.stats.timers);
        h.write_u64(self.log.len() as u64);
        for e in &self.log {
            h.write_u64(e.at.0);
            h.write_u64(u64::from(e.from.0));
            h.write_u64(u64::from(e.to.0));
            h.write_str(&e.channel);
            h.write_u64(e.bytes as u64);
        }
        h.finish()
    }

    /// Clears the log and zeroes the counters (attached telemetry is
    /// left untouched — its registry has its own `reset`).
    pub fn reset(&mut self) {
        self.stats = NetStats::default();
        self.log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> TraceEntry {
        TraceEntry {
            at: SimTime::ZERO,
            from: NodeId(0),
            to: NodeId(1),
            channel: "x".into(),
            bytes: 3,
        }
    }

    #[test]
    fn logging_toggle() {
        let mut t = Trace::default();
        t.record_delivery(entry());
        assert_eq!(t.stats.delivered, 1);
        assert!(t.log().is_empty());
        t.set_logging(true);
        t.record_delivery(entry());
        assert_eq!(t.log().len(), 1);
        t.reset();
        assert_eq!(t.stats.delivered, 0);
        assert!(t.log().is_empty());
    }

    #[test]
    fn attached_registry_mirrors_all_counters() {
        let shared = Shared::new();
        let mut t = Trace::default();
        t.attach_telemetry(&shared);
        t.record_sent();
        t.record_sent();
        t.record_broadcast();
        t.record_timer();
        t.record_drop_range();
        t.record_drop_loss();
        t.record_delivery(entry());
        t.record_delivery(TraceEntry {
            channel: "y".into(),
            bytes: 10,
            ..entry()
        });
        assert_eq!(shared.counter_value("net.sim.sent"), t.stats.sent);
        assert_eq!(shared.counter_value("net.sim.delivered"), t.stats.delivered);
        assert_eq!(
            shared.counter_value("net.sim.dropped_range"),
            t.stats.dropped_range
        );
        assert_eq!(
            shared.counter_value("net.sim.dropped_loss"),
            t.stats.dropped_loss
        );
        assert_eq!(shared.counter_value("net.sim.broadcasts"), t.stats.broadcasts);
        assert_eq!(shared.counter_value("net.sim.timers"), t.stats.timers);
        assert_eq!(shared.counter_value("net.channel.x.bytes"), 3);
        assert_eq!(shared.counter_value("net.channel.y.bytes"), 10);
        // Deliveries are re-exported as journal events.
        let journal_events = shared.with(|t| {
            t.journal
                .events()
                .filter(|e| e.name == "net.deliver")
                .count()
        });
        assert_eq!(journal_events, 2);
    }
}
