//! Property-based translation validation for the weave-time
//! optimizer: any random program the verifier *accepts* must behave
//! identically before and after `opt::optimize_aspect` — same return
//! value or same thrown error, same final field state. The alphabet
//! includes a constant sibling method reachable through a virtual
//! call, so constant folding, branch elimination, devirtualisation,
//! interprocedural inlining, and dead-code compaction all fire on a
//! useful fraction of inputs.
//!
//! Fuel exhaustion is the one permitted divergence: optimization
//! legitimately reduces fuel consumption (that is its point), so a
//! case where either leg runs out of fuel is discarded rather than
//! compared.
//!
//! Needs the external `proptest` crate; the offline default build gates
//! the whole file behind the (empty) `proptest` feature.
#![cfg(feature = "proptest")]

use pmp_analyze::opt;
use pmp_analyze::{verifier, AnalyzeOptions, Severity};
use pmp_prose::{PortableAspect, PortableClass, PortableMethod};
use pmp_vm::op::{BytecodeBody, Const, Op};
use pmp_vm::prelude::*;
use proptest::prelude::*;

const EXTRA_LOCALS: u16 = 2;
const FUEL: u64 = 10_000;

/// Decodes one raw triple into an op. Weighted toward pushes and
/// foldable arithmetic so many programs verify and many optimize.
fn decode(sel: u8, imm: i64, raw_target: u32, len: usize) -> Op {
    let target = (raw_target as usize % (len + 2)) as u32;
    match sel % 26 {
        0..=4 => Op::Const(Const::Int(imm)),
        5 => Op::Const(Const::Bool(imm & 1 == 0)),
        6 => Op::Const(Const::Str(format!("s{}", imm.rem_euclid(3)))),
        7 => Op::Dup,
        8 => Op::Pop,
        9 => Op::Swap,
        10 => Op::Add,
        11 => Op::Mul,
        12 => Op::Eq,
        13 => Op::Lt,
        14 => Op::Not,
        15 => Op::Neg,
        16 => Op::Concat,
        17 => Op::ToStr,
        18 => Op::Jump(target),
        19 => Op::JumpIf(target),
        20 => Op::JumpIfNot(target),
        21 => Op::Load((raw_target % 4) as u16),
        22 => Op::Store((raw_target % 4) as u16),
        23 => Op::CallV {
            method: "limit".into(),
            argc: 0,
        },
        24 => Op::GetField {
            class: "T".into(),
            field: "f".into(),
        },
        _ => Op::Nop,
    }
}

fn program(raw: &[(u8, i64, u32)], trailing_ret: bool) -> Vec<Op> {
    let len = raw.len() + usize::from(trailing_ret);
    let mut ops: Vec<Op> = raw
        .iter()
        .map(|(sel, imm, t)| decode(*sel, *imm, *t, len))
        .collect();
    if trailing_ret {
        ops.push(Op::Ret);
    }
    ops
}

/// The constant sibling: `limit() -> 9`, the target for
/// devirtualisation and interprocedural constant inlining.
fn limit_method() -> PortableMethod {
    PortableMethod {
        name: "limit".into(),
        params: vec![],
        ret: "int".into(),
        body: BytecodeBody {
            extra_locals: 0,
            ops: vec![Op::Const(Const::Int(9)), Op::RetVal],
            handlers: vec![],
        },
    }
}

fn aspect_for(ops: &[Op]) -> PortableAspect {
    PortableAspect {
        name: "t".into(),
        class: PortableClass {
            name: "T".into(),
            fields: vec![("f".into(), "int".into())],
            methods: vec![
                PortableMethod {
                    name: "m".into(),
                    params: vec![],
                    ret: "any".into(),
                    body: BytecodeBody {
                        extra_locals: EXTRA_LOCALS,
                        ops: ops.to_vec(),
                        handlers: vec![],
                    },
                },
                limit_method(),
            ],
        },
        bindings: vec![],
    }
}

fn canon(v: &Value) -> String {
    match v {
        Value::Ref(_) => "<ref>".to_string(),
        other => format!("{other:?}"),
    }
}

/// Runs `class.m` under finite fuel; `Err(())` means fuel exhaustion
/// (discard), otherwise the canonical (result, field-f) observables.
fn run_class(class: &PortableClass) -> Result<(String, String), ()> {
    let mut vm = Vm::new(VmConfig::default());
    let def = class.to_class_def().expect("class def");
    vm.register_class(def).expect("register");
    let this = vm.new_object("T").expect("object");
    let scope = vm.begin_advice(Permissions::all(), Some(FUEL));
    let result = vm.call("T", "m", this.clone(), vec![]);
    vm.end_advice(scope);
    if let Err(VmError::Limit(_)) = &result {
        // Fuel/limit exhaustion: optimization may only reduce resource
        // use, so limits are not a comparable observable.
        return Err(());
    }
    let rendered = match &result {
        Ok(v) => format!("Ok({})", canon(v)),
        Err(e) => format!("Err({e})"),
    };
    let f = vm
        .get_field(this.as_ref_id().expect("ref"), "T", "f")
        .map_or_else(|e| format!("<{e}>"), |v| canon(&v));
    Ok((rendered, f))
}

proptest! {
    #[test]
    fn optimized_programs_behave_identically(
        raw in prop::collection::vec((any::<u8>(), -8i64..8, any::<u32>()), 1..24),
        trailing_ret in prop::bool::weighted(0.9),
    ) {
        let ops = program(&raw, trailing_ret);
        let aspect = aspect_for(&ops);
        let findings = verifier::verify_class(&aspect.class, &AnalyzeOptions::default());
        if findings.iter().any(|f| f.severity >= Severity::Error) {
            // Rejected: admission would refuse it; nothing to compare.
            return Ok(());
        }

        let (optimized, report) = opt::optimize_aspect(&aspect);
        prop_assert!(
            report.all_validated(),
            "translation validation reverted a verifier-accepted program: {ops:?}\n{report}"
        );

        match (run_class(&aspect.class), run_class(&optimized.class)) {
            // Fuel exhaustion on either leg: optimization may only
            // *reduce* fuel use, so original-exhausts/optimized-runs is
            // legitimate; compare nothing.
            (Err(()), _) | (_, Err(())) => {}
            (Ok(a), Ok(b)) => prop_assert_eq!(
                a, b,
                "optimized program diverged\n  ops: {:?}\n  optimized: {:?}",
                ops, optimized.class.methods[0].body.ops
            ),
        }
    }
}
