//! The tuple-space wire protocol, on the `"tuplespace"` channel.

use crate::tuple::{Pattern, Tuple};
use pmp_wire::{Reader, Wire, WireError, Writer};

/// Channel name for tuple-space traffic.
pub const CHANNEL: &str = "tuplespace";

/// A tuple-space protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceMsg {
    /// Client → space: deposit a tuple (Linda `out`).
    Out {
        /// The tuple.
        tuple: Tuple,
    },
    /// Client → space: non-destructive read (Linda `rd`, non-blocking
    /// variant — replies immediately with a match or none).
    Rd {
        /// The template.
        pattern: Pattern,
        /// Correlation id.
        req: u64,
    },
    /// Client → space: destructive take (Linda `in`, non-blocking).
    In {
        /// The template.
        pattern: Pattern,
        /// Correlation id.
        req: u64,
    },
    /// Space → client: result of `Rd`/`In`.
    Result {
        /// Echoed correlation id.
        req: u64,
        /// The matched tuple, if any.
        tuple: Option<Tuple>,
    },
    /// Client → space: subscribe; every current *and future* matching
    /// tuple is pushed as [`SpaceMsg::Notify`]. This is the reactive
    /// primitive that makes distribution proactive.
    Subscribe {
        /// The template.
        pattern: Pattern,
        /// Subscription id (client-chosen).
        sub: u64,
    },
    /// Client → space: cancel a subscription.
    Unsubscribe {
        /// The subscription id.
        sub: u64,
    },
    /// Space → client: a tuple matching subscription `sub`.
    Notify {
        /// The subscription id.
        sub: u64,
        /// The matching tuple (a copy; the tuple stays in the space).
        tuple: Tuple,
    },
}

impl Wire for SpaceMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            SpaceMsg::Out { tuple } => {
                w.put_u8(0);
                tuple.encode(w);
            }
            SpaceMsg::Rd { pattern, req } => {
                w.put_u8(1);
                pattern.encode(w);
                w.put_u64(*req);
            }
            SpaceMsg::In { pattern, req } => {
                w.put_u8(2);
                pattern.encode(w);
                w.put_u64(*req);
            }
            SpaceMsg::Result { req, tuple } => {
                w.put_u8(3);
                w.put_u64(*req);
                tuple.encode(w);
            }
            SpaceMsg::Subscribe { pattern, sub } => {
                w.put_u8(4);
                pattern.encode(w);
                w.put_u64(*sub);
            }
            SpaceMsg::Unsubscribe { sub } => {
                w.put_u8(5);
                w.put_u64(*sub);
            }
            SpaceMsg::Notify { sub, tuple } => {
                w.put_u8(6);
                w.put_u64(*sub);
                tuple.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => SpaceMsg::Out {
                tuple: Tuple::decode(r)?,
            },
            1 => SpaceMsg::Rd {
                pattern: Pattern::decode(r)?,
                req: r.get_u64()?,
            },
            2 => SpaceMsg::In {
                pattern: Pattern::decode(r)?,
                req: r.get_u64()?,
            },
            3 => SpaceMsg::Result {
                req: r.get_u64()?,
                tuple: Option::<Tuple>::decode(r)?,
            },
            4 => SpaceMsg::Subscribe {
                pattern: Pattern::decode(r)?,
                sub: r.get_u64()?,
            },
            5 => SpaceMsg::Unsubscribe { sub: r.get_u64()? },
            6 => SpaceMsg::Notify {
                sub: r.get_u64()?,
                tuple: Tuple::decode(r)?,
            },
            tag => {
                return Err(r.bad_tag("SpaceMsg", tag))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::PatternField;

    #[test]
    fn roundtrip_all_variants() {
        let tuple = Tuple::new(vec!["ext".into(), 1i64.into()]);
        let pattern = Pattern::new(vec![PatternField::Any, PatternField::AnyInt]);
        let msgs = vec![
            SpaceMsg::Out {
                tuple: tuple.clone(),
            },
            SpaceMsg::Rd {
                pattern: pattern.clone(),
                req: 1,
            },
            SpaceMsg::In {
                pattern: pattern.clone(),
                req: 2,
            },
            SpaceMsg::Result {
                req: 1,
                tuple: Some(tuple.clone()),
            },
            SpaceMsg::Result { req: 2, tuple: None },
            SpaceMsg::Subscribe { pattern, sub: 7 },
            SpaceMsg::Unsubscribe { sub: 7 },
            SpaceMsg::Notify { sub: 7, tuple },
        ];
        for m in msgs {
            let bytes = pmp_wire::to_bytes(&m);
            assert_eq!(pmp_wire::from_bytes::<SpaceMsg>(&bytes).unwrap(), m);
        }
    }
}
