//! # pmp-spec — SPECjvm-flavoured macro benchmarks for the pmp VM
//!
//! The paper reports "an overhead of about 7% (measured using a SPECjvm
//! benchmark)" for a PROSE-enabled JVM with no extensions woven (§4.6).
//! This crate plays SPECjvm98's role for our VM: five macro workloads
//! with realistic method-call and field-access densities, so the cost
//! of the JIT-planted stubs shows up the way it did in the paper.
//!
//! | program | flavour of | stresses |
//! |---|---|---|
//! | [`programs::compress`] | `_201_compress` | buffer ops, tight loops, static calls |
//! | [`programs::crypto`] | mixing rounds | integer ops, call-heavy inner loop |
//! | [`programs::db`] | `_209_db` | objects, virtual calls, field access |
//! | [`programs::sor`] | SciMark SOR | float arrays, nested loops |
//! | [`programs::montecarlo`] | SciMark MonteCarlo | float math, static calls |
//!
//! # Examples
//!
//! ```
//! use pmp_vm::prelude::*;
//! use pmp_spec::Suite;
//!
//! # fn main() -> Result<(), VmError> {
//! let mut vm = Vm::new(VmConfig::default());
//! let suite = Suite::register_all(&mut vm)?;
//! let results = suite.run_all(&mut vm, pmp_spec::Size::Small)?;
//! assert_eq!(results.len(), 5);
//! # Ok(())
//! # }
//! ```

pub mod programs;

use pmp_vm::prelude::{Value, Vm, VmError};

/// Workload size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Size {
    /// Quick, for tests (~10⁴–10⁵ ops per program).
    Small,
    /// Benchmark size (~10⁶ ops per program).
    Large,
}

/// One program's run outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Program name.
    pub name: &'static str,
    /// The checked result value (validates correctness).
    pub value: Value,
    /// Bytecode ops executed during the run.
    pub ops: u64,
    /// Method invocations during the run.
    pub invocations: u64,
}

/// The registered suite.
#[derive(Debug, Clone, Copy)]
pub struct Suite {
    _priv: (),
}

/// Names of the suite programs, in run order.
pub const PROGRAM_NAMES: [&str; 5] = ["compress", "crypto", "db", "sor", "montecarlo"];

impl Suite {
    /// Registers every program's classes into `vm`.
    ///
    /// # Errors
    ///
    /// [`VmError::Link`] on duplicate registration.
    pub fn register_all(vm: &mut Vm) -> Result<Suite, VmError> {
        programs::compress::register(vm)?;
        programs::crypto::register(vm)?;
        programs::db::register(vm)?;
        programs::sor::register(vm)?;
        programs::montecarlo::register(vm)?;
        Ok(Suite { _priv: () })
    }

    /// Runs one program by name.
    ///
    /// # Errors
    ///
    /// Unknown names are link errors; programs propagate their own
    /// failures.
    pub fn run_one(&self, vm: &mut Vm, name: &str, size: Size) -> Result<RunResult, VmError> {
        let before_ops = vm.stats().bytecode_ops;
        let before_inv = vm.stats().invocations;
        let value = match name {
            "compress" => programs::compress::run(vm, size)?,
            "crypto" => programs::crypto::run(vm, size)?,
            "db" => programs::db::run(vm, size)?,
            "sor" => programs::sor::run(vm, size)?,
            "montecarlo" => programs::montecarlo::run(vm, size)?,
            other => return Err(VmError::link(format!("unknown spec program {other:?}"))),
        };
        let stats = vm.stats();
        let name: &'static str = PROGRAM_NAMES
            .iter()
            .find(|n| **n == name)
            .expect("validated above");
        Ok(RunResult {
            name,
            value,
            ops: stats.bytecode_ops - before_ops,
            invocations: stats.invocations - before_inv,
        })
    }

    /// Runs the whole suite.
    ///
    /// # Errors
    ///
    /// First failing program's error.
    pub fn run_all(&self, vm: &mut Vm, size: Size) -> Result<Vec<RunResult>, VmError> {
        PROGRAM_NAMES
            .iter()
            .map(|name| self.run_one(vm, name, size))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_vm::prelude::VmConfig;

    #[test]
    fn suite_runs_and_counts() {
        let mut vm = Vm::new(VmConfig::default());
        let suite = Suite::register_all(&mut vm).unwrap();
        let results = suite.run_all(&mut vm, Size::Small).unwrap();
        assert_eq!(results.len(), 5);
        for r in &results {
            assert!(r.ops > 1_000, "{} ran {} ops", r.name, r.ops);
            assert!(r.invocations >= 1, "{} ran", r.name);
        }
        // The suite as a whole is call-dense (compress/crypto/db/mc all
        // make nested calls); SOR alone is a loop kernel.
        let total_calls: u64 = results.iter().map(|r| r.invocations).sum();
        assert!(total_calls > 1_000, "suite call density: {total_calls}");
    }

    #[test]
    fn unknown_program_rejected() {
        let mut vm = Vm::new(VmConfig::default());
        let suite = Suite::register_all(&mut vm).unwrap();
        assert!(suite.run_one(&mut vm, "nope", Size::Small).is_err());
    }

    #[test]
    fn results_identical_with_and_without_stubs() {
        // The stubs must be semantically invisible.
        let run = |hooks: bool| {
            let mut vm = Vm::new(if hooks {
                VmConfig::default()
            } else {
                VmConfig::without_hooks()
            });
            let suite = Suite::register_all(&mut vm).unwrap();
            suite
                .run_all(&mut vm, Size::Small)
                .unwrap()
                .into_iter()
                .map(|r| r.value)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }
}
