//! E1 — the paper's §4.6 SPECjvm measurement: platform active (stubs
//! planted, no extensions) vs unmodified runtime. Paper: ≈7 % overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmp_bench::{run_suite, suite_vm, PROGRAM_NAMES};
use pmp_spec::Size;

fn bench_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("specjvm");
    for hooks in [false, true] {
        let label = if hooks { "stubs-on" } else { "stubs-off" };
        for name in PROGRAM_NAMES {
            let (mut vm, suite) = suite_vm(hooks);
            group.bench_with_input(
                BenchmarkId::new(label, name),
                &name,
                |b, name| {
                    b.iter(|| suite.run_one(&mut vm, name, Size::Small).unwrap());
                },
            );
        }
        let (mut vm, suite) = suite_vm(hooks);
        group.bench_function(BenchmarkId::new(label, "suite-total"), |b| {
            b.iter(|| run_suite(&mut vm, &suite, Size::Small));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_suite);
criterion_main!(benches);
