//! The two node roles of the platform: mobile nodes (VM + PROSE +
//! adaptation service + optional robot hardware) and base stations
//! (registrar + extension base + hall database + signing authority).

use crate::wiring::{install_node_sys, NodeWiring};
use pmp_crypto::{KeyPair, Principal};
use pmp_discovery::Registrar;
use pmp_durable::{Durable, DurableHub, RecoverReport};
use pmp_midas::{
    AdaptationService, BaseEvent, ExtensionBase, ExtensionPackage, ReceiverEvent, ReceiverPolicy,
    SignedExtension,
};
use pmp_net::NodeId;
use pmp_prose::Prose;
use pmp_robot::{new_handle, register_robot_classes, spawn_motor, spawn_plotter, Port, RobotHandle};
use pmp_store::{MovementRecord, MovementStore};
use pmp_vm::class::ClassDef;
use pmp_vm::prelude::{TypeSig, Value, Vm, VmConfig, VmError};
use std::collections::HashMap;
use std::sync::Arc;

/// A mobile node: the paper's Fig. 2b stack (application + VM + PROSE +
/// adaptation service), optionally with the robot hardware of Fig. 3a.
pub struct MobileNode {
    /// The simulator node.
    pub node: NodeId,
    /// Advertised name (`"robot:1:1"`).
    pub name: String,
    /// The managed runtime.
    pub vm: Vm,
    /// The weaver.
    pub prose: Prose,
    /// The MIDAS adaptation service.
    pub receiver: AdaptationService,
    /// Host wiring (outbox, session caller).
    pub wiring: Arc<NodeWiring>,
    /// Robot hardware, if attached.
    pub robot: Option<RobotHandle>,
    /// Motor proxies by device name (mirror/replay targets).
    pub motors: HashMap<String, Value>,
    /// The plotter proxy, if a robot is attached.
    pub plotter: Option<Value>,
    /// Exposed service objects by class name (RPC targets).
    pub services: HashMap<String, Value>,
    /// Accumulated receiver events.
    pub events: Vec<ReceiverEvent>,
    /// Where app traffic is sent (the base that adapted us last).
    pub home_base: Option<NodeId>,
    /// Server-side RPC state: the at-most-once dedup table plus the
    /// execution ledger the duplicate-execution oracle reads.
    pub rpc_server: crate::rpc::RpcServer,
}

impl std::fmt::Debug for MobileNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MobileNode")
            .field("node", &self.node)
            .field("name", &self.name)
            .field("robot", &self.robot.is_some())
            .finish_non_exhaustive()
    }
}

/// Registers the `DrawingService` class: the service `m_R` the robot
/// exports (paper §3.3 / §4.3 — "exports a drawing interface as a Jini
/// service"). Natives drive the `Plotter` proxy through VM calls, so
/// woven extensions intercept everything.
fn register_drawing_service(vm: &mut Vm) -> Result<(), VmError> {
    fn plotter_of(vm: &Vm, this: &Value) -> Result<Value, VmError> {
        let obj = this
            .as_ref_id()
            .ok_or_else(|| VmError::link("DrawingService without instance"))?;
        vm.get_field(obj, "DrawingService", "plotter")
    }
    let class = ClassDef::build("DrawingService")
        .field("plotter", TypeSig::object("Plotter"))
        .native(
            "drawLine",
            [TypeSig::Int, TypeSig::Int, TypeSig::Int, TypeSig::Int],
            TypeSig::Void,
            |vm, call| {
                let p = plotter_of(vm, &call.this)?;
                let (x0, y0) = (call.int_arg(0)?, call.int_arg(1)?);
                let (x1, y1) = (call.int_arg(2)?, call.int_arg(3)?);
                vm.call("Plotter", "penUp", p.clone(), vec![])?;
                vm.call(
                    "Plotter",
                    "moveTo",
                    p.clone(),
                    vec![Value::Int(x0), Value::Int(y0)],
                )?;
                vm.call("Plotter", "penDown", p.clone(), vec![])?;
                vm.call(
                    "Plotter",
                    "moveTo",
                    p.clone(),
                    vec![Value::Int(x1), Value::Int(y1)],
                )?;
                vm.call("Plotter", "penUp", p, vec![])?;
                Ok(Value::Null)
            },
        )
        .native(
            "moveTo",
            [TypeSig::Int, TypeSig::Int],
            TypeSig::Void,
            |vm, call| {
                let p = plotter_of(vm, &call.this)?;
                vm.call(
                    "Plotter",
                    "moveTo",
                    p,
                    vec![Value::Int(call.int_arg(0)?), Value::Int(call.int_arg(1)?)],
                )?;
                Ok(Value::Null)
            },
        )
        .native("position", [], TypeSig::Int, |vm, call| {
            // Encoded x*100000 + y for a single-int RPC reply.
            let p = plotter_of(vm, &call.this)?;
            let x = vm.call("Plotter", "x", p.clone(), vec![])?.as_int().unwrap_or(0);
            let y = vm.call("Plotter", "y", p, vec![])?.as_int().unwrap_or(0);
            Ok(Value::Int(x * 100_000 + y))
        })
        .done();
    vm.register_class(class)?;
    Ok(())
}

impl MobileNode {
    /// Builds a mobile node. When `with_robot` is set, the robot
    /// hardware, motor/plotter proxies, and the `DrawingService` are
    /// installed and exposed.
    ///
    /// # Errors
    ///
    /// VM registration failures.
    pub fn build(
        node: NodeId,
        name: impl Into<String>,
        policy: ReceiverPolicy,
        clock: Arc<dyn Fn() -> u64 + Send + Sync>,
        with_robot: bool,
    ) -> Result<MobileNode, VmError> {
        let name = name.into();
        let mut vm = Vm::new(VmConfig::default());
        vm.set_clock(clock.clone());
        let wiring = Arc::new(NodeWiring::default());
        install_node_sys(&mut vm, &name, &wiring);

        let mut robot = None;
        let mut motors = HashMap::new();
        let mut plotter = None;
        let mut services = HashMap::new();
        if with_robot {
            let handle = new_handle();
            handle.lock().rcx.set_clock(clock);
            register_robot_classes(&mut vm, &handle)?;
            for port in Port::MOTORS {
                motors.insert(format!("motor:{port}"), spawn_motor(&mut vm, port)?);
            }
            let p = spawn_plotter(&mut vm)?;
            register_drawing_service(&mut vm)?;
            let svc = vm.new_object("DrawingService")?;
            let obj = svc.as_ref_id().expect("fresh object");
            vm.set_field(obj, "DrawingService", "plotter", p.clone())?;
            services.insert("DrawingService".to_string(), svc);
            plotter = Some(p);
            robot = Some(handle);
        }

        let prose = Prose::attach(&mut vm);
        let receiver = AdaptationService::new(node, name.clone(), policy);
        Ok(MobileNode {
            node,
            name,
            vm,
            prose,
            receiver,
            wiring,
            robot,
            motors,
            plotter,
            services,
            events: Vec::new(),
            home_base: None,
            rpc_server: crate::rpc::RpcServer::default(),
        })
    }

    /// The robot's recorded drawing, if hardware is attached.
    pub fn canvas(&self) -> Option<pmp_robot::Canvas> {
        self.robot.as_ref().map(|h| h.lock().canvas().clone())
    }
}

/// A base station: one per proactive space (production hall).
pub struct BaseStation {
    /// The simulator node.
    pub node: NodeId,
    /// Hall name (`"hall-a"`).
    pub name: String,
    /// The Jini-like lookup service.
    pub registrar: Registrar,
    /// The base's own discovery client, used to issue *federated*
    /// lookups into the registrar tree (entered at the local registrar
    /// via loopback).
    pub lookup: pmp_discovery::DiscoveryClient,
    /// Discovery events surfaced by [`BaseStation::lookup`] — federated
    /// lookup results land here.
    pub discoveries: Vec<pmp_discovery::DiscoveryEvent>,
    /// The MIDAS extension base.
    pub base: ExtensionBase,
    /// The hall database (movement logs).
    pub store: MovementStore,
    /// Extra persisted key/values from the persistence extension.
    pub persisted: Vec<(String, String, String)>,
    /// Billing settlements `(robot, reason, amount)`.
    pub charges: Vec<(String, String, i64)>,
    /// Mirror routes: source robot name → `(replica node, num, den)`.
    pub mirrors: HashMap<String, Vec<(NodeId, i64, i64)>>,
    /// Accumulated base events.
    pub events: Vec<BaseEvent>,
    /// The storage engine under this base: movement log + extension
    /// base state are WAL'd through it and survive a crash.
    pub durable: DurableHub,
    /// Bounded ring of recent spans and events observed at this base
    /// (the flight recorder), WAL'd so a post-crash `.repro` still
    /// carries the moments before the fault.
    pub flight: pmp_trace::FlightRecorder,
    /// Set while the base is down (between [`crate::Platform::crash_base`]
    /// and [`crate::Platform::restart_base`]); a crashed base receives
    /// no traffic.
    pub crashed: bool,
    /// Caller-side RPC call table: outstanding semantic calls and
    /// their retransmission bookkeeping, durable under `"rpc.calls"`
    /// so a restarted base resumes retrying with the same request ids.
    pub rpc: crate::rpc::RpcEngine,
    authority: KeyPair,
    principal_name: String,
}

impl std::fmt::Debug for BaseStation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaseStation")
            .field("node", &self.node)
            .field("name", &self.name)
            .field("store_len", &self.store.len())
            .finish_non_exhaustive()
    }
}

impl BaseStation {
    /// Builds a base station whose signing authority is derived from
    /// `authority_seed`, over a fresh storage engine.
    pub fn build(node: NodeId, name: impl Into<String>, authority_seed: &[u8]) -> BaseStation {
        Self::build_with_hub(node, name, authority_seed, DurableHub::new())
    }

    /// Builds a base station over an existing storage engine — the
    /// restart path: the hub (and its simulated disk) survives the
    /// crash, the in-memory state machines are rebuilt fresh and then
    /// recovered from it.
    pub fn build_with_hub(
        node: NodeId,
        name: impl Into<String>,
        authority_seed: &[u8],
        durable: DurableHub,
    ) -> BaseStation {
        let name = name.into();
        let registrar = Registrar::new(node, format!("lookup:{name}"));
        let mut base = ExtensionBase::new(node, node);
        base.attach_durable(durable.namespace(pmp_midas::durable::NAMESPACE));
        let mut rpc = crate::rpc::RpcEngine::new();
        rpc.attach(durable.namespace(crate::rpc::RPC_CALLS_NAMESPACE));
        BaseStation {
            node,
            registrar,
            lookup: pmp_discovery::DiscoveryClient::new(node),
            discoveries: Vec::new(),
            base,
            store: MovementStore::new(),
            persisted: Vec::new(),
            charges: Vec::new(),
            mirrors: HashMap::new(),
            events: Vec::new(),
            durable,
            flight: pmp_trace::FlightRecorder::new(pmp_trace::DEFAULT_FLIGHT_CAP),
            crashed: false,
            rpc,
            authority: KeyPair::from_seed(authority_seed),
            principal_name: format!("authority:{name}"),
            name,
        }
    }

    /// Appends a movement record to the hall database, WAL-logging it
    /// first so it survives a crash once the epoch commits.
    pub fn record_movement(&mut self, record: MovementRecord) {
        self.durable.append(
            pmp_store::durable::NAMESPACE,
            MovementStore::wal_payload(&record),
        );
        self.store.append(record);
    }

    /// Appends one span or journal event to the flight recorder,
    /// WAL-logged so the ring survives a crash (a batch of one; see
    /// [`BaseStation::note_flight_batch`]).
    pub fn note_flight(&mut self, entry: pmp_trace::FlightEntry) {
        self.note_flight_batch(vec![entry]);
    }

    /// Appends an epoch's worth of flight entries as **one** WAL
    /// record, mirroring the engine's group-commit discipline: per-span
    /// framing cost is paid once per node per barrier, not per span.
    /// Flight records are also weightless — they commit and replay like
    /// any other record but never advance the snapshot cadence, so
    /// trace chatter cannot force extra full-state snapshots.
    pub fn note_flight_batch(&mut self, entries: Vec<pmp_trace::FlightEntry>) {
        if entries.is_empty() {
            return;
        }
        self.durable
            .append_weightless(pmp_trace::FLIGHT_NAMESPACE, pmp_wire::to_bytes(&entries));
        for entry in entries {
            self.flight.record(entry);
        }
    }

    /// Snapshots the base's durable state (movement log + extension
    /// base + flight recorder + RPC call table) and compacts the WAL.
    pub fn checkpoint(&mut self) {
        let hub = self.durable.clone();
        hub.checkpoint(&[&self.store, &self.base, &self.flight, &self.rpc]);
    }

    /// Recovers the movement store, extension base, flight recorder,
    /// and RPC call table from the storage engine's committed image.
    pub fn recover(&mut self) -> RecoverReport {
        let hub = self.durable.clone();
        hub.recover(&mut [
            &mut self.store,
            &mut self.base,
            &mut self.flight,
            &mut self.rpc,
        ])
    }

    /// A stable digest over the base's durable state — compare across
    /// a crash/restart boundary to prove recovery was exact.
    pub fn durable_digest(&self) -> u64 {
        let mut h = pmp_telemetry::Fnv64::new();
        h.write_u64(self.store.state_digest());
        h.write_u64(self.base.state_digest());
        h.write_u64(self.flight.state_digest());
        h.write_u64(self.rpc.state_digest());
        h.finish()
    }

    /// The principal mobile nodes must trust to accept this hall's
    /// extensions.
    pub fn principal(&self) -> Principal {
        Principal::new(self.principal_name.clone(), self.authority.public_key())
    }

    /// Signs a package with this hall's authority.
    pub fn seal(&self, pkg: &ExtensionPackage) -> SignedExtension {
        SignedExtension::seal(self.principal_name.clone(), &self.authority, pkg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobile_node_with_robot_exposes_services() {
        let node = MobileNode::build(
            NodeId(0),
            "robot:1:1",
            ReceiverPolicy::new(),
            Arc::new(|| 0),
            true,
        )
        .unwrap();
        assert!(node.robot.is_some());
        assert_eq!(node.motors.len(), 3);
        assert!(node.services.contains_key("DrawingService"));
        assert!(node.canvas().unwrap().is_empty());
    }

    #[test]
    fn drawing_service_draws_via_vm() {
        let mut node = MobileNode::build(
            NodeId(0),
            "robot:1:1",
            ReceiverPolicy::new(),
            Arc::new(|| 0),
            true,
        )
        .unwrap();
        let svc = node.services["DrawingService"].clone();
        node.vm
            .call(
                "DrawingService",
                "drawLine",
                svc.clone(),
                vec![0.into(), 0.into(), 10.into(), 0.into()],
            )
            .unwrap();
        let canvas = node.canvas().unwrap();
        assert_eq!(canvas.len(), 1);
        assert_eq!(canvas.strokes()[0].to, (10, 0));
        let pos = node
            .vm
            .call("DrawingService", "position", svc, vec![])
            .unwrap();
        assert_eq!(pos, Value::Int(10 * 100_000));
    }

    #[test]
    fn base_station_principal_and_sealing() {
        let base = BaseStation::build(NodeId(1), "hall-a", b"seed-a");
        assert_eq!(base.principal().name, "authority:hall-a");
        let pkg = pmp_extensions::monitoring::package(1);
        let sealed = base.seal(&pkg);
        assert_eq!(sealed.signer(), "authority:hall-a");
        let mut trust = pmp_crypto::TrustStore::new();
        trust.add(base.principal());
        assert!(sealed.verify_and_open(&trust).is_ok());
    }

    #[test]
    fn mobile_node_without_robot_is_bare() {
        let node = MobileNode::build(
            NodeId(0),
            "pda:7",
            ReceiverPolicy::new(),
            Arc::new(|| 0),
            false,
        )
        .unwrap();
        assert!(node.robot.is_none());
        assert!(node.services.is_empty());
        assert!(node.canvas().is_none());
    }
}
