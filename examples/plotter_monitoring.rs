//! The plotter prototype with the hardware-monitoring extension
//! (paper Fig. 3b–Fig. 6): every movement is intercepted, streamed to
//! the base-station database, and then used for replay and remote
//! replication at a different scale.
//!
//! ```bash
//! cargo run --example plotter_monitoring
//! ```

use pmp::core::Platform;
use pmp::extensions;
use pmp::net::Position;
use pmp::vm::prelude::{Permission, Permissions};
use std::collections::HashMap;

const SEC: u64 = 1_000_000_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut p = Platform::new(4);
    p.add_area("hall-a", Position::new(0.0, 0.0), Position::new(60.0, 60.0));
    let base = p.add_base("hall-a", Position::new(30.0, 30.0), 80.0);

    // The hall distributes replication (a monitoring variant that also
    // feeds replicas).
    let pkg = extensions::replication::package(1);
    let sealed = p.base(base).seal(&pkg);
    p.base_mut(base).base.catalog.put(sealed);

    let cap = Permissions::none().with(Permission::Net);
    let policy = p.trusting_policy(&[base], cap);
    let plotter = p.add_robot("robot:1:1", Position::new(35.0, 30.0), 80.0, policy.clone())?;
    // An identical robot mirrors the work at double scale (§4.5).
    let replica = p.add_robot("robot:mirror", Position::new(25.0, 30.0), 80.0, policy)?;
    p.mirror(base, "robot:1:1", replica, 2, 1);

    p.pump(6 * SEC);
    println!(
        "robot adapted with {:?}",
        p.node(plotter).receiver.installed_ids()
    );

    // Draw a little house remotely.
    let house = [
        (0, 0, 20, 0),
        (20, 0, 20, 15),
        (20, 15, 0, 15),
        (0, 15, 0, 0),
        (0, 15, 10, 22),
        (10, 22, 20, 15),
    ];
    for (x0, y0, x1, y1) in house {
        p.rpc(base, plotter, "operator:1", "DrawingService", "drawLine", vec![x0, y0, x1, y1]);
        p.pump(SEC / 2);
    }
    p.pump(3 * SEC);

    let original = p.node(plotter).canvas().unwrap();
    let mirrored = p.node(replica).canvas().unwrap();
    println!("original drew {} strokes; replica {} strokes at 2x scale", original.len(), mirrored.len());
    assert_eq!(mirrored, original.scaled(2, 1));
    println!("replica canvas == original scaled by 2 ✓");

    // The hall database (Fig. 6's left panel).
    let store = &p.base(base).store;
    println!("\nhall database: {} movement records for {:?}", store.len(), store.robots());
    for r in store.by_robot("robot:1:1").iter().take(6) {
        println!("  {} {} {:?} at t={}ns (took {}ns)", r.device, r.command, r.args, r.issued_at, r.duration_ns);
    }
    println!("  ...");

    // Replay onto a fresh, offline robot (Fig. 6's "Simulation").
    let mut vm = pmp::vm::Vm::new(pmp::vm::VmConfig::default());
    let handle = pmp::robot::new_handle();
    pmp::robot::register_robot_classes(&mut vm, &handle)?;
    let mut motors = HashMap::new();
    for port in pmp::robot::Port::MOTORS {
        motors.insert(format!("motor:{port}"), pmp::robot::spawn_motor(&mut vm, port)?);
    }
    let steps = extensions::replay::plan(store, "robot:1:1");
    let applied = extensions::replay::apply_plan(&mut vm, &motors, &steps)?;
    println!("\nreplayed {applied} commands onto an offline robot");
    assert_eq!(handle.lock().canvas(), &original);
    println!("replayed canvas == original ✓");
    Ok(())
}
