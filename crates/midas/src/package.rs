//! Extension packages: the unit MIDAS distributes, leases, and revokes.

use pmp_crypto::{KeyPair, SignedBlob, TrustStore};
use pmp_prose::PortableAspect;
use pmp_wire::{wire_struct, WireError};
use std::fmt;

/// Metadata describing an extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtensionMeta {
    /// Globally unique id, e.g. `"hall-a/monitoring"`.
    pub id: String,
    /// Monotonic version; receivers refuse downgrades.
    pub version: u32,
    /// Human-readable description.
    pub description: String,
    /// Ids of *implicit* extensions this one needs (the paper's session
    /// management, automatically added alongside access control).
    pub requires: Vec<String>,
    /// Requested permission names (`"print"`, `"net"`, ...); capped by
    /// the receiver's policy for the signer.
    pub permissions: Vec<String>,
    /// `true` for implicit extensions: they are installed only as
    /// dependencies and removed automatically when the last dependent
    /// extension goes away.
    pub implicit: bool,
}

wire_struct!(ExtensionMeta {
    id: String,
    version: u32,
    description: String,
    requires: Vec<String>,
    permissions: Vec<String>,
    implicit: bool,
});

impl fmt::Display for ExtensionMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} v{}", self.id, self.version)
    }
}

/// A complete extension: metadata plus the portable aspect.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtensionPackage {
    /// Descriptive metadata.
    pub meta: ExtensionMeta,
    /// The code (a shippable aspect).
    pub aspect: PortableAspect,
}

wire_struct!(ExtensionPackage {
    meta: ExtensionMeta,
    aspect: PortableAspect,
});

/// A signed, wire-ready extension. The signature covers the canonical
/// encoding of the whole package, so neither metadata (permissions!)
/// nor code can be altered in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedExtension {
    /// The signed envelope.
    pub blob: SignedBlob,
}

wire_struct!(SignedExtension { blob: SignedBlob });

impl SignedExtension {
    /// Signs `package` as `signer`.
    pub fn seal(signer: impl Into<String>, pair: &KeyPair, package: &ExtensionPackage) -> Self {
        let payload = pmp_wire::to_bytes(package);
        Self {
            blob: SignedBlob::seal(signer, pair, payload),
        }
    }

    /// The claimed signer name.
    pub fn signer(&self) -> &str {
        &self.blob.signer
    }

    /// Decodes the package (does **not** verify the signature).
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed payloads.
    pub fn open(&self) -> Result<ExtensionPackage, WireError> {
        pmp_wire::from_bytes(&self.blob.payload)
    }

    /// Verifies the signature against a trust store and decodes.
    ///
    /// # Errors
    ///
    /// A human-readable reason: untrusted signer, bad signature, or
    /// malformed payload.
    pub fn verify_and_open(&self, trust: &TrustStore) -> Result<ExtensionPackage, String> {
        trust.verify(&self.blob).map_err(|e| e.to_string())?;
        self.open().map_err(|e| format!("malformed package: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_crypto::Principal;
    use pmp_prose::{Aspect, PortableClass};

    fn package(id: &str, version: u32) -> ExtensionPackage {
        let aspect = Aspect::script(
            id.to_string(),
            PortableClass {
                name: format!("Ext_{}", id.replace(['/', '-'], "_")),
                fields: vec![],
                methods: vec![],
            },
            vec![],
        );
        ExtensionPackage {
            meta: ExtensionMeta {
                id: id.into(),
                version,
                description: "test".into(),
                requires: vec![],
                permissions: vec!["print".into()],
                implicit: false,
            },
            aspect: PortableAspect::try_from(&aspect).unwrap(),
        }
    }

    #[test]
    fn seal_verify_open() {
        let pair = KeyPair::from_seed(b"authority");
        let mut trust = TrustStore::new();
        trust.add(Principal::new("authority", pair.public_key()));
        let pkg = package("hall-a/mon", 1);
        let signed = SignedExtension::seal("authority", &pair, &pkg);
        assert_eq!(signed.signer(), "authority");
        let opened = signed.verify_and_open(&trust).unwrap();
        assert_eq!(opened, pkg);
    }

    #[test]
    fn untrusted_signer_rejected() {
        let pair = KeyPair::from_seed(b"stranger");
        let trust = TrustStore::new();
        let signed = SignedExtension::seal("stranger", &pair, &package("x", 1));
        let err = signed.verify_and_open(&trust).unwrap_err();
        assert!(err.contains("not trusted"));
    }

    #[test]
    fn tampered_package_rejected() {
        let pair = KeyPair::from_seed(b"authority");
        let mut trust = TrustStore::new();
        trust.add(Principal::new("authority", pair.public_key()));
        let mut signed = SignedExtension::seal("authority", &pair, &package("x", 1));
        // Flip a byte: e.g. escalate permissions in the payload.
        let mid = signed.blob.payload.len() / 2;
        signed.blob.payload[mid] ^= 1;
        assert!(signed.verify_and_open(&trust).is_err());
    }

    #[test]
    fn wire_roundtrip() {
        let pair = KeyPair::from_seed(b"a");
        let signed = SignedExtension::seal("a", &pair, &package("x", 3));
        let bytes = pmp_wire::to_bytes(&signed);
        assert_eq!(
            pmp_wire::from_bytes::<SignedExtension>(&bytes).unwrap(),
            signed
        );
    }
}
