//! Host-side wiring of a mobile node's VM: the system operations that
//! extensions call (`monitor.post`, `session.caller`, ...), an outbox
//! that turns them into asynchronous network messages, and the
//! app-level wire protocol between robots and base stations.

use pmp_telemetry::sync::Mutex;
use pmp_store::MovementRecord;
use pmp_vm::perm::Permission;
use pmp_vm::prelude::{Value, Vm};
use pmp_wire::{Reader, Wire, WireError, Writer};
use std::sync::Arc;

/// Channel for application-level traffic (monitoring, billing, ...).
pub const APP_CHANNEL: &str = "app";
/// Channel for mirrored movements (base → replica robot).
pub const MIRROR_CHANNEL: &str = "mirror";
/// Channel for remote service calls.
pub const RPC_CHANNEL: &str = "rpc";

/// An application message from a robot to its base station.
#[derive(Debug, Clone, PartialEq)]
pub enum AppMsg {
    /// A monitored movement (the monitoring extension, Fig. 3b step 2).
    Monitor {
        /// The movement record (robot name filled by the sender host).
        record: MovementRecord,
    },
    /// A movement to mirror to replicas (the replication extension).
    Replicate {
        /// The movement record.
        record: MovementRecord,
    },
    /// A billing settlement (the accounting extension).
    Charge {
        /// Robot name.
        robot: String,
        /// Reason (e.g. the shutdown reason).
        reason: String,
        /// Amount in billing units.
        amount: i64,
    },
    /// A persisted field write (the orthogonal persistence extension).
    Persist {
        /// Robot name.
        robot: String,
        /// `Class.field` key.
        key: String,
        /// Display form of the value.
        value: String,
    },
}

impl Wire for AppMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            AppMsg::Monitor { record } => {
                w.put_u8(0);
                record.encode(w);
            }
            AppMsg::Replicate { record } => {
                w.put_u8(1);
                record.encode(w);
            }
            AppMsg::Charge {
                robot,
                reason,
                amount,
            } => {
                w.put_u8(2);
                w.put_str(robot);
                w.put_str(reason);
                w.put_vari64(*amount);
            }
            AppMsg::Persist { robot, key, value } => {
                w.put_u8(3);
                w.put_str(robot);
                w.put_str(key);
                w.put_str(value);
            }
        }
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => AppMsg::Monitor {
                record: MovementRecord::decode(r)?,
            },
            1 => AppMsg::Replicate {
                record: MovementRecord::decode(r)?,
            },
            2 => AppMsg::Charge {
                robot: r.get_str()?,
                reason: r.get_str()?,
                amount: r.get_vari64()?,
            },
            3 => AppMsg::Persist {
                robot: r.get_str()?,
                key: r.get_str()?,
                value: r.get_str()?,
            },
            tag => {
                return Err(r.bad_tag("AppMsg", tag))
            }
        })
    }
}

/// A remote service call and its reply.
#[derive(Debug, Clone, PartialEq)]
pub enum RpcMsg {
    /// Invoke `class.method` on the target's exposed service object.
    Call {
        /// Caller identity (becomes `session.caller` during dispatch).
        caller: String,
        /// Service class name.
        class: String,
        /// Method name.
        method: String,
        /// Integer arguments (the drawing API is integer-based).
        args: Vec<i64>,
        /// Correlation id.
        req: u64,
    },
    /// The outcome.
    Reply {
        /// Correlation id.
        req: u64,
        /// Whether the call completed normally.
        ok: bool,
        /// Display form of the return value, or the error text.
        value: String,
    },
    /// A call carrying explicit invocation semantics (see
    /// [`crate::rpc::InvocationSemantics`]). A separate wire tag keeps
    /// the legacy `Call`/`Reply` encodings byte-identical, so every
    /// pinned trace from before the semantics work still replays.
    CallSem {
        /// Caller identity.
        caller: String,
        /// Service class name.
        class: String,
        /// Method name.
        method: String,
        /// Integer arguments.
        args: Vec<i64>,
        /// Correlation id (stable across retransmissions).
        req: u64,
        /// The requested delivery/execution guarantee.
        sem: crate::rpc::InvocationSemantics,
        /// 1-based attempt counter, for observability only — the
        /// server keys dedup on `req`, never on the attempt.
        attempt: u32,
    },
}

impl Wire for RpcMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            RpcMsg::Call {
                caller,
                class,
                method,
                args,
                req,
            } => {
                w.put_u8(0);
                w.put_str(caller);
                w.put_str(class);
                w.put_str(method);
                args.encode(w);
                w.put_u64(*req);
            }
            RpcMsg::Reply { req, ok, value } => {
                w.put_u8(1);
                w.put_u64(*req);
                w.put_bool(*ok);
                w.put_str(value);
            }
            RpcMsg::CallSem {
                caller,
                class,
                method,
                args,
                req,
                sem,
                attempt,
            } => {
                w.put_u8(2);
                w.put_str(caller);
                w.put_str(class);
                w.put_str(method);
                args.encode(w);
                w.put_u64(*req);
                sem.encode(w);
                w.put_u32(*attempt);
            }
        }
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => RpcMsg::Call {
                caller: r.get_str()?,
                class: r.get_str()?,
                method: r.get_str()?,
                args: Vec::<i64>::decode(r)?,
                req: r.get_u64()?,
            },
            1 => RpcMsg::Reply {
                req: r.get_u64()?,
                ok: r.get_bool()?,
                value: r.get_str()?,
            },
            2 => RpcMsg::CallSem {
                caller: r.get_str()?,
                class: r.get_str()?,
                method: r.get_str()?,
                args: Vec::<i64>::decode(r)?,
                req: r.get_u64()?,
                sem: crate::rpc::InvocationSemantics::decode(r)?,
                attempt: r.get_u32()?,
            },
            tag => {
                return Err(r.bad_tag("RpcMsg", tag))
            }
        })
    }
}

/// Shared mutable wiring state of one mobile node's VM.
#[derive(Debug, Default)]
pub struct NodeWiring {
    /// Messages queued by sys ops, flushed to the home base by the
    /// platform pump ("first locally stored and then asynchronously
    /// sent to a base station", §4.4).
    pub outbox: Mutex<Vec<AppMsg>>,
    /// The current remote caller (set around RPC dispatch).
    pub caller: Mutex<String>,
}

/// Installs the extension-facing system operations on a mobile node's
/// VM. `robot_name` stamps outgoing records.
pub fn install_node_sys(vm: &mut Vm, robot_name: &str, wiring: &Arc<NodeWiring>) {
    // Session blackboard + caller.
    pmp_extensions::support::register_session_blackboard(vm);
    let w = wiring.clone();
    vm.register_sys(
        "session.caller",
        None,
        Arc::new(move |_vm, _args| Ok(Value::str(w.caller.lock().clone()))),
    );

    // monitor.post(device, command, arg, duration) / replicate.post(...)
    for (op, replicate) in [("monitor.post", false), ("replicate.post", true)] {
        let w = wiring.clone();
        let robot = robot_name.to_string();
        vm.register_sys(
            op,
            Some(Permission::Net),
            Arc::new(move |vm: &mut Vm, args: Vec<Value>| {
                let record = MovementRecord {
                    robot: robot.clone(),
                    device: args
                        .first()
                        .and_then(|v| v.as_str().map(str::to_string))
                        .unwrap_or_default(),
                    command: args
                        .get(1)
                        .and_then(|v| v.as_str().map(str::to_string))
                        .unwrap_or_default(),
                    args: vec![args.get(2).and_then(Value::as_int).unwrap_or(0)],
                    issued_at: vm.now(),
                    duration_ns: args.get(3).and_then(Value::as_int).unwrap_or(0) as u64,
                };
                let msg = if replicate {
                    AppMsg::Replicate { record }
                } else {
                    AppMsg::Monitor { record }
                };
                w.outbox.lock().push(msg);
                Ok(Value::Null)
            }),
        );
    }

    // billing.charge(reason, amount)
    let w = wiring.clone();
    let robot = robot_name.to_string();
    vm.register_sys(
        "billing.charge",
        Some(Permission::Net),
        Arc::new(move |_vm, args: Vec<Value>| {
            w.outbox.lock().push(AppMsg::Charge {
                robot: robot.clone(),
                reason: args
                    .first()
                    .and_then(|v| v.as_str().map(str::to_string))
                    .unwrap_or_default(),
                amount: args.get(1).and_then(Value::as_int).unwrap_or(0),
            });
            Ok(Value::Null)
        }),
    );

    // persist.put(key, value)
    let w = wiring.clone();
    let robot = robot_name.to_string();
    vm.register_sys(
        "persist.put",
        Some(Permission::Store),
        Arc::new(move |_vm, args: Vec<Value>| {
            w.outbox.lock().push(AppMsg::Persist {
                robot: robot.clone(),
                key: args
                    .first()
                    .and_then(|v| v.as_str().map(str::to_string))
                    .unwrap_or_default(),
                value: args.get(1).map(ToString::to_string).unwrap_or_default(),
            });
            Ok(Value::Null)
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_vm::prelude::VmConfig;

    #[test]
    fn app_msg_roundtrips() {
        let msgs = vec![
            AppMsg::Monitor {
                record: MovementRecord {
                    robot: "r".into(),
                    device: "motor:A".into(),
                    command: "rotate".into(),
                    args: vec![30],
                    issued_at: 5,
                    duration_ns: 6,
                },
            },
            AppMsg::Charge {
                robot: "r".into(),
                reason: "left".into(),
                amount: 15,
            },
            AppMsg::Persist {
                robot: "r".into(),
                key: "Robot.state".into(),
                value: "7".into(),
            },
        ];
        for m in msgs {
            let bytes = pmp_wire::to_bytes(&m);
            assert_eq!(pmp_wire::from_bytes::<AppMsg>(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn rpc_roundtrips() {
        let m = RpcMsg::Call {
            caller: "operator:1".into(),
            class: "DrawingService".into(),
            method: "drawLine".into(),
            args: vec![0, 0, 5, 5],
            req: 3,
        };
        let bytes = pmp_wire::to_bytes(&m);
        assert_eq!(pmp_wire::from_bytes::<RpcMsg>(&bytes).unwrap(), m);
    }

    #[test]
    fn sys_ops_fill_the_outbox() {
        let mut vm = pmp_vm::Vm::new(VmConfig::default());
        let wiring = Arc::new(NodeWiring::default());
        install_node_sys(&mut vm, "robot:1:1", &wiring);
        vm.sys(
            "monitor.post",
            vec![
                Value::str("motor:A"),
                Value::str("Motor.rotate"),
                Value::Int(30),
                Value::Int(500),
            ],
        )
        .unwrap();
        vm.sys(
            "billing.charge",
            vec![Value::str("bye"), Value::Int(9)],
        )
        .unwrap();
        let outbox = wiring.outbox.lock();
        assert_eq!(outbox.len(), 2);
        match &outbox[0] {
            AppMsg::Monitor { record } => {
                assert_eq!(record.robot, "robot:1:1");
                assert_eq!(record.args, vec![30]);
                assert_eq!(record.duration_ns, 500);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn session_caller_reflects_wiring_state() {
        let mut vm = pmp_vm::Vm::new(VmConfig::default());
        let wiring = Arc::new(NodeWiring::default());
        install_node_sys(&mut vm, "r", &wiring);
        *wiring.caller.lock() = "operator:2".into();
        let got = vm.sys("session.caller", vec![]).unwrap();
        assert_eq!(got, Value::str("operator:2"));
    }
}
