//! The hardware monitoring and logging extension (paper Fig. 5).
//!
//! Intercepts every `Motor.*` invocation and posts `(device, command,
//! argument, duration)` to the host's `monitor.post` system operation;
//! the platform forwards it — asynchronously, over the simulated radio —
//! to the base-station movement store (Fig. 3b steps 1–3).

use crate::support::{advice_params, versioned_class};
use pmp_midas::{ExtensionMeta, ExtensionPackage};
use pmp_prose::{Aspect, Crosscut, PortableAspect, PortableClass, PortableMethod};
use pmp_vm::builder::MethodBuilder;
use pmp_vm::op::{Const, Op};

/// Builds the monitoring advice body: exit advice on `* Motor.*(..)`.
fn on_motor_exit_body(sink_op: &str) -> pmp_vm::op::BytecodeBody {
    let mut b = MethodBuilder::new();
    b.locals(3); // 6: device, 7: arg0, 8: duration
    let no_arg = b.label();
    let have_arg = b.label();
    let null_ret = b.label();
    let have_dur = b.label();

    // device = this.id()
    b.op(Op::Load(1))
        .op(Op::CallV {
            method: "id".into(),
            argc: 0,
        })
        .op(Op::Store(6));
    // arg0 = args.len() > 0 ? int(args[0]) : 0
    b.op(Op::Load(3)).op(Op::ArrLen).konst(0i64).op(Op::Gt);
    b.jump_if_not(no_arg);
    b.op(Op::Load(3)).konst(0i64).op(Op::ArrGet).op(Op::ToInt).op(Op::Store(7));
    b.jump(have_arg);
    b.bind(no_arg);
    b.konst(0i64).op(Op::Store(7));
    b.bind(have_arg);
    // duration = retval == null ? 0 : int(retval)
    b.op(Op::Load(4)).op(Op::Const(Const::Null)).op(Op::Eq);
    b.jump_if(null_ret);
    b.op(Op::Load(4)).op(Op::ToInt).op(Op::Store(8));
    b.jump(have_dur);
    b.bind(null_ret);
    b.konst(0i64).op(Op::Store(8));
    b.bind(have_dur);
    // monitor.post(device, command-desc, arg0, duration)
    b.op(Op::Load(6))
        .op(Op::Load(2))
        .op(Op::Load(7))
        .op(Op::Load(8))
        .op(Op::Sys {
            name: sink_op.into(),
            argc: 4,
        })
        .op(Op::Pop)
        .op(Op::Ret);
    b.build()
}

/// Builds the monitoring extension package (version `version`, posting
/// to the `monitor.post` system operation).
pub fn package(version: u32) -> ExtensionPackage {
    package_with_sink("monitoring", "monitor.post", version)
}

/// Variant with explicit ids — the remote-replication extension (§4.5)
/// is the same aspect posting to a different sink.
pub fn package_with_sink(id_suffix: &str, sink_op: &str, version: u32) -> ExtensionPackage {
    let class_name = versioned_class(
        &format!("HwMonitoring_{}", id_suffix.replace(['-', '.'], "_")),
        version,
    );
    let class = PortableClass {
        name: class_name,
        fields: vec![],
        methods: vec![PortableMethod {
            name: "ANYMETHOD".into(),
            params: advice_params(),
            ret: "any".into(),
            body: on_motor_exit_body(sink_op),
        }],
    };
    let aspect = Aspect::script(
        id_suffix.to_string(),
        class,
        vec![(
            Crosscut::parse("after * Motor.*(..)").expect("static pattern"),
            "ANYMETHOD".into(),
            0,
        )],
    );
    ExtensionPackage {
        meta: ExtensionMeta {
            id: format!("ext/{id_suffix}"),
            version,
            description: "logs every motor command to the base station".into(),
            requires: vec![],
            permissions: vec!["net".into()],
            implicit: false,
        },
        aspect: PortableAspect::try_from(&aspect).expect("script aspect is portable"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::register_sink;
    use pmp_prose::{Prose, WeaveOptions};
    use pmp_robot::{new_handle, register_robot_classes, spawn_plotter};
    use pmp_vm::perm::Permission;
    use pmp_vm::prelude::*;

    #[test]
    fn motor_calls_are_posted_with_device_and_duration() {
        let mut vm = Vm::new(VmConfig::default());
        let handle = new_handle();
        register_robot_classes(&mut vm, &handle).unwrap();
        let prose = Prose::attach(&mut vm);
        let log = register_sink(&mut vm, "monitor.post", Some(Permission::Net));

        let pkg = package(1);
        let aspect: pmp_prose::Aspect = pkg.aspect.into();
        let perms = Permissions::none().with(Permission::Net);
        prose
            .weave(&mut vm, aspect, WeaveOptions::sandboxed(perms))
            .unwrap();

        let plotter = spawn_plotter(&mut vm).unwrap();
        vm.call("Plotter", "penDown", plotter.clone(), vec![]).unwrap();
        vm.call(
            "Plotter",
            "moveTo",
            plotter,
            vec![Value::Int(10), Value::Int(0)],
        )
        .unwrap();

        let posts = log.lock();
        // penDown: position() + rotate on motor C; moveTo: position()+rotate
        // on A, position() on B (dy == 0). All Motor.* calls are logged.
        assert!(posts.len() >= 4, "posts: {posts:?}");
        let rotated: Vec<&crate::support::Posted> = posts
            .iter()
            .filter(|p| p.args[1] == Value::str("Motor.rotate"))
            .collect();
        assert_eq!(rotated.len(), 2);
        assert_eq!(rotated[0].args[0], Value::str("motor:C"));
        assert_eq!(rotated[0].args[2], Value::Int(90)); // pen swing
        assert!(rotated[0].args[3].as_int().unwrap() > 0, "duration");
        assert_eq!(rotated[1].args[0], Value::str("motor:A"));
        assert_eq!(rotated[1].args[2], Value::Int(10));
    }

    #[test]
    fn without_net_permission_monitoring_is_blocked() {
        let mut vm = Vm::new(VmConfig::default());
        let handle = new_handle();
        register_robot_classes(&mut vm, &handle).unwrap();
        let prose = Prose::attach(&mut vm);
        register_sink(&mut vm, "monitor.post", Some(Permission::Net));

        let pkg = package(1);
        let aspect: pmp_prose::Aspect = pkg.aspect.into();
        prose
            .weave(&mut vm, aspect, WeaveOptions::sandboxed(Permissions::none()))
            .unwrap();
        let plotter = spawn_plotter(&mut vm).unwrap();
        let err = vm
            .call("Plotter", "penDown", plotter, vec![])
            .unwrap_err();
        assert_eq!(
            err.as_exception().unwrap().class.as_ref(),
            exception_class::SECURITY
        );
    }

    #[test]
    fn package_metadata() {
        let pkg = package(2);
        assert_eq!(pkg.meta.id, "ext/monitoring");
        assert_eq!(pkg.meta.version, 2);
        assert!(pkg.meta.permissions.contains(&"net".to_string()));
        assert!(!pkg.meta.implicit);
        // Versioned class names keep replacements distinct.
        assert_ne!(pkg.aspect.class.name, package(3).aspect.class.name);
    }
}
