//! End-to-end tracing tests: one MIDAS publish on a three-hall world
//! reconstructs as a single causal span tree (publish → sign → ship →
//! verify → weave → first interception), byte-identically across the
//! serial and parallel execution drivers, with the flight recorder
//! surviving a base crash and riding along in `.repro` artifacts.

use pmp::chaos::script::{CatalogEntry, ExtKind, Op, Scenario, Step, Topology};
use pmp::chaos::{exec, repro, DriverKind};
use pmp::core::{BaseId, MobId, ParallelDriver, Platform, SerialDriver};
use pmp::net::{LinkModel, Position};
use pmp::vm::perm::{Permission, Permissions};

const SEC: u64 = 1_000_000_000;

/// Three halls 150 m apart, one base each (80 m radios, wired
/// backhaul), one robot parked in each hall — the chaos executor's
/// world shape, built directly so the tests can reach the collector.
fn three_halls(seed: u64, loss: f64, parallel: bool) -> (Platform, Vec<BaseId>, Vec<MobId>) {
    let link = if loss == 0.0 {
        LinkModel::ideal()
    } else {
        LinkModel::lossy(loss)
    };
    let mut p = Platform::with_link(seed, link);
    if parallel {
        p.set_driver(Box::new(ParallelDriver { threads: 3 }));
    } else {
        p.set_driver(Box::new(SerialDriver));
    }
    p.set_tracing(true);

    let mut bases = Vec::new();
    for i in 0..3usize {
        let x0 = i as f64 * 150.0;
        p.add_area(
            &format!("hall-{i}"),
            Position::new(x0, 0.0),
            Position::new(x0 + 60.0, 60.0),
        );
        bases.push(p.add_base(&format!("hall-{i}"), Position::new(x0 + 30.0, 30.0), 80.0));
    }
    for w in 1..bases.len() {
        p.link_bases(bases[w - 1], bases[w]);
    }

    let mut nodes = Vec::new();
    for k in 0..3usize {
        let cap = Permissions::none()
            .with(Permission::Print)
            .with(Permission::Net)
            .with(Permission::Time)
            .with(Permission::Store);
        let policy = p.trusting_policy(&bases, cap);
        let x0 = k as f64 * 150.0;
        let m = p
            .add_robot(
                &format!("robot:{}:1", k + 1),
                Position::new(x0 + 25.0, 25.0),
                80.0,
                policy,
            )
            .expect("robot registration");
        nodes.push(m);
    }
    (p, bases, nodes)
}

/// Publishes monitoring from hall 0, lets it install, then fires one
/// RPC so the woven advice actually dispatches.
fn publish_and_intercept(p: &mut Platform, bases: &[BaseId], nodes: &[MobId]) {
    p.publish_extension(bases[0], &ExtKind::Monitoring.package(1));
    p.pump(6 * SEC);
    p.rpc(
        bases[0],
        nodes[0],
        "operator:1",
        "DrawingService",
        "moveTo",
        vec![7, 3],
    );
    p.pump(2 * SEC);
}

/// The retained trace whose root is the `midas.publish` span.
fn publish_trace_id(p: &mut Platform) -> u64 {
    let c = p.collector();
    c.trace_ids()
        .into_iter()
        .find(|&id| c.spans_of(id).iter().any(|s| s.name == "midas.publish"))
        .expect("a publish trace was collected")
}

#[test]
fn one_publish_reconstructs_as_one_span_tree() {
    let (mut p, bases, nodes) = three_halls(11, 0.0, false);
    publish_and_intercept(&mut p, &bases, &nodes);

    let id = publish_trace_id(&mut p);
    let spans = p.collector().spans_of(id);

    // The whole adaptation chain landed in one trace.
    for name in [
        "midas.publish",
        "midas.sign",
        "midas.ship",
        "midas.verify",
        "midas.weave",
        "midas.intercept",
    ] {
        assert!(
            spans.iter().any(|s| s.name == name),
            "{name} missing from trace: {spans:#?}"
        );
    }

    // It is a single tree: exactly one root, every other span's parent
    // resolves within the trace.
    let roots: Vec<_> = spans.iter().filter(|s| s.parent_id == 0).collect();
    assert_eq!(roots.len(), 1, "one root: {roots:?}");
    assert_eq!(roots[0].name, "midas.publish");
    for s in &spans {
        assert!(
            s.parent_id == 0 || spans.iter().any(|q| q.span_id == s.parent_id),
            "orphan span {s:?}"
        );
    }

    // Publisher and receiver are different nodes — the tree really
    // crossed the wire.
    let publish_node = roots[0].node;
    let verify = spans.iter().find(|s| s.name == "midas.verify").unwrap();
    assert_ne!(verify.node, publish_node, "verify ran on the receiver");

    // Rendered artifacts name the chain.
    let tree = p.render_trace(id);
    let path = p.render_critical_path(id);
    for name in ["midas.publish", "midas.verify", "midas.intercept"] {
        assert!(tree.contains(name), "tree misses {name}:\n{tree}");
    }
    assert!(path.contains("midas.publish"), "{path}");
    assert!(path.contains("total:"), "{path}");
}

/// One full run's deterministic artifacts: span digest plus the
/// rendered critical path of the publish trace.
fn run_artifacts(seed: u64, loss: f64, parallel: bool) -> (u64, String) {
    let (mut p, bases, nodes) = three_halls(seed, loss, parallel);
    publish_and_intercept(&mut p, &bases, &nodes);
    let id = publish_trace_id(&mut p);
    let path = p.render_critical_path(id);
    (p.span_digest(), path)
}

#[test]
fn serial_and_parallel_drivers_trace_identically() {
    let (ds, ps) = run_artifacts(21, 0.0, false);
    let (dp, pp) = run_artifacts(21, 0.0, true);
    assert_eq!(ds, dp, "span digest diverged across drivers");
    assert_eq!(ps, pp, "critical path diverged across drivers:\n{ps}\nvs\n{pp}");
}

#[test]
fn drivers_trace_identically_under_twenty_percent_loss() {
    let (ds, ps) = run_artifacts(33, 0.2, false);
    let (dp, pp) = run_artifacts(33, 0.2, true);
    assert_eq!(ds, dp, "lossy span digest diverged across drivers");
    assert_eq!(ps, pp, "lossy critical path diverged:\n{ps}\nvs\n{pp}");
}

#[test]
fn base_flight_recorder_survives_crash_and_restart() {
    let (mut p, bases, nodes) = three_halls(5, 0.0, false);
    publish_and_intercept(&mut p, &bases, &nodes);

    let before = p.base(bases[0]).flight.digest();
    assert!(
        !p.base(bases[0]).flight.is_empty(),
        "publishing filled the base flight ring"
    );

    p.crash_base(bases[0]);
    let report = p.restart_base(bases[0]);
    assert!(report.is_clean(), "unfaulted recovery is clean: {report:?}");
    assert_eq!(
        p.base(bases[0]).flight.digest(),
        before,
        "WAL replay reproduced the flight ring"
    );
}

/// The three-hall chaos scenario the acceptance criteria name: hall-0
/// catalogues monitoring, one mid-run publish, one RPC to dispatch it.
fn chaos_scenario(loss_per_mille: u16) -> Scenario {
    Scenario {
        seed: 42,
        topology: Topology {
            halls: 3,
            loss_per_mille,
            robots: 3,
            catalogs: vec![
                vec![CatalogEntry {
                    kind: ExtKind::Monitoring,
                    version: 1,
                }],
                Vec::new(),
                Vec::new(),
            ],
            lease_ms: 3_000,
            link_neighbors: true,
        },
        steps: vec![
            Step {
                at_ms: 500,
                op: Op::Publish {
                    base: 1,
                    kind: ExtKind::Session,
                    version: 1,
                },
            },
            Step {
                at_ms: 4_000,
                op: Op::Rpc {
                    base: 0,
                    node: 0,
                    x: 9,
                    y: 4,
                },
            },
        ],
        settle_ms: 4_000,
    }
}

#[test]
fn chaos_cross_driver_span_digests_agree() {
    for loss in [0u16, 200] {
        let cross = exec::run_cross(&chaos_scenario(loss));
        assert!(
            cross.violations.is_empty(),
            "loss={loss}‰: {:?}",
            cross.violations
        );
        assert_eq!(
            cross.serial.span_digest, cross.parallel.span_digest,
            "loss={loss}‰: span digest diverged"
        );
        assert_eq!(
            cross.serial.flight, cross.parallel.flight,
            "loss={loss}‰: flight dumps diverged"
        );
    }
}

#[test]
fn chaos_repro_carries_the_flight_dump() {
    let sc = chaos_scenario(0);
    let run = exec::run(&sc, DriverKind::Serial);
    assert!(
        run.flight.iter().any(|(_, entries)| !entries.is_empty()),
        "the run recorded flight entries"
    );
    let bytes = repro::save_with_flight(&sc, &run.flight);
    let (sc2, flight2) = repro::load_full(&bytes).unwrap();
    assert_eq!(sc2, sc);
    assert_eq!(flight2, run.flight);
}
