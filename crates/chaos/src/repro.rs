//! The `.repro` format: a committed, replayable failure.
//!
//! A repro file is a magic line followed by the pmp-wire encoding of
//! the (usually minimized) [`Scenario`]. The format is deliberately
//! dumb: no compression, no metadata, no versioned envelope beyond the
//! magic — the scenario encoding *is* the contract, and the decode-fuzz
//! suite pins its error behaviour. `tests/chaos_repros.rs` replays
//! every committed file under both drivers on every CI run.

use crate::script::Scenario;
use pmp_wire::{from_bytes, to_bytes};

/// First bytes of every repro file (includes a trailing newline so the
/// file starts with a readable line).
pub const MAGIC: &[u8] = b"pmp-chaos-repro v1\n";

/// Serializes a scenario into repro bytes.
#[must_use]
pub fn save(sc: &Scenario) -> Vec<u8> {
    let mut out = Vec::from(MAGIC);
    out.extend_from_slice(&to_bytes(sc));
    out
}

/// Parses repro bytes back into a scenario. Rejects a missing magic,
/// a decode failure, and trailing garbage — a repro that does not
/// parse exactly is a repro that cannot be trusted.
pub fn load(bytes: &[u8]) -> Result<Scenario, String> {
    let body = bytes
        .strip_prefix(MAGIC)
        .ok_or_else(|| "not a pmp-chaos repro (bad magic)".to_string())?;
    let sc: Scenario =
        from_bytes(body).map_err(|e| format!("repro body did not decode: {e}"))?;
    // from_bytes already rejects trailing bytes; re-encode equality is
    // the stronger self-check that the file is canonical.
    if to_bytes(&sc) != body {
        return Err("repro body is not in canonical encoding".to_string());
    }
    Ok(sc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn save_load_roundtrips() {
        let sc = generate(5, &GenConfig::default());
        let bytes = save(&sc);
        assert_eq!(load(&bytes).unwrap(), sc);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load(b"something else").unwrap_err();
        assert!(err.contains("bad magic"), "{err}");
    }

    #[test]
    fn truncated_body_is_rejected() {
        let sc = generate(5, &GenConfig::default());
        let bytes = save(&sc);
        let err = load(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(err.contains("did not decode"), "{err}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let sc = generate(5, &GenConfig::default());
        let mut bytes = save(&sc);
        bytes.push(0);
        assert!(load(&bytes).is_err());
    }
}
