//! # pmp-discovery — Jini-like spontaneous networking
//!
//! The paper uses Jini for "service detection and brokerage": mobile
//! nodes advertise their adaptation service, base stations discover
//! newcomers, and everything is leased so state evaporates when nodes
//! leave. This crate reimplements those pieces over the
//! [`pmp_net::Simulator`]:
//!
//! * [`registrar::Registrar`] — the lookup service a base station
//!   hosts: registration under leases, lookup by type/attributes,
//!   multicast announcements, lease expiry sweeps;
//! * [`client::DiscoveryClient`] — the node-side library: registrar
//!   tracking with loss detection, registration with automatic renewal,
//!   and lookups;
//! * [`lease::Lease`] — the lease primitive shared with MIDAS.
//!
//! Both sides are message-driven state machines: a host drains its
//! node's inbox each simulation step and feeds entries to `handle`.

pub mod client;
pub mod directory;
pub mod lease;
pub mod proto;
pub mod registrar;
pub mod service;

pub use client::{DiscoveryClient, DiscoveryEvent};
pub use directory::{Directory, MAX_HOPS};
pub use lease::Lease;
pub use proto::{DiscoveryMsg, CHANNEL};
pub use registrar::{Registrar, RegistrarEvent};
pub use service::{ServiceId, ServiceItem, ServiceQuery};
