//! # pmp-trace — deterministic causal tracing across the simulated wire
//!
//! The paper's headline numbers are per-hop costs (≈900 ns per
//! interception, sign/verify/weave latencies), but an *adaptation* is a
//! causal chain across machines: a base publishes, signs, and ships an
//! extension; every receiver verifies, weaves, and eventually fires the
//! first interception. This crate reconstructs that chain as one span
//! tree without any randomness:
//!
//! * [`TraceCtx`] — a `(trace id, span id)` pair carried inside the
//!   pmp-wire envelope of MIDAS, discovery, tuple-space, and RPC
//!   messages via [`Traced`]. Ids are `(node << 32) | seq`, so two runs
//!   (and the serial vs. parallel execution drivers, DESIGN.md §10)
//!   produce byte-identical trees.
//! * [`Tracer`] — the per-node-cell span factory. Spans are instant
//!   (`start == end`, stamped with sim-time): per-hop latency is the
//!   *delta between* parent and child start times, which is pure
//!   sim-time and therefore deterministic. Wall-clock durations stay in
//!   the telemetry histograms where nondeterminism is expected.
//! * [`FlightRecorder`] — a bounded ring of recent [`FlightEntry`]s per
//!   node, dumped into chaos `.repro` artifacts when an oracle fires
//!   and (for base stations) persisted through `pmp-durable` across
//!   crash/restart.
//! * [`Collector`] — the base-tier service that absorbs drained spans
//!   at epoch barriers and renders span trees, critical paths, and
//!   JSON lines, all canonically.
//!
//! Envelopes are *always* 16 bytes of context plus the payload — even
//! when tracing is disabled (the context is then [`TraceCtx::NIL`]) —
//! so message lengths, and with them the link model's loss sampling,
//! are identical whether tracing is on or off.

#![warn(missing_docs)]

mod collect;
mod ctx;
mod flight;
mod span;
mod tracer;

pub use collect::{Collector, DEFAULT_COLLECT_CAP};
pub use ctx::{TraceCtx, Traced};
pub use flight::{FlightRecorder, DEFAULT_FLIGHT_CAP, FLIGHT_NAMESPACE};
pub use span::{FlightEntry, SpanRecord};
pub use tracer::Tracer;
