//! # pmp-tuplespace — a Linda-style tuple space over the simulated radio
//!
//! The paper's future work (§4.6): "we are looking at tuple spaces
//! \[Gelernter 85, TSpaces\] to get a more flexible and expressive
//! platform for distributing extensions". This crate implements that
//! direction: a generative-communication space hosted on one node, with
//! the classic `out`/`rd`/`in` operations plus **reactive
//! subscriptions** (`notify`) — the primitive that makes distribution
//! *proactive*: a base station `out`s extension tuples; any newcomer
//! whose subscription matches is pushed a copy without either side
//! naming the other.
//!
//! Like the rest of the platform, both ends are message-driven state
//! machines over [`pmp_net::Simulator`]; see
//! `tests/tuplespace_dist.rs` at the workspace root for extension
//! distribution through a space.

pub mod client;
pub mod durable;
pub mod proto;
pub mod space;
pub mod tuple;

pub use client::{SpaceClient, SpaceEvent};
pub use proto::{SpaceMsg, CHANNEL};
pub use space::TupleSpace;
pub use tuple::{Field, Pattern, PatternField, Tuple};
