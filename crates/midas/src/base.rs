//! The extension base: discovers adaptation services, distributes
//! signed extensions, keeps their leases alive, revokes and replaces
//! them, and hands roaming nodes off to neighbour bases (paper §3.2).

use crate::catalog::Catalog;
use crate::durable::BaseWalOp;
use crate::package::SignedExtension;
use crate::proto::{MidasMsg, CHANNEL};
use pmp_discovery::{DiscoveryClient, DiscoveryEvent, ServiceQuery};
use pmp_durable::NamespaceHandle;
use pmp_net::{Incoming, NetPort, NodeId};
use pmp_telemetry::{Fnv64, Shared, Sink, Subsystem};
use pmp_trace::{TraceCtx, Traced, Tracer};
use std::collections::{BTreeMap, HashMap};

const SCAN_TAG: &str = "midas.scan";

/// Events surfaced by the base to its host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaseEvent {
    /// A new adaptation service appeared; the catalog was delivered.
    NodeDiscovered {
        /// The node's advertised name.
        node_name: String,
        /// Number of extensions sent.
        delivered: usize,
    },
    /// A receiver acknowledged an installation.
    InstallAck {
        /// The node's name (if known).
        node_name: String,
        /// The extension.
        ext_id: String,
        /// Success flag.
        ok: bool,
        /// Failure reason when `ok` is false.
        reason: String,
    },
    /// An adapted node stopped appearing in lookups (left the area).
    NodeDeparted {
        /// The node's name.
        node_name: String,
    },
    /// A neighbour base told us one of its nodes roamed away.
    HandoffReceived {
        /// The roaming node's name.
        node_name: String,
        /// Extensions it held at the neighbour.
        ext_ids: Vec<String>,
    },
    /// A roaming node arrived with a migratable handoff record: its
    /// grants were rebound in place (zero re-`Deliver` messages for the
    /// roamed set) and only catalog entries it lacked were delivered.
    NodeMigrated {
        /// The node's name.
        node_name: String,
        /// Grants rebound via [`MidasMsg::GrantTransfer`].
        rebound: usize,
        /// Local catalog entries it did not hold, delivered normally.
        delivered: usize,
    },
    /// A peer base exported a departed node's movement history; the
    /// host should merge the records into its context store.
    MovementImport {
        /// The node's name.
        node_name: String,
        /// Opaque store records in arrival order.
        records: Vec<Vec<u8>>,
    },
}

/// One roaming node's migrated state, received from a peer base.
#[derive(Debug, Clone, PartialEq)]
pub struct RoamEntry {
    /// Network id of the base that sent the handoff.
    pub from: u32,
    /// Extension id → the grant the node held at that base.
    pub grants: BTreeMap<String, u64>,
    /// Signed packages behind those grants.
    pub exts: Vec<SignedExtension>,
    /// FIFO admission sequence, for capacity eviction.
    pub seq: u64,
}

#[derive(Debug)]
pub(crate) struct AdaptedNode {
    pub(crate) node: NodeId,
    pub(crate) grants: HashMap<String, u64>,
    pub(crate) present: bool,
}

/// The extension-base state machine. Drive it by passing every
/// [`Incoming`] of its host node to [`ExtensionBase::handle`].
#[derive(Debug)]
pub struct ExtensionBase {
    node: NodeId,
    registrar: NodeId,
    discovery: DiscoveryClient,
    /// The catalog of extensions this base distributes.
    pub catalog: Catalog,
    lease_ns: u64,
    scan_interval_ns: u64,
    pub(crate) adapted: HashMap<String, AdaptedNode>,
    neighbors: Vec<NodeId>,
    pub(crate) next_grant: u64,
    pending_scan: Option<u64>,
    scan_token: Option<u64>,
    started: bool,
    events: Vec<BaseEvent>,
    /// Roaming records received from peer bases, bounded by
    /// [`ExtensionBase::set_roam_cap`]; entries are evicted FIFO at
    /// capacity and dropped when the node is adopted or re-registers.
    pub roaming_cache: BTreeMap<String, RoamEntry>,
    /// Next FIFO sequence for roaming admissions.
    pub(crate) roam_seq: u64,
    roam_cap: usize,
    /// Packages adopted from handoffs that are not part of this base's
    /// own catalog: needed for renewal-failure redelivery and onward
    /// handoffs, but never delivered to newcomers.
    pub(crate) foreign: BTreeMap<String, SignedExtension>,
    /// Peer bases receiving catalog anti-entropy and lease-table sync.
    replicas: Vec<NodeId>,
    /// Digest of the last lease table pushed to replicas.
    last_lease_sync: u64,
    /// Last stream rev seen per sender network id — advisory gap
    /// tracking for [`MidasMsg::StreamDelta`]; application itself is
    /// version-gated, so a gap only bumps a counter while the scan-tick
    /// digest exchange repairs the miss.
    stream_revs: BTreeMap<u32, u64>,
    telemetry: Option<Sink>,
    durable: Option<NamespaceHandle>,
    tracer: Option<Tracer>,
    /// Root context of the publish that last put each extension in the
    /// catalog, so every later ship of it (catalog delivery, dependency
    /// request, redelivery) joins the same adaptation span tree.
    publish_ctx: HashMap<String, TraceCtx>,
}

impl ExtensionBase {
    /// Creates a base on `node` that polls the registrar at
    /// `registrar` (usually the same node).
    pub fn new(node: NodeId, registrar: NodeId) -> Self {
        Self {
            node,
            registrar,
            discovery: DiscoveryClient::new(node),
            catalog: Catalog::new(),
            lease_ns: 4_000_000_000,      // 4 s extension leases
            scan_interval_ns: 1_000_000_000, // 1 s scan
            adapted: HashMap::new(),
            neighbors: Vec::new(),
            next_grant: 1,
            pending_scan: None,
            scan_token: None,
            started: false,
            events: Vec::new(),
            roaming_cache: BTreeMap::new(),
            roam_seq: 0,
            roam_cap: 64,
            foreign: BTreeMap::new(),
            replicas: Vec::new(),
            last_lease_sync: 0,
            stream_revs: BTreeMap::new(),
            telemetry: None,
            durable: None,
            tracer: None,
            publish_ctx: HashMap::new(),
        }
    }

    /// Attaches the host cell's span factory; ship spans are minted
    /// through it.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Logs every catalog and lease-table mutation to `handle`'s WAL
    /// namespace, making the base crash-recoverable (see
    /// [`crate::durable`]).
    pub fn attach_durable(&mut self, handle: NamespaceHandle) {
        self.durable = Some(handle);
    }

    fn log(&self, op: &BaseWalOp) {
        if let Some(d) = &self.durable {
            d.append(pmp_wire::to_bytes(op));
        }
    }

    /// Mirrors base activity into `shared` (`midas.base.*` counters,
    /// `midas.ship` journal events); the inner discovery client is
    /// attached too.
    pub fn attach_telemetry(&mut self, shared: &Shared) {
        self.attach_sink(Sink::direct(shared));
    }

    /// Routes telemetry through a per-cell [`Sink`] (sharded drivers
    /// buffer journal events and merge them at the epoch barrier).
    pub fn attach_sink(&mut self, sink: Sink) {
        self.discovery.attach_sink(sink.clone());
        self.telemetry = Some(sink);
    }

    fn count(&self, name: &str) {
        if let Some(s) = &self.telemetry {
            s.inc(name);
        }
    }

    /// Records an extension leaving the base toward `to` (the "ship"
    /// stage of the sign→ship→verify→weave distribution trail), and
    /// mints the `midas.ship` span under the extension's publish root.
    /// Returns the context the shipped message must carry.
    fn note_ship(&self, sim: &dyn NetPort, ext_id: &str, to: NodeId) -> TraceCtx {
        if let Some(s) = &self.telemetry {
            s.inc("midas.base.delivered");
            s.event(Subsystem::Midas, "midas.ship", format!("{ext_id} -> n{}", to.0));
        }
        let Some(t) = &self.tracer else {
            return TraceCtx::NIL;
        };
        let parent = self
            .publish_ctx
            .get(ext_id)
            .copied()
            .unwrap_or(TraceCtx::NIL);
        t.child(
            parent,
            sim.now().0,
            "midas.ship",
            &format!("{ext_id} -> n{}", to.0),
        )
    }

    /// Overrides the extension lease duration (ns).
    pub fn set_lease(&mut self, lease_ns: u64) {
        self.lease_ns = lease_ns;
    }

    /// Overrides the scan interval (ns).
    pub fn set_scan_interval(&mut self, ns: u64) {
        self.scan_interval_ns = ns;
    }

    /// Registers a neighbour base for roaming handoffs.
    pub fn add_neighbor(&mut self, base: NodeId) {
        if !self.neighbors.contains(&base) {
            self.neighbors.push(base);
        }
    }

    /// Neighbour bases, in registration order.
    pub fn neighbors(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// Registers a replica peer: this base pushes catalog anti-entropy
    /// digests and lease-table syncs to it. Opt-in and directional —
    /// call on both bases for symmetric replication. Unlike neighbours
    /// (handoff-only), replicas converge toward the same catalog, so
    /// only federate bases meant to serve the same policy.
    pub fn add_replica(&mut self, base: NodeId) {
        if !self.replicas.contains(&base) {
            self.replicas.push(base);
        }
    }

    /// Ids of foreign packages held for migrated grants (sorted): not
    /// part of this base's catalog, kept for redelivery and onward
    /// handoffs.
    pub fn foreign_ids(&self) -> Vec<String> {
        self.foreign.keys().cloned().collect()
    }

    /// Replica peers, in registration order.
    pub fn replicas(&self) -> &[NodeId] {
        &self.replicas
    }

    /// Overrides the roaming-table capacity (default 64 entries).
    pub fn set_roam_cap(&mut self, cap: usize) {
        self.roam_cap = cap.max(1);
    }

    /// Admits a roaming record: assigns its FIFO sequence, logs it, and
    /// evicts the oldest entries while over capacity.
    pub(crate) fn roam_insert(&mut self, name: &str, mut entry: RoamEntry) {
        entry.seq = self.roam_seq;
        self.roam_seq += 1;
        self.log(&BaseWalOp::RoamState {
            name: name.to_string(),
            from: entry.from,
            grants: entry.grants.clone(),
            exts: entry.exts.clone(),
            seq: entry.seq,
        });
        self.roaming_cache.insert(name.to_string(), entry);
        while self.roaming_cache.len() > self.roam_cap {
            let oldest = self
                .roaming_cache
                .iter()
                .min_by_key(|(_, e)| e.seq)
                .map(|(n, _)| n.clone());
            let Some(n) = oldest else { break };
            self.roaming_cache.remove(&n);
            self.log(&BaseWalOp::RoamDrop { name: n });
            self.count("midas.base.roam_evicted");
        }
    }

    /// Drops a roaming record (the node was adopted or re-registered).
    fn roam_drop(&mut self, name: &str) {
        if self.roaming_cache.remove(name).is_some() {
            self.log(&BaseWalOp::RoamDrop {
                name: name.to_string(),
            });
        }
    }

    /// FNV-64 over the sorted `(id, version)` catalog inventory — the
    /// anti-entropy probe replicas compare before exchanging entries.
    #[must_use]
    pub fn catalog_digest(&self) -> u64 {
        let mut h = Fnv64::new();
        for (id, version) in self.catalog_inventory() {
            h.write_str(&id);
            h.write_u64(u64::from(version));
        }
        h.finish()
    }

    /// Sorted `(id, version)` pairs for every catalogued extension.
    fn catalog_inventory(&self) -> Vec<(String, u32)> {
        self.catalog
            .ids()
            .into_iter()
            .map(|id| {
                let version = self
                    .catalog
                    .get(&id)
                    .and_then(|e| e.open().ok())
                    .map_or(0, |p| p.meta.version);
                (id, version)
            })
            .collect()
    }

    /// The live lease table (present nodes only), sorted by name.
    fn lease_entries(&self) -> Vec<(String, u32, BTreeMap<String, u64>)> {
        let mut entries: Vec<(String, u32, BTreeMap<String, u64>)> = self
            .adapted
            .iter()
            .filter(|(_, a)| a.present)
            .map(|(name, a)| {
                (
                    name.clone(),
                    a.node.0,
                    a.grants.iter().map(|(k, v)| (k.clone(), *v)).collect(),
                )
            })
            .collect();
        entries.sort();
        entries
    }

    /// Pushes replication traffic to every replica peer: a catalog
    /// digest each scan (cheap; matching digests end the exchange) and
    /// the lease table only when it changed since the last push.
    fn sync_replicas(&mut self, sim: &mut dyn NetPort) {
        if self.replicas.is_empty() {
            return;
        }
        let digest = self.catalog_digest();
        let replicas = self.replicas.clone();
        for r in &replicas {
            self.send(sim, *r, &MidasMsg::CatalogDigest { digest }, TraceCtx::NIL);
        }
        let entries = self.lease_entries();
        let mut h = Fnv64::new();
        for (name, node, grants) in &entries {
            h.write_str(name);
            h.write_u64(u64::from(*node));
            for (id, g) in grants {
                h.write_str(id);
                h.write_u64(*g);
            }
        }
        let lease_digest = h.finish();
        if lease_digest != self.last_lease_sync {
            self.last_lease_sync = lease_digest;
            for r in &replicas {
                let msg = MidasMsg::LeaseSync {
                    entries: entries.clone(),
                };
                self.send(sim, *r, &msg, TraceCtx::NIL);
            }
        }
    }

    /// Adopts a roaming node from its migrated handoff record: every
    /// grant it held at the previous base is rebound in place with one
    /// [`MidasMsg::GrantTransfer`] — zero re-`Deliver` messages for the
    /// roamed set — and only local catalog entries it lacks are
    /// delivered. Returns `(rebound, delivered)`.
    fn adopt_roamer(
        &mut self,
        sim: &mut dyn NetPort,
        node: NodeId,
        name: &str,
        entry: &RoamEntry,
    ) -> (usize, usize) {
        // Keep the signed packages behind migrated grants reachable
        // for renewal-failure redelivery and onward handoffs.
        for ext in &entry.exts {
            let Ok(pkg) = ext.open() else { continue };
            let id = pkg.meta.id;
            if self.catalog.get(&id).is_none() && !self.foreign.contains_key(&id) {
                self.log(&BaseWalOp::ForeignPut { ext: ext.clone() });
                self.foreign.insert(id, ext.clone());
            }
        }
        // Rebind the migrated grants. A grant is adopted when this base
        // serves the extension itself, or when the record came from a
        // replica (one federated administrative domain — catalogs
        // converge by anti-entropy anyway). Foreign grants from a mere
        // roaming neighbour are *not* adopted: the paper's locality of
        // adaptations means the old hall's policy lapses with its
        // leases. Either way a rebind requires the signed package in
        // hand (catalog or foreign): a grant this base cannot redeliver
        // on a renewal failure would be a dangling promise — shadow
        // lease entries synced without packages (or revoked locally
        // since) simply lapse. BTreeMap order keeps the wire payload
        // byte-stable.
        let federated = self.replicas.iter().any(|r| r.0 == entry.from);
        let mut grants = HashMap::new();
        let mut rebinds = Vec::new();
        for (id, old) in &entry.grants {
            let servable = self.catalog.get(id).is_some()
                || (federated && self.foreign.contains_key(id));
            if !servable {
                continue;
            }
            let fresh = self.fresh_grant();
            grants.insert(id.clone(), fresh);
            rebinds.push((id.clone(), *old, fresh));
            self.count("midas.base.migrated");
        }
        let rebound = rebinds.len();
        if rebound > 0 {
            let msg = MidasMsg::GrantTransfer {
                node_name: name.to_string(),
                rebinds,
                lease_ns: self.lease_ns,
            };
            self.send(sim, node, &msg, TraceCtx::NIL);
        }
        // Deliver only what the local catalog adds on top.
        let mut delivered = 0;
        for id in self.catalog.delivery_order() {
            if grants.contains_key(&id) {
                continue;
            }
            let Some(ext) = self.catalog.get(&id).cloned() else {
                continue;
            };
            let grant = self.fresh_grant();
            grants.insert(id.clone(), grant);
            let msg = MidasMsg::Deliver {
                ext,
                lease_ns: self.lease_ns,
                grant,
            };
            let ctx = self.note_ship(sim, &id, node);
            self.send(sim, node, &msg, ctx);
            delivered += 1;
        }
        self.log(&BaseWalOp::NodeAdapted {
            name: name.to_string(),
            node: node.0,
            grants: grants.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        });
        self.adapted.insert(
            name.to_string(),
            AdaptedNode {
                node,
                grants,
                present: true,
            },
        );
        (rebound, delivered)
    }

    /// Starts scanning. Idempotent.
    pub fn start(&mut self, sim: &mut dyn NetPort) {
        if self.started {
            return;
        }
        self.started = true;
        self.discovery.start(sim);
        self.scan(sim);
        self.scan_token = Some(sim.set_timer(self.node, self.scan_interval_ns, SCAN_TAG));
    }

    /// Names of currently adapted (present) nodes, sorted.
    pub fn adapted_nodes(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .adapted
            .iter()
            .filter(|(_, a)| a.present)
            .map(|(n, _)| n.clone())
            .collect();
        names.sort();
        names
    }

    /// Drains accumulated events.
    pub fn take_events(&mut self) -> Vec<BaseEvent> {
        std::mem::take(&mut self.events)
    }

    fn fresh_grant(&mut self) -> u64 {
        let g = self.next_grant;
        self.next_grant += 1;
        g
    }

    fn scan(&mut self, sim: &mut dyn NetPort) {
        let req = self.discovery.lookup(
            sim,
            self.registrar,
            ServiceQuery::of_type("midas.adaptation"),
        );
        self.pending_scan = Some(req);
    }

    fn send(&self, sim: &mut dyn NetPort, to: NodeId, msg: &MidasMsg, ctx: TraceCtx) {
        sim.send(self.node, to, CHANNEL, ctx.wrap(msg));
    }

    fn deliver_catalog(&mut self, sim: &mut dyn NetPort, node: NodeId, node_name: &str) -> usize {
        let order = self.catalog.delivery_order();
        let mut grants = HashMap::new();
        let mut count = 0;
        for id in order {
            if let Some(ext) = self.catalog.get(&id).cloned() {
                let grant = self.fresh_grant();
                grants.insert(id.clone(), grant);
                let msg = MidasMsg::Deliver {
                    ext,
                    lease_ns: self.lease_ns,
                    grant,
                };
                let ctx = self.note_ship(sim, &id, node);
                self.send(sim, node, &msg, ctx);
                count += 1;
            }
        }
        self.log(&BaseWalOp::NodeAdapted {
            name: node_name.to_string(),
            node: node.0,
            grants: grants.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        });
        self.adapted.insert(
            node_name.to_string(),
            AdaptedNode {
                node,
                grants,
                present: true,
            },
        );
        count
    }

    /// Installs (or upgrades) an extension in the catalog and pushes a
    /// [`MidasMsg::Replace`] to every adapted node that already holds an
    /// older instance — this is how "the local policy evolves" reaches
    /// robots already in the hall.
    pub fn update_extension(&mut self, sim: &mut dyn NetPort, ext: SignedExtension) {
        self.update_extension_traced(sim, ext, TraceCtx::NIL);
    }

    /// [`ExtensionBase::update_extension`] with the publish's trace
    /// context: every ship of this extension — now and later — becomes
    /// a child of `ctx`, so the whole adaptation reconstructs as one
    /// span tree.
    pub fn update_extension_traced(
        &mut self,
        sim: &mut dyn NetPort,
        ext: SignedExtension,
        ctx: TraceCtx,
    ) {
        let Ok(pkg) = ext.open() else { return };
        let id = pkg.meta.id.clone();
        if ctx.is_nil() {
            self.publish_ctx.remove(&id);
        } else {
            self.publish_ctx.insert(id.clone(), ctx);
        }
        self.catalog.put(ext.clone());
        // A catalog entry supersedes any foreign copy of the same
        // package; the WAL replay of `CatalogPut` applies the same
        // removal, so live state and recovery stay digest-identical.
        self.foreign.remove(&id);
        self.log(&BaseWalOp::CatalogPut { ext: ext.clone() });
        let mut targets: Vec<(String, NodeId)> = self
            .adapted
            .iter()
            .filter(|(_, a)| a.present && a.grants.contains_key(&id))
            .map(|(name, a)| (name.clone(), a.node))
            .collect();
        // Name order: replacement sends must not follow hash order.
        targets.sort();
        for (name, node) in targets {
            let grant = self.fresh_grant();
            let msg = MidasMsg::Replace {
                old_id: id.clone(),
                ext: ext.clone(),
                lease_ns: self.lease_ns,
                grant,
            };
            let ship = self.note_ship(sim, &id, node);
            self.send(sim, node, &msg, ship);
            if let Some(a) = self.adapted.get_mut(&name) {
                a.grants.insert(id.clone(), grant);
            }
            self.log(&BaseWalOp::GrantSet {
                name,
                ext_id: id.clone(),
                grant,
            });
        }
    }

    /// Removes an extension from the catalog and revokes it everywhere.
    pub fn revoke_extension(&mut self, sim: &mut dyn NetPort, ext_id: &str, reason: &str) {
        self.catalog.remove(ext_id);
        self.publish_ctx.remove(ext_id);
        self.log(&BaseWalOp::Revoked {
            ext_id: ext_id.to_string(),
        });
        let mut targets: Vec<NodeId> = self
            .adapted
            .values()
            .filter(|a| a.present && a.grants.contains_key(ext_id))
            .map(|a| a.node)
            .collect();
        // Node order: revocation sends must not follow hash order.
        targets.sort_by_key(|n| n.0);
        for node in targets {
            let msg = MidasMsg::Revoke {
                ext_id: ext_id.to_string(),
                reason: reason.to_string(),
            };
            self.send(sim, node, &msg, TraceCtx::NIL);
            self.count("midas.base.revocations");
        }
        for a in self.adapted.values_mut() {
            a.grants.remove(ext_id);
        }
    }

    /// Processes one inbox entry of the host node.
    pub fn handle(&mut self, sim: &mut dyn NetPort, incoming: &Incoming) -> Vec<BaseEvent> {
        match incoming {
            Incoming::Timer { token, .. } if Some(*token) == self.scan_token => {
                self.scan(sim);
                self.sync_replicas(sim);
                self.scan_token =
                    Some(sim.set_timer(self.node, self.scan_interval_ns, SCAN_TAG));
            }
            Incoming::Message {
                from,
                channel,
                payload,
                ..
            } if &**channel == CHANNEL => {
                if let Ok(env) = pmp_wire::from_bytes::<Traced<MidasMsg>>(payload) {
                    self.handle_midas(sim, *from, env.msg);
                }
            }
            other => {
                // Everything else may belong to the discovery client.
                for ev in self.discovery.handle(sim, other) {
                    self.handle_discovery(sim, ev);
                }
            }
        }
        std::mem::take(&mut self.events)
    }

    fn handle_discovery(&mut self, sim: &mut dyn NetPort, ev: DiscoveryEvent) {
        if let DiscoveryEvent::LookupDone { req, items } = ev {
            if self.pending_scan != Some(req) {
                return;
            }
            self.pending_scan = None;
            let now = sim.now();
            let _ = now;
            // Mark presence.
            let mut present: HashMap<String, NodeId> = HashMap::new();
            for item in &items {
                present.insert(item.name.clone(), NodeId(item.provider));
            }
            // New nodes: deliver the catalog.
            let mut new_nodes: Vec<(String, NodeId)> = present
                .iter()
                .filter(|(name, _)| {
                    self.adapted.get(*name).is_none_or(|a| !a.present)
                })
                .map(|(n, id)| (n.clone(), *id))
                .collect();
            // Deliver in name order — catalog sends are observable.
            new_nodes.sort();
            for (name, node) in new_nodes {
                if let Some(entry) = self.roaming_cache.get(&name).cloned() {
                    // The node roamed here with a migratable record:
                    // take over its leases instead of re-delivering.
                    let (rebound, delivered) = self.adopt_roamer(sim, node, &name, &entry);
                    self.roam_drop(&name);
                    self.events.push(BaseEvent::NodeMigrated {
                        node_name: name,
                        rebound,
                        delivered,
                    });
                } else {
                    let delivered = self.deliver_catalog(sim, node, &name);
                    self.events.push(BaseEvent::NodeDiscovered {
                        node_name: name,
                        delivered,
                    });
                }
            }
            // Known nodes still present: keep their leases alive.
            let mut renewals: Vec<(NodeId, Vec<u64>)> = self
                .adapted
                .iter()
                .filter(|(name, a)| a.present && present.contains_key(*name))
                .map(|(_, a)| {
                    let mut grants: Vec<u64> = a.grants.values().copied().collect();
                    grants.sort_unstable();
                    (a.node, grants)
                })
                .collect();
            renewals.sort_by_key(|(n, _)| n.0);
            for (node, grants) in renewals {
                for grant in grants {
                    let msg = MidasMsg::LeaseRenew { grant };
                    self.send(sim, node, &msg, TraceCtx::NIL);
                    self.count("midas.base.lease_renewals_sent");
                }
            }
            // Departed nodes: mark, event, and roam.
            let mut departed: Vec<String> = self
                .adapted
                .iter()
                .filter(|(name, a)| a.present && !present.contains_key(*name))
                .map(|(name, _)| name.clone())
                .collect();
            departed.sort();
            for name in departed {
                let handoff = self.adapted.get_mut(&name).map(|a| {
                    a.present = false;
                    // Sorted map: the grants travel inside the handoff
                    // payload, so their order is byte-observable.
                    a.grants
                        .iter()
                        .map(|(k, v)| (k.clone(), *v))
                        .collect::<BTreeMap<String, u64>>()
                });
                if let Some(grants) = handoff {
                    // Migratable handoff: the leases *and* the signed
                    // packages behind them, so the adopting base can
                    // take over without re-delivering anything.
                    let mut exts = Vec::new();
                    for id in grants.keys() {
                        let ext = self
                            .catalog
                            .get(id)
                            .cloned()
                            .or_else(|| self.foreign.get(id).cloned());
                        if let Some(ext) = ext {
                            exts.push(ext);
                        }
                    }
                    let neighbors = self.neighbors.clone();
                    for nb in neighbors {
                        let msg = MidasMsg::HandoffState {
                            node_name: name.clone(),
                            grants: grants.clone(),
                            exts: exts.clone(),
                        };
                        self.send(sim, nb, &msg, TraceCtx::NIL);
                        self.count("midas.base.handoffs_sent");
                    }
                }
                self.log(&BaseWalOp::Presence {
                    name: name.clone(),
                    present: false,
                });
                self.events.push(BaseEvent::NodeDeparted { node_name: name });
            }
        }
    }

    /// Merges replicated catalog entries (version-gated) and delivers
    /// anything new to nodes already present — the shared apply path of
    /// [`MidasMsg::CatalogPush`] and [`MidasMsg::StreamDelta`].
    fn merge_replicated(&mut self, sim: &mut dyn NetPort, exts: Vec<SignedExtension>) {
        let mut merged = false;
        for ext in exts {
            let Ok(pkg) = ext.open() else { continue };
            let id = pkg.meta.id;
            let before = self
                .catalog
                .get(&id)
                .and_then(|e| e.open().ok())
                .map(|p| p.meta.version);
            if before.is_some_and(|v| v >= pkg.meta.version) {
                continue;
            }
            self.catalog.put(ext.clone());
            self.log(&BaseWalOp::CatalogPut { ext });
            self.foreign.remove(&id);
            self.count("midas.base.replicated");
            merged = true;
        }
        if merged {
            // Replicated policy reaches robots already here.
            let mut names: Vec<String> = self
                .adapted
                .iter()
                .filter(|(_, a)| a.present)
                .map(|(n, _)| n.clone())
                .collect();
            names.sort();
            for name in names {
                let node = self.adapted[&name].node;
                for id in self.catalog.delivery_order() {
                    if self.adapted[&name].grants.contains_key(&id) {
                        continue;
                    }
                    let Some(ext) = self.catalog.get(&id).cloned() else {
                        continue;
                    };
                    let grant = self.fresh_grant();
                    if let Some(a) = self.adapted.get_mut(&name) {
                        a.grants.insert(id.clone(), grant);
                    }
                    self.log(&BaseWalOp::GrantSet {
                        name: name.clone(),
                        ext_id: id.clone(),
                        grant,
                    });
                    let msg = MidasMsg::Deliver {
                        ext,
                        lease_ns: self.lease_ns,
                        grant,
                    };
                    let ship = self.note_ship(sim, &id, node);
                    self.send(sim, node, &msg, ship);
                }
            }
        }
    }

    fn handle_midas(&mut self, sim: &mut dyn NetPort, from: NodeId, msg: MidasMsg) {
        match msg {
            MidasMsg::Ack {
                ext_id,
                grant,
                ok,
                reason,
            } => {
                if !ok && reason == "released" {
                    // The receiver dropped this grant on purpose
                    // (implicit dep released, upgrade, revocation):
                    // stop renewing it.
                    let dropped = self
                        .adapted
                        .iter_mut()
                        .find(|(_, a)| a.node == from)
                        .map(|(name, a)| {
                            a.grants.retain(|_, g| *g != grant);
                            name.clone()
                        });
                    if let Some(name) = dropped {
                        self.log(&BaseWalOp::GrantDropped { name, grant });
                    }
                    return;
                }
                if !ok && reason == "unknown grant" {
                    // The receiver no longer holds this grant (lost
                    // delivery, or our outage outlived its leases):
                    // redeliver that extension with a fresh grant.
                    let stale: Option<(String, String)> = self
                        .adapted
                        .iter()
                        .find(|(_, a)| a.node == from)
                        .and_then(|(name, a)| {
                            a.grants
                                .iter()
                                .find(|(_, g)| **g == grant)
                                .map(|(id, _)| (name.clone(), id.clone()))
                        });
                    if let Some((name, id)) = stale {
                        let ext = self
                            .catalog
                            .get(&id)
                            .cloned()
                            .or_else(|| self.foreign.get(&id).cloned());
                        if let Some(ext) = ext {
                            let fresh = self.fresh_grant();
                            if let Some(a) = self.adapted.get_mut(&name) {
                                a.grants.insert(id.clone(), fresh);
                            }
                            self.log(&BaseWalOp::GrantSet {
                                name,
                                ext_id: id.clone(),
                                grant: fresh,
                            });
                            let msg = MidasMsg::Deliver {
                                ext,
                                lease_ns: self.lease_ns,
                                grant: fresh,
                            };
                            let ship = self.note_ship(sim, &id, from);
                            self.send(sim, from, &msg, ship);
                        }
                    }
                    return;
                }
                let node_name = self
                    .adapted
                    .iter()
                    .find(|(_, a)| a.node == from)
                    .map(|(n, _)| n.clone())
                    .unwrap_or_else(|| from.to_string());
                self.events.push(BaseEvent::InstallAck {
                    node_name,
                    ext_id,
                    ok,
                    reason,
                });
            }
            MidasMsg::RequestDep { ext_id } => {
                // Deliver the dependency closure of the requested id.
                for id in self.catalog.closure_of(&ext_id) {
                    if let Some(ext) = self.catalog.get(&id).cloned() {
                        let grant = self.fresh_grant();
                        let holder = self
                            .adapted
                            .iter_mut()
                            .find(|(_, a)| a.node == from)
                            .map(|(name, a)| {
                                a.grants.insert(id.clone(), grant);
                                name.clone()
                            });
                        if let Some(name) = holder {
                            self.log(&BaseWalOp::GrantSet {
                                name,
                                ext_id: id.clone(),
                                grant,
                            });
                        }
                        let msg = MidasMsg::Deliver {
                            ext,
                            lease_ns: self.lease_ns,
                            grant,
                        };
                        let ship = self.note_ship(sim, &id, from);
                        self.send(sim, from, &msg, ship);
                    }
                }
            }
            MidasMsg::RoamingHandoff { node_name, ext_ids } => {
                // Legacy handoff: ids only, no grants to migrate.
                // Grant 0 never matches a live lease, so adoption falls
                // back to the unknown-grant redelivery path.
                if self.adapted.get(&node_name).is_some_and(|a| a.present) {
                    return;
                }
                let grants: BTreeMap<String, u64> =
                    ext_ids.iter().map(|id| (id.clone(), 0)).collect();
                self.roam_insert(
                    &node_name,
                    RoamEntry {
                        from: from.0,
                        grants,
                        exts: Vec::new(),
                        seq: 0,
                    },
                );
                self.count("midas.base.handoffs_received");
                self.events
                    .push(BaseEvent::HandoffReceived { node_name, ext_ids });
            }
            MidasMsg::HandoffState {
                node_name,
                grants,
                exts,
            } => {
                // A node we are actively serving did not roam anywhere.
                if self.adapted.get(&node_name).is_some_and(|a| a.present) {
                    return;
                }
                let ext_ids: Vec<String> = grants.keys().cloned().collect();
                self.roam_insert(
                    &node_name,
                    RoamEntry {
                        from: from.0,
                        grants,
                        exts,
                        seq: 0,
                    },
                );
                self.count("midas.base.handoffs_received");
                self.events
                    .push(BaseEvent::HandoffReceived { node_name, ext_ids });
            }
            MidasMsg::MovementExport { node_name, records } => {
                self.events
                    .push(BaseEvent::MovementImport { node_name, records });
            }
            MidasMsg::CatalogDigest { digest } => {
                if digest != self.catalog_digest() {
                    let have = self.catalog_inventory();
                    self.send(sim, from, &MidasMsg::CatalogPull { have }, TraceCtx::NIL);
                }
            }
            MidasMsg::CatalogPull { have } => {
                let held: BTreeMap<String, u32> = have.into_iter().collect();
                let mut exts = Vec::new();
                for (id, version) in self.catalog_inventory() {
                    if held.get(&id).is_none_or(|v| *v < version) {
                        if let Some(ext) = self.catalog.get(&id).cloned() {
                            exts.push(ext);
                        }
                    }
                }
                if !exts.is_empty() {
                    self.send(sim, from, &MidasMsg::CatalogPush { exts }, TraceCtx::NIL);
                }
            }
            MidasMsg::CatalogPush { exts } => {
                self.merge_replicated(sim, exts);
            }
            MidasMsg::StreamDelta { rev, delta } => {
                // Steady-state anti-entropy riding the rev stream: the
                // delta is the sender's own catalog WAL record, applied
                // through the same version-gated merge as a pull-based
                // CatalogPush. Rev tracking is advisory — a gap means a
                // lost or reordered delivery, repaired by the next
                // digest exchange, so it only bumps a counter here.
                let last = self.stream_revs.get(&from.0).copied().unwrap_or(0);
                if rev != last + 1 {
                    self.count("midas.base.stream_gaps");
                }
                if rev > last {
                    self.stream_revs.insert(from.0, rev);
                }
                let Ok(op) = pmp_wire::from_bytes::<BaseWalOp>(&delta) else {
                    return;
                };
                if let BaseWalOp::CatalogPut { ext } = op {
                    self.count("midas.base.stream_applied");
                    self.merge_replicated(sim, vec![ext]);
                }
            }
            MidasMsg::LeaseSync { entries } => {
                // Shadow lease table: nodes a replica is serving become
                // adoptable here without redelivery if it dies. No
                // event — this is background replication.
                for (name, _node, grants) in entries {
                    if self.adapted.get(&name).is_some_and(|a| a.present) {
                        continue;
                    }
                    let (exts, unchanged) = match self.roaming_cache.get(&name) {
                        Some(e) if e.from == from.0 => (e.exts.clone(), e.grants == grants),
                        _ => (Vec::new(), false),
                    };
                    if unchanged {
                        continue;
                    }
                    self.roam_insert(
                        &name,
                        RoamEntry {
                            from: from.0,
                            grants,
                            exts,
                            seq: 0,
                        },
                    );
                }
            }
            // Receiver-bound messages are ignored by the base.
            MidasMsg::Deliver { .. }
            | MidasMsg::LeaseRenew { .. }
            | MidasMsg::Revoke { .. }
            | MidasMsg::Replace { .. }
            | MidasMsg::GrantTransfer { .. } => {}
        }
    }
}
