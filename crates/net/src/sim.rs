//! The discrete-event simulator: nodes, areas, mobility, radio
//! connectivity, and the event queue.

use crate::clock::{ClockHandle, SimTime};
use crate::geo::{Area, AreaId, Position};
use crate::link::LinkModel;
use crate::node::{Incoming, NodeId, SimNode};
use crate::port::{NetCmd, NetPort};
use crate::rng::SimRng;
use crate::trace::{Trace, TraceEntry};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;

/// One event routed to a node within an epoch, stamped with its
/// simulated delivery instant so the cell's clock can be set per event.
#[derive(Debug)]
pub struct TimedIncoming {
    /// The event's simulated time.
    pub at: SimTime,
    /// The event itself.
    pub incoming: Incoming,
}

/// All events of one conservative lookahead window, partitioned by
/// destination node. Produced by [`Simulator::drain_epoch`].
#[derive(Debug)]
pub struct Epoch {
    /// First event time of the window (inclusive).
    pub start: SimTime,
    /// Window end (exclusive): `min(start + lookahead, until + 1)`.
    pub end: SimTime,
    /// Per-node event batches, indexed by `NodeId.0`. Within a batch
    /// events are in global `(time, seq)` order.
    pub batches: Vec<Vec<TimedIncoming>>,
}

impl Epoch {
    /// Number of nodes with at least one event in this window.
    pub fn busy_nodes(&self) -> usize {
        self.batches.iter().filter(|b| !b.is_empty()).count()
    }
}

#[derive(Debug)]
enum Pending {
    Deliver {
        to: NodeId,
        from: NodeId,
        channel: Arc<str>,
        payload: Vec<u8>,
        sent_at: SimTime,
    },
    TimerFire {
        node: NodeId,
        token: u64,
        tag: Arc<str>,
    },
    Move {
        node: NodeId,
        pos: Position,
    },
}

#[derive(Debug)]
struct QueueEntry {
    at: SimTime,
    seq: u64,
    pending: Pending,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The deterministic wireless-world simulator.
///
/// Protocol logic lives outside: components call [`Simulator::send`] /
/// [`Simulator::broadcast`] / [`Simulator::set_timer`], then a driver
/// loop calls [`Simulator::step`] and hands each node's drained inbox to
/// its handlers. Determinism: all randomness (loss, jitter) comes from a
/// seeded RNG, and simultaneous events fire in submission order.
///
/// # Examples
///
/// ```
/// use pmp_net::prelude::*;
///
/// let mut sim = Simulator::new(42);
/// let a = sim.add_node("a", Position::new(0.0, 0.0), 50.0);
/// let b = sim.add_node("b", Position::new(10.0, 0.0), 50.0);
/// sim.send(a, b, "chat", b"hello".to_vec());
/// sim.step();
/// let inbox = sim.drain_inbox(b);
/// assert_eq!(inbox.len(), 1);
/// ```
#[derive(Debug)]
pub struct Simulator {
    clock: ClockHandle,
    nodes: Vec<SimNode>,
    areas: Vec<Area>,
    queue: BinaryHeap<Reverse<QueueEntry>>,
    seq: u64,
    next_timer_token: u64,
    rng: SimRng,
    link: LinkModel,
    partitions: HashSet<(NodeId, NodeId)>,
    /// Wired backhaul segments (both directions): unicast sends between
    /// these pairs ignore radio range and are never lost, modelling the
    /// LAN that connects federated base stations. Partitions still cut
    /// them (a backhaul switch can fail too).
    wired: HashSet<(NodeId, NodeId)>,
    /// Per-pair FIFO enforcement: a later send between the same two
    /// nodes never overtakes an earlier one (single-channel radio
    /// between one pair behaves like a FIFO link).
    fifo: std::collections::HashMap<(NodeId, NodeId), SimTime>,
    /// Delivery statistics and optional log.
    pub trace: Trace,
}

impl Simulator {
    /// Creates a simulator with the default link model and the given
    /// RNG seed.
    pub fn new(seed: u64) -> Self {
        Self::with_link(seed, LinkModel::default())
    }

    /// Creates a simulator with an explicit link model.
    pub fn with_link(seed: u64, link: LinkModel) -> Self {
        Self {
            clock: ClockHandle::new(),
            nodes: Vec::new(),
            areas: Vec::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            next_timer_token: 1,
            rng: SimRng::new(seed),
            link,
            partitions: HashSet::new(),
            wired: HashSet::new(),
            fifo: std::collections::HashMap::new(),
            trace: Trace::default(),
        }
    }

    /// Clamps a sampled delivery time so the (from, to) pair stays FIFO.
    fn fifo_clamp(&mut self, from: NodeId, to: NodeId, at: SimTime) -> SimTime {
        let entry = self.fifo.entry((from, to)).or_insert(SimTime::ZERO);
        let at = if at <= *entry { entry.plus(1) } else { at };
        *entry = at;
        at
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// A shareable clock handle (for VMs and external components).
    pub fn clock(&self) -> ClockHandle {
        self.clock.clone()
    }

    /// Mirrors delivery statistics into `shared` (counters `net.sim.*`
    /// and `net.channel.<name>.bytes`, deliveries as journal events)
    /// and stamps the shared journal with this simulator's clock.
    pub fn attach_telemetry(&mut self, shared: &pmp_telemetry::Shared) {
        let clock = self.clock();
        shared.set_clock(Arc::new(move || clock.now().0));
        self.trace.attach_telemetry(shared);
    }

    // ------------------------------------------------------------------
    // World construction
    // ------------------------------------------------------------------

    /// Adds a node; returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, pos: Position, radio_range: f64) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(SimNode::new(id, name.into(), pos, radio_range));
        id
    }

    /// Adds a rectangular area; returns its id.
    pub fn add_area(&mut self, name: impl Into<String>, min: Position, max: Position) -> AreaId {
        let id = AreaId(self.areas.len() as u32);
        self.areas.push(Area {
            id,
            name: name.into(),
            min,
            max,
        });
        id
    }

    /// Immutable node access.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn node(&self, id: NodeId) -> &SimNode {
        &self.nodes[id.0 as usize]
    }

    /// Mutable node access.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn node_mut(&mut self, id: NodeId) -> &mut SimNode {
        &mut self.nodes[id.0 as usize]
    }

    /// All node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32).map(NodeId).collect()
    }

    /// Area metadata.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn area(&self, id: AreaId) -> &Area {
        &self.areas[id.0 as usize]
    }

    /// The (first) area containing the node's position, if any.
    pub fn node_area(&self, id: NodeId) -> Option<AreaId> {
        let pos = self.node(id).pos;
        self.areas.iter().find(|a| a.contains(pos)).map(|a| a.id)
    }

    /// Moves a node immediately.
    pub fn move_node(&mut self, id: NodeId, pos: Position) {
        self.node_mut(id).pos = pos;
    }

    /// Schedules a move at a future time (simple waypoint mobility).
    pub fn schedule_move(&mut self, id: NodeId, at: SimTime, pos: Position) {
        self.push(at, Pending::Move { node: id, pos });
    }

    /// Turns a node's radio on or off.
    pub fn set_online(&mut self, id: NodeId, online: bool) {
        self.node_mut(id).online = online;
    }

    /// Blocks direct communication between two nodes (both directions) —
    /// partition injection for failure testing.
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.partitions.insert((a, b));
        self.partitions.insert((b, a));
    }

    /// Removes a partition.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.partitions.remove(&(a, b));
        self.partitions.remove(&(b, a));
    }

    /// Adds a wired backhaul segment between two nodes (both
    /// directions): their unicast sends ignore radio range and loss,
    /// like the LAN linking federated base stations. Broadcasts stay
    /// radio-only, and partitions still sever the pair.
    pub fn add_wired_link(&mut self, a: NodeId, b: NodeId) {
        self.wired.insert((a, b));
        self.wired.insert((b, a));
    }

    /// Whether `a` and `b` share a wired backhaul segment.
    pub fn is_wired(&self, a: NodeId, b: NodeId) -> bool {
        self.wired.contains(&(a, b))
    }

    /// Multiplies every latency component of the link model by
    /// `mult` (base latency, per-byte cost, and jitter; loss is
    /// untouched). Models a degraded radio environment — the chaos
    /// harness uses it to inject latency regressions that the soak
    /// perf oracles must catch. `mult = 1` is a no-op.
    pub fn scale_link_latency(&mut self, mult: u32) {
        let m = u64::from(mult.max(1));
        self.link.base_latency_ns = self.link.base_latency_ns.saturating_mul(m);
        self.link.per_byte_ns = self.link.per_byte_ns.saturating_mul(m);
        self.link.jitter_ns = self.link.jitter_ns.saturating_mul(m);
    }

    /// The link model currently in force.
    pub fn link_model(&self) -> &LinkModel {
        &self.link
    }

    // ------------------------------------------------------------------
    // Communication
    // ------------------------------------------------------------------

    fn connected(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            // Loopback: components on one node always reach each other.
            return self.node(from).online;
        }
        if self.partitions.contains(&(from, to)) {
            return false;
        }
        let f = self.node(from);
        let t = self.node(to);
        if !(f.online && t.online) {
            return false;
        }
        // Wired backhaul: range does not apply.
        if self.wired.contains(&(from, to)) {
            return true;
        }
        f.pos.distance(t.pos) <= f.radio_range
    }

    /// Sends a unicast message. Returns `true` if the copy was queued
    /// (in range and not lost); the receiver must *still* be in range at
    /// delivery time.
    pub fn send(&mut self, from: NodeId, to: NodeId, channel: &str, payload: Vec<u8>) -> bool {
        self.trace.record_sent();
        if !self.connected(from, to) {
            self.trace.record_drop_range();
            return false;
        }
        let now = self.now();
        // Wired segments are reliable and jitter-free, and sample no
        // RNG — backhaul traffic cannot shift the radio's loss stream.
        let sampled = if self.wired.contains(&(from, to)) {
            Some(self.link.sample_wired(now, payload.len()))
        } else {
            self.link.sample(now, payload.len(), &mut self.rng)
        };
        match sampled {
            None => {
                self.trace.record_drop_loss();
                false
            }
            Some(at) => {
                let at = self.fifo_clamp(from, to, at);
                self.push(
                    at,
                    Pending::Deliver {
                        to,
                        from,
                        channel: Arc::from(channel),
                        payload,
                        sent_at: now,
                    },
                );
                true
            }
        }
    }

    /// Broadcasts to every node currently in range; returns the number
    /// of copies queued.
    pub fn broadcast(&mut self, from: NodeId, channel: &str, payload: Vec<u8>) -> usize {
        self.trace.record_broadcast();
        let targets: Vec<NodeId> = self
            .node_ids()
            .into_iter()
            .filter(|&to| self.connected(from, to))
            .collect();
        let mut queued = 0;
        let now = self.now();
        for to in targets {
            match self.link.sample(now, payload.len(), &mut self.rng) {
                None => self.trace.record_drop_loss(),
                Some(at) => {
                    let at = self.fifo_clamp(from, to, at);
                    self.push(
                        at,
                        Pending::Deliver {
                            to,
                            from,
                            channel: Arc::from(channel),
                            payload: payload.clone(),
                            sent_at: now,
                        },
                    );
                    queued += 1;
                }
            }
        }
        queued
    }

    /// Sets a one-shot timer on a node; the token identifies the firing
    /// in the inbox.
    pub fn set_timer(&mut self, node: NodeId, delay_ns: u64, tag: &str) -> u64 {
        let token = self.next_timer_token;
        self.next_timer_token += 1;
        let at = self.now().plus(delay_ns);
        self.push(
            at,
            Pending::TimerFire {
                node,
                token,
                tag: Arc::from(tag),
            },
        );
        token
    }

    /// Drains a node's inbox.
    pub fn drain_inbox(&mut self, id: NodeId) -> Vec<Incoming> {
        self.node_mut(id).inbox.drain(..).collect()
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    fn push(&mut self, at: SimTime, pending: Pending) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueueEntry { at, seq, pending }));
    }

    /// `true` if events remain.
    pub fn has_events(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Time of the next pending event.
    pub fn peek_next(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(e)| e.at)
    }

    /// Advances to the next event, processes *all* events at that
    /// instant, and returns the new time. Returns `None` when idle.
    pub fn step(&mut self) -> Option<SimTime> {
        let at = self.peek_next()?;
        self.clock.set(at);
        while self.peek_next() == Some(at) {
            let Reverse(entry) = self.queue.pop().expect("peeked");
            self.process(entry.pending);
        }
        Some(at)
    }

    /// Runs events until simulated time exceeds `until` (events at
    /// exactly `until` are processed). The clock ends at
    /// `max(now, until)` even if the queue drains early.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(next) = self.peek_next() {
            if next > until {
                break;
            }
            self.step();
        }
        if self.now() < until {
            self.clock.set(until);
        }
    }

    /// Runs for `delta_ns` of simulated time from now.
    pub fn run_for(&mut self, delta_ns: u64) {
        let until = self.now().plus(delta_ns);
        self.run_until(until);
    }

    fn process(&mut self, pending: Pending) {
        match pending {
            Pending::Deliver {
                to,
                from,
                channel,
                payload,
                sent_at,
            } => {
                // Mobility check at delivery time: the receiver may have
                // left the sender's range while the message was in flight.
                if !self.connected(from, to) {
                    self.trace.record_drop_range();
                    return;
                }
                self.trace.record_delivery(TraceEntry {
                    at: self.now(),
                    from,
                    to,
                    channel: channel.to_string(),
                    bytes: payload.len(),
                });
                self.node_mut(to).inbox.push_back(Incoming::Message {
                    from,
                    channel,
                    payload,
                    sent_at,
                });
            }
            Pending::TimerFire { node, token, tag } => {
                self.trace.record_timer();
                self.node_mut(node)
                    .inbox
                    .push_back(Incoming::Timer { token, tag });
            }
            Pending::Move { node, pos } => {
                self.node_mut(node).pos = pos;
            }
        }
    }

    // ------------------------------------------------------------------
    // Sharded execution: epoch extraction and command merge
    // ------------------------------------------------------------------

    /// The conservative lookahead window, in nanoseconds: no message
    /// sent at time `t` can arrive before `t + lookahead`, because the
    /// link's base latency is the minimum of every sampled delay. Events
    /// within one window are therefore causally independent across
    /// nodes and may be dispatched concurrently.
    pub fn lookahead(&self) -> u64 {
        self.link.base_latency_ns.max(1)
    }

    /// Drains the next epoch: every queued event in
    /// `[next_event_time, min(next_event_time + lookahead, until + 1))`,
    /// partitioned by destination node. Returns `None` when the next
    /// event lies beyond `until` (or the queue is idle).
    ///
    /// Scheduler-side effects stay here and stay serial: moves are
    /// applied inline, deliveries are connectivity-checked and traced at
    /// their own timestamps, and the global clock advances through the
    /// window. Node-side dispatch is the driver's job.
    pub fn drain_epoch(&mut self, until: SimTime) -> Option<Epoch> {
        let start = self.peek_next()?;
        if start > until {
            return None;
        }
        let end = start.plus(self.lookahead()).min(until.plus(1));
        let mut batches: Vec<Vec<TimedIncoming>> =
            (0..self.nodes.len()).map(|_| Vec::new()).collect();
        while let Some(at) = self.peek_next() {
            if at >= end {
                break;
            }
            self.clock.set(at);
            let Reverse(entry) = self.queue.pop().expect("peeked");
            match entry.pending {
                Pending::Deliver {
                    to,
                    from,
                    channel,
                    payload,
                    sent_at,
                } => {
                    if !self.connected(from, to) {
                        self.trace.record_drop_range();
                        continue;
                    }
                    self.trace.record_delivery(TraceEntry {
                        at,
                        from,
                        to,
                        channel: channel.to_string(),
                        bytes: payload.len(),
                    });
                    batches[to.0 as usize].push(TimedIncoming {
                        at,
                        incoming: Incoming::Message {
                            from,
                            channel,
                            payload,
                            sent_at,
                        },
                    });
                }
                Pending::TimerFire { node, token, tag } => {
                    self.trace.record_timer();
                    batches[node.0 as usize].push(TimedIncoming {
                        at,
                        incoming: Incoming::Timer { token, tag },
                    });
                }
                Pending::Move { node, pos } => {
                    self.nodes[node.0 as usize].pos = pos;
                }
            }
        }
        Some(Epoch { start, end, batches })
    }

    /// Replays buffered node effects against the scheduler. The caller
    /// passes commands in deterministic `(time, source rank, seq)`
    /// order; loss and jitter are sampled *here*, so the RNG stream
    /// depends only on that order — never on how many threads computed
    /// the epoch.
    pub fn apply_cmds(&mut self, cmds: impl IntoIterator<Item = NetCmd>) {
        for cmd in cmds {
            self.apply_cmd(cmd);
        }
    }

    fn apply_cmd(&mut self, cmd: NetCmd) {
        let now = self.now();
        match cmd {
            NetCmd::Send {
                at,
                from,
                to,
                channel,
                payload,
            } => {
                self.trace.record_sent();
                if !self.connected(from, to) {
                    self.trace.record_drop_range();
                    return;
                }
                match self.link.sample(at, payload.len(), &mut self.rng) {
                    None => self.trace.record_drop_loss(),
                    Some(deliver_at) => {
                        let deliver_at = self.fifo_clamp(from, to, deliver_at);
                        debug_assert!(
                            deliver_at >= now,
                            "lookahead violated: delivery {deliver_at:?} before now {now:?}"
                        );
                        self.push(
                            deliver_at,
                            Pending::Deliver {
                                to,
                                from,
                                channel: Arc::from(channel.as_str()),
                                payload,
                                sent_at: at,
                            },
                        );
                    }
                }
            }
            NetCmd::Broadcast {
                at,
                from,
                channel,
                payload,
            } => {
                self.trace.record_broadcast();
                let targets: Vec<NodeId> = self
                    .node_ids()
                    .into_iter()
                    .filter(|&to| self.connected(from, to))
                    .collect();
                for to in targets {
                    match self.link.sample(at, payload.len(), &mut self.rng) {
                        None => self.trace.record_drop_loss(),
                        Some(deliver_at) => {
                            let deliver_at = self.fifo_clamp(from, to, deliver_at);
                            self.push(
                                deliver_at,
                                Pending::Deliver {
                                    to,
                                    from,
                                    channel: Arc::from(channel.as_str()),
                                    payload: payload.clone(),
                                    sent_at: at,
                                },
                            );
                        }
                    }
                }
            }
            NetCmd::Timer {
                at,
                node,
                token,
                delay_ns,
                tag,
            } => {
                // A sub-lookahead delay could point inside the drained
                // window; clamp to "now" so the clock stays monotonic
                // (documented divergence — every real timer in the
                // platform is orders of magnitude above the lookahead).
                let fire_at = at.plus(delay_ns).max(now);
                self.push(
                    fire_at,
                    Pending::TimerFire {
                        node,
                        token,
                        tag: Arc::from(tag.as_str()),
                    },
                );
            }
        }
    }

    /// Stable 64-bit digest of the delivery trace (counters plus the
    /// per-delivery log when logging is enabled). See [`Trace::digest`].
    pub fn trace_digest(&self) -> u64 {
        self.trace.digest()
    }
}

impl NetPort for Simulator {
    fn now(&self) -> SimTime {
        Simulator::now(self)
    }

    fn send(&mut self, from: NodeId, to: NodeId, channel: &str, payload: Vec<u8>) -> bool {
        Simulator::send(self, from, to, channel, payload)
    }

    fn broadcast(&mut self, from: NodeId, channel: &str, payload: Vec<u8>) -> usize {
        Simulator::broadcast(self, from, channel, payload)
    }

    fn set_timer(&mut self, node: NodeId, delay_ns: u64, tag: &str) -> u64 {
        Simulator::set_timer(self, node, delay_ns, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::with_link(7, LinkModel::ideal());
        let a = sim.add_node("a", Position::new(0.0, 0.0), 50.0);
        let b = sim.add_node("b", Position::new(10.0, 0.0), 50.0);
        (sim, a, b)
    }

    #[test]
    fn unicast_delivery() {
        let (mut sim, a, b) = world();
        assert!(sim.send(a, b, "c", vec![1, 2, 3]));
        sim.step();
        let inbox = sim.drain_inbox(b);
        assert_eq!(inbox.len(), 1);
        match &inbox[0] {
            Incoming::Message { from, channel, payload, .. } => {
                assert_eq!(*from, a);
                assert_eq!(&**channel, "c");
                assert_eq!(payload, &[1, 2, 3]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(sim.trace.stats.delivered, 1);
    }

    #[test]
    fn out_of_range_send_fails() {
        let (mut sim, a, b) = world();
        sim.move_node(b, Position::new(1000.0, 0.0));
        assert!(!sim.send(a, b, "c", vec![]));
        assert_eq!(sim.trace.stats.dropped_range, 1);
    }

    #[test]
    fn in_flight_message_lost_when_receiver_leaves() {
        let mut sim = Simulator::new(7); // default link: ~1ms latency
        let a = sim.add_node("a", Position::new(0.0, 0.0), 50.0);
        let b = sim.add_node("b", Position::new(10.0, 0.0), 50.0);
        assert!(sim.send(a, b, "c", vec![0; 64]));
        // b leaves range before the ~1 ms delivery.
        sim.move_node(b, Position::new(1000.0, 0.0));
        sim.step();
        assert!(sim.drain_inbox(b).is_empty());
        assert_eq!(sim.trace.stats.dropped_range, 1);
    }

    #[test]
    fn wired_link_ignores_range_and_loss() {
        let mut sim = Simulator::with_link(7, LinkModel::lossy(1.0));
        let a = sim.add_node("base-a", Position::new(0.0, 0.0), 50.0);
        let b = sim.add_node("base-b", Position::new(1000.0, 0.0), 50.0);
        assert!(!sim.send(a, b, "c", vec![1]), "radio: out of range");
        sim.add_wired_link(a, b);
        assert!(sim.is_wired(a, b) && sim.is_wired(b, a));
        // Reliable despite a 100%-loss radio, and despite the distance.
        assert!(sim.send(a, b, "c", vec![2]));
        sim.run_for(5_000_000);
        assert_eq!(sim.drain_inbox(b).len(), 1);
    }

    #[test]
    fn wired_link_is_still_severed_by_partitions() {
        let mut sim = Simulator::with_link(7, LinkModel::ideal());
        let a = sim.add_node("base-a", Position::new(0.0, 0.0), 50.0);
        let b = sim.add_node("base-b", Position::new(1000.0, 0.0), 50.0);
        sim.add_wired_link(a, b);
        sim.partition(a, b);
        assert!(!sim.send(a, b, "c", vec![1]));
        sim.heal(a, b);
        assert!(sim.send(a, b, "c", vec![2]));
    }

    #[test]
    fn wired_sends_do_not_perturb_the_radio_rng() {
        // Two identical lossy worlds; one also exchanges wired traffic.
        // The radio messages must meet identical fates in both.
        let build = |wired_chatter: bool| {
            let mut sim = Simulator::with_link(11, LinkModel::lossy(0.5));
            let a = sim.add_node("a", Position::new(0.0, 0.0), 50.0);
            let b = sim.add_node("b", Position::new(10.0, 0.0), 50.0);
            let w1 = sim.add_node("w1", Position::new(0.0, 500.0), 50.0);
            let w2 = sim.add_node("w2", Position::new(500.0, 500.0), 50.0);
            sim.add_wired_link(w1, w2);
            let mut fates = Vec::new();
            for i in 0..32u8 {
                if wired_chatter {
                    sim.send(w1, w2, "backhaul", vec![i]);
                }
                fates.push(sim.send(a, b, "radio", vec![i]));
            }
            fates
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn broadcast_reaches_only_nodes_in_range() {
        let mut sim = Simulator::with_link(7, LinkModel::ideal());
        let base = sim.add_node("base", Position::new(0.0, 0.0), 30.0);
        let near = sim.add_node("near", Position::new(10.0, 0.0), 30.0);
        let far = sim.add_node("far", Position::new(100.0, 0.0), 30.0);
        let queued = sim.broadcast(base, "ann", b"hi".to_vec());
        assert_eq!(queued, 2, "near node plus loopback copy");
        sim.step();
        assert_eq!(sim.drain_inbox(near).len(), 1);
        assert_eq!(sim.drain_inbox(base).len(), 1, "loopback multicast");
        assert!(sim.drain_inbox(far).is_empty());
    }

    #[test]
    fn loopback_unicast_delivers() {
        let (mut sim, a, _) = world();
        assert!(sim.send(a, a, "self", vec![9]));
        sim.step();
        assert_eq!(sim.drain_inbox(a).len(), 1);
    }

    #[test]
    fn timers_fire_in_order() {
        let (mut sim, a, _) = world();
        sim.set_timer(a, 3_000, "late");
        sim.set_timer(a, 1_000, "early");
        sim.run_for(10_000);
        let inbox = sim.drain_inbox(a);
        let tags: Vec<String> = inbox
            .iter()
            .map(|i| match i {
                Incoming::Timer { tag, .. } => tag.to_string(),
                _ => panic!(),
            })
            .collect();
        assert_eq!(tags, ["early", "late"]);
        assert_eq!(sim.trace.stats.timers, 2);
    }

    #[test]
    fn partitions_block_and_heal() {
        let (mut sim, a, b) = world();
        sim.partition(a, b);
        assert!(!sim.send(a, b, "c", vec![]));
        assert!(!sim.send(b, a, "c", vec![]));
        sim.heal(a, b);
        assert!(sim.send(a, b, "c", vec![]));
    }

    #[test]
    fn offline_nodes_unreachable() {
        let (mut sim, a, b) = world();
        sim.set_online(b, false);
        assert!(!sim.send(a, b, "c", vec![]));
        sim.set_online(b, true);
        assert!(sim.send(a, b, "c", vec![]));
    }

    #[test]
    fn scheduled_moves_apply_at_time() {
        let (mut sim, a, _) = world();
        sim.schedule_move(a, SimTime::from_millis(5), Position::new(99.0, 0.0));
        assert_eq!(sim.node(a).pos, Position::new(0.0, 0.0));
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(sim.node(a).pos, Position::new(99.0, 0.0));
    }

    #[test]
    fn areas_track_node_positions() {
        let mut sim = Simulator::new(1);
        let hall_a = sim.add_area("hall-a", Position::new(0.0, 0.0), Position::new(50.0, 50.0));
        let hall_b = sim.add_area("hall-b", Position::new(100.0, 0.0), Position::new(150.0, 50.0));
        let robot = sim.add_node("robot", Position::new(25.0, 25.0), 30.0);
        assert_eq!(sim.node_area(robot), Some(hall_a));
        sim.move_node(robot, Position::new(125.0, 25.0));
        assert_eq!(sim.node_area(robot), Some(hall_b));
        sim.move_node(robot, Position::new(75.0, 25.0));
        assert_eq!(sim.node_area(robot), None);
        assert_eq!(sim.area(hall_a).name, "hall-a");
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let (mut sim, _, _) = world();
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn per_pair_delivery_is_fifo() {
        // Many messages with jitter between the same pair must arrive
        // in send order.
        let mut sim = Simulator::new(3); // default link has jitter
        let a = sim.add_node("a", Position::new(0.0, 0.0), 50.0);
        let b = sim.add_node("b", Position::new(10.0, 0.0), 50.0);
        for i in 0..50u8 {
            sim.send(a, b, "seq", vec![i]);
        }
        sim.run_for(1_000_000_000);
        let got: Vec<u8> = sim
            .drain_inbox(b)
            .into_iter()
            .map(|inc| match inc {
                Incoming::Message { payload, .. } => payload[0],
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        let expected: Vec<u8> = (0..50).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn same_seed_same_outcome() {
        let run = |seed: u64| -> (u64, u64) {
            let mut sim = Simulator::with_link(seed, LinkModel::lossy(0.3));
            let a = sim.add_node("a", Position::new(0.0, 0.0), 50.0);
            let b = sim.add_node("b", Position::new(10.0, 0.0), 50.0);
            for _ in 0..100 {
                sim.send(a, b, "c", vec![0; 16]);
            }
            sim.run_for(1_000_000_000);
            (sim.trace.stats.delivered, sim.trace.stats.dropped_loss)
        };
        assert_eq!(run(5), run(5));
        // Loss actually happens at 30%.
        let (delivered, lost) = run(5);
        assert!(delivered > 0 && lost > 0);
        assert_eq!(delivered + lost, 100);
    }
}
