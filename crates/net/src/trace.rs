//! Delivery statistics and an optional event log.

use crate::clock::SimTime;
use crate::node::NodeId;

/// Aggregate counters over a simulation run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Unicast messages submitted.
    pub sent: u64,
    /// Message copies delivered into inboxes.
    pub delivered: u64,
    /// Copies dropped because sender/receiver were out of range or
    /// offline at send or delivery time.
    pub dropped_range: u64,
    /// Copies dropped by the link loss model.
    pub dropped_loss: u64,
    /// Broadcast operations submitted.
    pub broadcasts: u64,
    /// Timers fired.
    pub timers: u64,
}

/// One recorded delivery event (only kept when logging is enabled).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Delivery time.
    pub at: SimTime,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Channel name.
    pub channel: String,
    /// Payload size in bytes.
    pub bytes: usize,
}

/// Collects statistics and (optionally) per-delivery entries.
#[derive(Debug, Default)]
pub struct Trace {
    /// Aggregate counters.
    pub stats: NetStats,
    log_enabled: bool,
    log: Vec<TraceEntry>,
}

impl Trace {
    /// Enables/disables the per-delivery log.
    pub fn set_logging(&mut self, enabled: bool) {
        self.log_enabled = enabled;
    }

    pub(crate) fn record_delivery(&mut self, entry: TraceEntry) {
        self.stats.delivered += 1;
        if self.log_enabled {
            self.log.push(entry);
        }
    }

    /// The recorded deliveries (empty unless logging was enabled).
    pub fn log(&self) -> &[TraceEntry] {
        &self.log
    }

    /// Clears the log and zeroes the counters.
    pub fn reset(&mut self) {
        self.stats = NetStats::default();
        self.log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logging_toggle() {
        let mut t = Trace::default();
        t.record_delivery(TraceEntry {
            at: SimTime::ZERO,
            from: NodeId(0),
            to: NodeId(1),
            channel: "x".into(),
            bytes: 3,
        });
        assert_eq!(t.stats.delivered, 1);
        assert!(t.log().is_empty());
        t.set_logging(true);
        t.record_delivery(TraceEntry {
            at: SimTime::ZERO,
            from: NodeId(0),
            to: NodeId(1),
            channel: "x".into(),
            bytes: 3,
        });
        assert_eq!(t.log().len(), 1);
        t.reset();
        assert_eq!(t.stats.delivered, 0);
        assert!(t.log().is_empty());
    }
}
