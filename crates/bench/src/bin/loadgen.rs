//! pmp-stream load generator: one base, N synthetic subscribers, a
//! fixed traffic schedule, full fan-out after every burst (EXPERIMENTS
//! E18).
//!
//! ```bash
//! cargo run -p pmp-bench --release --bin loadgen -- --subscribers 1000000 --rounds 6
//! ```
//!
//! Besides the throughput numbers, the run *proves* the serialize-once
//! claim: a control run with a single subscriber executes the identical
//! simulated schedule, and the hub's `encoded` / `encoded_bytes`
//! counters — plus the platform-wide `stream.delta.encoded` telemetry
//! counter — must match the main run exactly. If encoding scaled with
//! subscriber count, this binary exits non-zero.

use pmp_bench::stream_fanout_run;

fn main() {
    let mut subscribers: usize = 1_000_000;
    let mut rounds: usize = 6;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--subscribers" => {
                subscribers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--subscribers N");
            }
            "--rounds" => {
                rounds = args.next().and_then(|v| v.parse().ok()).expect("--rounds N");
            }
            other => {
                eprintln!("unknown arg {other}; usage: loadgen [--subscribers N] [--rounds N]");
                std::process::exit(2);
            }
        }
    }

    println!("# pmp-stream loadgen — {subscribers} subscribers, {rounds} rounds");
    println!(
        "(build: {})",
        if cfg!(debug_assertions) {
            "DEBUG — use --release for meaningful absolute times"
        } else {
            "release"
        }
    );
    println!();

    // Control: same world, same schedule, one subscriber. Encoding work
    // must be identical — that is the serialize-once guarantee.
    let control = stream_fanout_run(1, rounds);
    let r = stream_fanout_run(subscribers, rounds);

    assert_eq!(
        r.encoded, control.encoded,
        "serialize-once violated: hub encoded {} deltas at {} subscribers vs {} at 1",
        r.encoded, subscribers, control.encoded
    );
    assert_eq!(
        r.encoded_bytes, control.encoded_bytes,
        "serialize-once violated: encoded_bytes scaled with subscriber count"
    );
    assert_eq!(
        r.telemetry_encoded, control.telemetry_encoded,
        "serialize-once violated: stream.delta.encoded telemetry scaled with subscriber count"
    );
    assert_eq!(
        r.deliveries,
        control.deliveries * subscribers as u64,
        "every subscriber must see the identical delta sequence"
    );

    println!("| metric | value |");
    println!("|---|---|");
    println!("| subscribers | {} |", r.subscribers);
    println!("| deltas encoded (once each) | {} |", r.encoded);
    println!("| bytes encoded | {} |", r.encoded_bytes);
    println!("| deliveries (fan-out) | {} |", r.deliveries);
    println!("| bytes delivered | {} |", r.delivered_bytes);
    println!("| fan-out wall time (s) | {:.3} |", r.fanout_wall_s);
    println!("| sustained updates/s | {:.0} |", r.updates_per_s);
    println!(
        "| amortized encode bytes/update | {:.6} |",
        r.amortized_bytes_per_update
    );
    println!("| p99 per-subscriber drain (ns) | {} |", r.p99_drain_ns);
    println!();
    println!(
        "serialize-once: OK (encoded {} == control {}, telemetry {} == {})",
        r.encoded, control.encoded, r.telemetry_encoded, control.telemetry_encoded
    );
}
