//! pmp-chaos: deterministic chaos simulation for the platform.
//!
//! FoundationDB-style simulation testing, scaled to this repo: a seed
//! compiles into an explicit [`script::Scenario`] (topology churn,
//! extension distribution, link loss, partitions, base crashes, disk
//! faults), the [`exec`] layer replays it against the real
//! [`pmp_core::Platform`] under the serial or parallel driver, the
//! [`oracle`] layer checks global invariants at every pump barrier,
//! and failures are minimized by [`shrink`] and committed as
//! [`repro`] files that CI replays forever.
//!
//! The pipeline end to end:
//!
//! ```text
//! seed ──gen──▶ Scenario ──exec──▶ RunReport{violations}
//!                  ▲                        │ failing
//!                  └──────── shrink ◀───────┘
//!                              │ minimal
//!                              ▼
//!                        .repro file ──▶ tests/chaos_repros.rs
//! ```
//!
//! Everything is deterministic: same seed, same bytes out, regardless
//! of driver, thread count, or host. See DESIGN.md §12 for the
//! invariant catalog and the soundness notes behind each slack window.

#![warn(missing_docs)]

pub mod differential;
pub mod exec;
pub mod gen;
pub mod oracle;
pub mod repro;
pub mod script;
pub mod shrink;

pub use differential::differential_check;
pub use exec::{run, run_cross, CrossReport, DriverKind, RunReport};
pub use gen::{generate, GenConfig};
pub use oracle::Violation;
pub use repro::{load, save};
pub use script::{CatalogEntry, ExtKind, Op, Scenario, Step, Topology};
pub use shrink::{shrink, ShrinkStats};

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole determinism claim, in-crate: one seed, two runs,
    /// identical reports.
    #[test]
    fn same_seed_same_report() {
        let sc = generate(1, &GenConfig::default());
        let a = run(&sc, DriverKind::Serial);
        let b = run(&sc, DriverKind::Serial);
        assert_eq!(a, b);
    }

    /// And across drivers: the cross oracle finds nothing on a healthy
    /// seed.
    #[test]
    fn serial_and_parallel_agree_on_a_quiet_seed() {
        let sc = generate(2, &GenConfig::default());
        let cross = run_cross(&sc);
        assert_eq!(
            cross.serial.trace, cross.parallel.trace,
            "trace diverged"
        );
        assert_eq!(cross.serial.observables, cross.parallel.observables);
    }
}
