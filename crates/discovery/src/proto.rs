//! The discovery wire protocol, carried on the `"discovery"` channel.

use crate::service::{ServiceId, ServiceItem, ServiceQuery};
use pmp_wire::{Reader, Wire, WireError, Writer};

/// Channel name used for all discovery traffic.
pub const CHANNEL: &str = "discovery";

/// A discovery protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum DiscoveryMsg {
    /// Registrar broadcast: "I am here" (multicast announcement).
    Announce {
        /// Registrar's human-readable name (e.g. `"lookup:hall-a"`).
        name: String,
    },
    /// Client → registrar: register a service under a lease.
    Register {
        /// The item (id ignored; assigned by the registrar).
        item: ServiceItem,
        /// Requested lease duration (ns).
        lease_ns: u64,
        /// Request correlation id.
        req: u64,
    },
    /// Registrar → client: registration accepted.
    Registered {
        /// Assigned id.
        service: ServiceId,
        /// Granted lease duration (ns).
        lease_ns: u64,
        /// Echoed correlation id.
        req: u64,
    },
    /// Client → registrar: renew a service lease.
    Renew {
        /// The service.
        service: ServiceId,
        /// Correlation id.
        req: u64,
    },
    /// Registrar → client: renewal result.
    RenewAck {
        /// The service.
        service: ServiceId,
        /// Whether the lease was still alive and got extended.
        ok: bool,
        /// Correlation id.
        req: u64,
    },
    /// Client → registrar: cancel a registration.
    Cancel {
        /// The service.
        service: ServiceId,
    },
    /// Client → registrar: look up services.
    Lookup {
        /// The query.
        query: ServiceQuery,
        /// Correlation id.
        req: u64,
    },
    /// Registrar → client: lookup results.
    LookupResult {
        /// Matching items (with assigned ids).
        items: Vec<ServiceItem>,
        /// Echoed correlation id.
        req: u64,
    },
    /// Child registrar → parent registrar: the sorted set of service
    /// types reachable anywhere in the child's subtree. Sent only when
    /// the set changes, so a quiet federation is silent.
    DirAdvertise {
        /// Sorted, deduplicated service-type names.
        types: Vec<String>,
    },
    /// A lookup routed through the directory tier instead of answered
    /// by one flat registrar.
    FedLookup {
        /// The query.
        query: ServiceQuery,
        /// Node id of the original requester.
        origin: u32,
        /// Registrar nodes traversed so far (each forwarder pushes
        /// itself); the reply retraces this stack, since only tree
        /// edges are guaranteed reachable (wired backhaul).
        path: Vec<u32>,
        /// Correlation id minted by the origin.
        req: u64,
    },
    /// Federated lookup results, routed back along the reverse of the
    /// query's path; the entry registrar makes the final radio hop to
    /// the origin node.
    FedLookupResult {
        /// Matching items (with assigned ids).
        items: Vec<ServiceItem>,
        /// Forwarding steps the query took before being answered.
        hops: u16,
        /// Node id of the original requester.
        origin: u32,
        /// Remaining return path (last element is the next stop).
        path: Vec<u32>,
        /// Echoed correlation id.
        req: u64,
    },
}

impl Wire for DiscoveryMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            DiscoveryMsg::Announce { name } => {
                w.put_u8(0);
                w.put_str(name);
            }
            DiscoveryMsg::Register {
                item,
                lease_ns,
                req,
            } => {
                w.put_u8(1);
                item.encode(w);
                w.put_u64(*lease_ns);
                w.put_u64(*req);
            }
            DiscoveryMsg::Registered {
                service,
                lease_ns,
                req,
            } => {
                w.put_u8(2);
                service.encode(w);
                w.put_u64(*lease_ns);
                w.put_u64(*req);
            }
            DiscoveryMsg::Renew { service, req } => {
                w.put_u8(3);
                service.encode(w);
                w.put_u64(*req);
            }
            DiscoveryMsg::RenewAck { service, ok, req } => {
                w.put_u8(4);
                service.encode(w);
                w.put_bool(*ok);
                w.put_u64(*req);
            }
            DiscoveryMsg::Cancel { service } => {
                w.put_u8(5);
                service.encode(w);
            }
            DiscoveryMsg::Lookup { query, req } => {
                w.put_u8(6);
                query.encode(w);
                w.put_u64(*req);
            }
            DiscoveryMsg::LookupResult { items, req } => {
                w.put_u8(7);
                items.encode(w);
                w.put_u64(*req);
            }
            DiscoveryMsg::DirAdvertise { types } => {
                w.put_u8(8);
                types.encode(w);
            }
            DiscoveryMsg::FedLookup {
                query,
                origin,
                path,
                req,
            } => {
                w.put_u8(9);
                query.encode(w);
                w.put_u32(*origin);
                path.encode(w);
                w.put_u64(*req);
            }
            DiscoveryMsg::FedLookupResult {
                items,
                hops,
                origin,
                path,
                req,
            } => {
                w.put_u8(10);
                items.encode(w);
                w.put_u16(*hops);
                w.put_u32(*origin);
                path.encode(w);
                w.put_u64(*req);
            }
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => DiscoveryMsg::Announce { name: r.get_str()? },
            1 => DiscoveryMsg::Register {
                item: ServiceItem::decode(r)?,
                lease_ns: r.get_u64()?,
                req: r.get_u64()?,
            },
            2 => DiscoveryMsg::Registered {
                service: ServiceId::decode(r)?,
                lease_ns: r.get_u64()?,
                req: r.get_u64()?,
            },
            3 => DiscoveryMsg::Renew {
                service: ServiceId::decode(r)?,
                req: r.get_u64()?,
            },
            4 => DiscoveryMsg::RenewAck {
                service: ServiceId::decode(r)?,
                ok: r.get_bool()?,
                req: r.get_u64()?,
            },
            5 => DiscoveryMsg::Cancel {
                service: ServiceId::decode(r)?,
            },
            6 => DiscoveryMsg::Lookup {
                query: ServiceQuery::decode(r)?,
                req: r.get_u64()?,
            },
            7 => DiscoveryMsg::LookupResult {
                items: Vec::<ServiceItem>::decode(r)?,
                req: r.get_u64()?,
            },
            8 => DiscoveryMsg::DirAdvertise {
                types: Vec::<String>::decode(r)?,
            },
            9 => DiscoveryMsg::FedLookup {
                query: ServiceQuery::decode(r)?,
                origin: r.get_u32()?,
                path: Vec::<u32>::decode(r)?,
                req: r.get_u64()?,
            },
            10 => DiscoveryMsg::FedLookupResult {
                items: Vec::<ServiceItem>::decode(r)?,
                hops: r.get_u16()?,
                origin: r.get_u32()?,
                path: Vec::<u32>::decode(r)?,
                req: r.get_u64()?,
            },
            tag => {
                return Err(r.bad_tag("DiscoveryMsg", tag))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        let msgs = vec![
            DiscoveryMsg::Announce {
                name: "lookup:hall-a".into(),
            },
            DiscoveryMsg::Register {
                item: ServiceItem::new("midas.adaptation", "robot", 1),
                lease_ns: 5_000_000,
                req: 9,
            },
            DiscoveryMsg::Registered {
                service: ServiceId::compose(1, 2),
                lease_ns: 5_000_000,
                req: 9,
            },
            DiscoveryMsg::Renew {
                service: ServiceId::compose(1, 2),
                req: 10,
            },
            DiscoveryMsg::RenewAck {
                service: ServiceId::compose(1, 2),
                ok: true,
                req: 10,
            },
            DiscoveryMsg::Cancel {
                service: ServiceId::compose(1, 2),
            },
            DiscoveryMsg::Lookup {
                query: ServiceQuery::of_type("midas.adaptation"),
                req: 11,
            },
            DiscoveryMsg::LookupResult {
                items: vec![ServiceItem::new("midas.adaptation", "robot", 1)],
                req: 11,
            },
            DiscoveryMsg::DirAdvertise {
                types: vec!["midas.adaptation".into(), "print".into()],
            },
            DiscoveryMsg::FedLookup {
                query: ServiceQuery::of_type("print"),
                origin: 3,
                path: vec![4, 1],
                req: 12,
            },
            DiscoveryMsg::FedLookupResult {
                items: vec![ServiceItem::new("print", "laser", 9)],
                hops: 3,
                origin: 3,
                path: vec![4],
                req: 12,
            },
        ];
        for m in msgs {
            let bytes = pmp_wire::to_bytes(&m);
            assert_eq!(pmp_wire::from_bytes::<DiscoveryMsg>(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(pmp_wire::from_bytes::<DiscoveryMsg>(&[99]).is_err());
    }
}
