//! E6/E7 — the MIDAS management plane: wall-clock cost of simulating
//! extension distribution to N newcomers, and of a full
//! departure-revocation cycle. (The *simulated-time* results — the
//! paper-relevant shape — are printed by the harness binary; this
//! bench tracks the simulator's own efficiency.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmp_bench::{distribution_run, revocation_run};

fn bench_distribution(c: &mut Criterion) {
    let mut group = c.benchmark_group("distribution");
    group.sample_size(10);
    for n in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("adapt-n-nodes", n), &n, |b, &n| {
            b.iter(|| distribution_run(n));
        });
    }
    group.bench_function("revocation-cycle-2s-lease", |b| {
        b.iter(|| revocation_run(2_000_000_000));
    });
    group.finish();
}

criterion_group!(benches, bench_distribution);
criterion_main!(benches);
