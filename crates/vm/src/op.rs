//! Portable bytecode.
//!
//! [`Op`] is the *portable* instruction form: names are symbolic strings,
//! so method bodies can be shipped across the network (this is how MIDAS
//! extensions carry advice code). The simulated JIT
//! resolves names into direct indices before execution.

use pmp_wire::{Reader, Wire, WireError, Writer};
use crate::value::Value;
use std::sync::Arc;

/// A constant operand — the subset of [`Value`] with no heap identity,
/// hence safely serialisable.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// `null`
    Null,
    /// Boolean constant.
    Bool(bool),
    /// Integer constant.
    Int(i64),
    /// Float constant.
    Float(f64),
    /// String constant.
    Str(String),
}

impl Const {
    /// Materialises the constant as a runtime value.
    pub fn to_value(&self) -> Value {
        match self {
            Const::Null => Value::Null,
            Const::Bool(b) => Value::Bool(*b),
            Const::Int(i) => Value::Int(*i),
            Const::Float(f) => Value::Float(*f),
            Const::Str(s) => Value::str(s),
        }
    }
}

impl From<i64> for Const {
    fn from(v: i64) -> Self {
        Const::Int(v)
    }
}
impl From<f64> for Const {
    fn from(v: f64) -> Self {
        Const::Float(v)
    }
}
impl From<bool> for Const {
    fn from(v: bool) -> Self {
        Const::Bool(v)
    }
}
impl From<&str> for Const {
    fn from(v: &str) -> Self {
        Const::Str(v.to_string())
    }
}

impl Wire for Const {
    fn encode(&self, w: &mut Writer) {
        match self {
            Const::Null => w.put_u8(0),
            Const::Bool(b) => {
                w.put_u8(1);
                w.put_bool(*b);
            }
            Const::Int(i) => {
                w.put_u8(2);
                w.put_vari64(*i);
            }
            Const::Float(f) => {
                w.put_u8(3);
                w.put_f64(*f);
            }
            Const::Str(s) => {
                w.put_u8(4);
                w.put_str(s);
            }
        }
    }
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => Const::Null,
            1 => Const::Bool(r.get_bool()?),
            2 => Const::Int(r.get_vari64()?),
            3 => Const::Float(r.get_f64()?),
            4 => Const::Str(r.get_str()?),
            tag => {
                return Err(r.bad_tag("Const", tag))
            }
        })
    }
}

/// One portable instruction of the stack machine.
///
/// Stack effects are noted as `before -> after` (top of stack rightmost).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// ` -> c` push a constant.
    Const(Const),
    /// ` -> v` push local slot (0 = `this` for instance methods).
    Load(u16),
    /// `v -> ` pop into local slot.
    Store(u16),
    /// `v -> v v` duplicate top.
    Dup,
    /// `v -> ` discard top.
    Pop,
    /// `a b -> b a` swap top two.
    Swap,
    /// `a b -> a+b` (int+int, float+float).
    Add,
    /// `a b -> a-b`
    Sub,
    /// `a b -> a*b`
    Mul,
    /// `a b -> a/b` — throws `ArithmeticException` on int division by 0.
    Div,
    /// `a b -> a%b` — throws `ArithmeticException` on int remainder by 0.
    Rem,
    /// `a -> -a`
    Neg,
    /// `a b -> a<<b` (ints).
    Shl,
    /// `a b -> a>>b` (arithmetic, ints).
    Shr,
    /// `a b -> a&b` (ints).
    BitAnd,
    /// `a b -> a|b` (ints).
    BitOr,
    /// `a b -> a^b` (ints).
    BitXor,
    /// `a b -> a==b` (structural on primitives, identity on refs).
    Eq,
    /// `a b -> a!=b`
    Ne,
    /// `a b -> a<b` (int/float/str).
    Lt,
    /// `a b -> a<=b`
    Le,
    /// `a b -> a>b`
    Gt,
    /// `a b -> a>=b`
    Ge,
    /// `b -> !b`
    Not,
    /// ` -> ` unconditional jump to pc.
    Jump(u32),
    /// `b -> ` jump if true.
    JumpIf(u32),
    /// `b -> ` jump if false.
    JumpIfNot(u32),
    /// ` -> ` return `null` from the method.
    Ret,
    /// `v -> ` return top of stack from the method.
    RetVal,
    /// ` -> ref` allocate an instance with default field values.
    New(String),
    /// `obj -> value` read a field (join point: field get).
    GetField {
        /// Declaring class name.
        class: String,
        /// Field name.
        field: String,
    },
    /// `obj value -> ` write a field (join point: field set).
    PutField {
        /// Declaring class name.
        class: String,
        /// Field name.
        field: String,
    },
    /// `obj a1..aN -> ret` virtual call by name on the receiver's class
    /// (join points: method entry/exit).
    CallV {
        /// Method name, resolved against the receiver's runtime class.
        method: String,
        /// Number of arguments (excluding receiver).
        argc: u8,
    },
    /// `a1..aN -> ret` static call to `class.method`.
    CallStatic {
        /// Declaring class name.
        class: String,
        /// Method name.
        method: String,
        /// Number of arguments.
        argc: u8,
    },
    /// `obj a1..aN -> ret` devirtualised call: like [`Op::CallV`] but the
    /// receiver's class is statically known, so dispatch resolves to a
    /// direct method id at JIT time and skips the run-time class lookup.
    /// Emitted only by the weave-time optimizer when class-hierarchy
    /// analysis proves the receiver is exactly an instance of `class`.
    CallDirect {
        /// The receiver's statically proven class.
        class: String,
        /// Method name.
        method: String,
        /// Number of arguments (excluding receiver).
        argc: u8,
    },
    /// `len -> ref` allocate an array of nulls.
    NewArray,
    /// `arr idx -> v`
    ArrGet,
    /// `arr idx v -> `
    ArrSet,
    /// `arr -> len`
    ArrLen,
    /// `len -> ref` allocate a zeroed byte buffer (the paper's `byte[]`).
    NewBuffer,
    /// `buf idx -> int`
    BufGet,
    /// `buf idx int -> `
    BufSet,
    /// `buf -> len`
    BufLen,
    /// `msg -> !` throw an exception of the operand class with the popped
    /// message (join point: exception throw).
    Throw(String),
    /// `a b -> str` string concatenation via `Display`.
    Concat,
    /// `v -> str`
    ToStr,
    /// `v -> int` (parses strings, truncates floats) — throws `TypeError`
    /// if not convertible.
    ToInt,
    /// `v -> float`
    ToFloat,
    /// `a1..aN -> ret` call a named, permission-checked system operation.
    Sys {
        /// Registered system-operation name, e.g. `"print"`.
        name: String,
        /// Number of arguments.
        argc: u8,
    },
    /// ` -> ` no operation.
    Nop,
}

impl Wire for Op {
    fn encode(&self, w: &mut Writer) {
        match self {
            Op::Const(c) => {
                w.put_u8(0);
                c.encode(w);
            }
            Op::Load(i) => {
                w.put_u8(1);
                w.put_u16(*i);
            }
            Op::Store(i) => {
                w.put_u8(2);
                w.put_u16(*i);
            }
            Op::Dup => w.put_u8(3),
            Op::Pop => w.put_u8(4),
            Op::Swap => w.put_u8(5),
            Op::Add => w.put_u8(6),
            Op::Sub => w.put_u8(7),
            Op::Mul => w.put_u8(8),
            Op::Div => w.put_u8(9),
            Op::Rem => w.put_u8(10),
            Op::Neg => w.put_u8(11),
            Op::Shl => w.put_u8(12),
            Op::Shr => w.put_u8(13),
            Op::BitAnd => w.put_u8(14),
            Op::BitOr => w.put_u8(15),
            Op::BitXor => w.put_u8(16),
            Op::Eq => w.put_u8(17),
            Op::Ne => w.put_u8(18),
            Op::Lt => w.put_u8(19),
            Op::Le => w.put_u8(20),
            Op::Gt => w.put_u8(21),
            Op::Ge => w.put_u8(22),
            Op::Not => w.put_u8(23),
            Op::Jump(pc) => {
                w.put_u8(24);
                w.put_u32(*pc);
            }
            Op::JumpIf(pc) => {
                w.put_u8(25);
                w.put_u32(*pc);
            }
            Op::JumpIfNot(pc) => {
                w.put_u8(26);
                w.put_u32(*pc);
            }
            Op::Ret => w.put_u8(27),
            Op::RetVal => w.put_u8(28),
            Op::New(c) => {
                w.put_u8(29);
                w.put_str(c);
            }
            Op::GetField { class, field } => {
                w.put_u8(30);
                w.put_str(class);
                w.put_str(field);
            }
            Op::PutField { class, field } => {
                w.put_u8(31);
                w.put_str(class);
                w.put_str(field);
            }
            Op::CallV { method, argc } => {
                w.put_u8(32);
                w.put_str(method);
                w.put_u8(*argc);
            }
            Op::CallStatic {
                class,
                method,
                argc,
            } => {
                w.put_u8(33);
                w.put_str(class);
                w.put_str(method);
                w.put_u8(*argc);
            }
            Op::NewArray => w.put_u8(34),
            Op::ArrGet => w.put_u8(35),
            Op::ArrSet => w.put_u8(36),
            Op::ArrLen => w.put_u8(37),
            Op::NewBuffer => w.put_u8(38),
            Op::BufGet => w.put_u8(39),
            Op::BufSet => w.put_u8(40),
            Op::BufLen => w.put_u8(41),
            Op::Throw(c) => {
                w.put_u8(42);
                w.put_str(c);
            }
            Op::Concat => w.put_u8(43),
            Op::ToStr => w.put_u8(44),
            Op::ToInt => w.put_u8(45),
            Op::ToFloat => w.put_u8(46),
            Op::Sys { name, argc } => {
                w.put_u8(47);
                w.put_str(name);
                w.put_u8(*argc);
            }
            Op::Nop => w.put_u8(48),
            Op::CallDirect {
                class,
                method,
                argc,
            } => {
                w.put_u8(49);
                w.put_str(class);
                w.put_str(method);
                w.put_u8(*argc);
            }
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => Op::Const(Const::decode(r)?),
            1 => Op::Load(r.get_u16()?),
            2 => Op::Store(r.get_u16()?),
            3 => Op::Dup,
            4 => Op::Pop,
            5 => Op::Swap,
            6 => Op::Add,
            7 => Op::Sub,
            8 => Op::Mul,
            9 => Op::Div,
            10 => Op::Rem,
            11 => Op::Neg,
            12 => Op::Shl,
            13 => Op::Shr,
            14 => Op::BitAnd,
            15 => Op::BitOr,
            16 => Op::BitXor,
            17 => Op::Eq,
            18 => Op::Ne,
            19 => Op::Lt,
            20 => Op::Le,
            21 => Op::Gt,
            22 => Op::Ge,
            23 => Op::Not,
            24 => Op::Jump(r.get_u32()?),
            25 => Op::JumpIf(r.get_u32()?),
            26 => Op::JumpIfNot(r.get_u32()?),
            27 => Op::Ret,
            28 => Op::RetVal,
            29 => Op::New(r.get_str()?),
            30 => Op::GetField {
                class: r.get_str()?,
                field: r.get_str()?,
            },
            31 => Op::PutField {
                class: r.get_str()?,
                field: r.get_str()?,
            },
            32 => Op::CallV {
                method: r.get_str()?,
                argc: r.get_u8()?,
            },
            33 => Op::CallStatic {
                class: r.get_str()?,
                method: r.get_str()?,
                argc: r.get_u8()?,
            },
            34 => Op::NewArray,
            35 => Op::ArrGet,
            36 => Op::ArrSet,
            37 => Op::ArrLen,
            38 => Op::NewBuffer,
            39 => Op::BufGet,
            40 => Op::BufSet,
            41 => Op::BufLen,
            42 => Op::Throw(r.get_str()?),
            43 => Op::Concat,
            44 => Op::ToStr,
            45 => Op::ToInt,
            46 => Op::ToFloat,
            47 => Op::Sys {
                name: r.get_str()?,
                argc: r.get_u8()?,
            },
            48 => Op::Nop,
            49 => Op::CallDirect {
                class: r.get_str()?,
                method: r.get_str()?,
                argc: r.get_u8()?,
            },
            tag => {
                return Err(r.bad_tag("Op", tag))
            }
        })
    }
}

/// An exception-handler range for a bytecode body: if an exception of a
/// matching class escapes an op in `[start, end)`, control transfers to
/// `target` with the exception message pushed on the (cleared) stack.
#[derive(Debug, Clone, PartialEq)]
pub struct HandlerDef {
    /// First covered pc (inclusive).
    pub start: u32,
    /// One past the last covered pc.
    pub end: u32,
    /// Exception class to catch; `"*"` catches any class.
    pub class: String,
    /// Handler entry pc.
    pub target: u32,
}

pmp_wire::wire_struct!(HandlerDef {
    start: u32,
    end: u32,
    class: String,
    target: u32,
});

/// A portable bytecode method body: shippable over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct BytecodeBody {
    /// Extra local slots beyond `this` + parameters.
    pub extra_locals: u16,
    /// The instructions.
    pub ops: Vec<Op>,
    /// Exception handler table.
    pub handlers: Vec<HandlerDef>,
}

pmp_wire::wire_struct!(BytecodeBody {
    extra_locals: u16,
    ops: Vec<Op>,
    handlers: Vec<HandlerDef>,
});

/// Compiled ("native") instruction with names resolved to indices.
///
/// Produced by the simulated JIT; mirrors [`Op`] one-to-one so pc values
/// are stable across compilation.
#[derive(Debug, Clone)]
pub enum CompiledOp {
    /// See [`Op::Const`].
    Const(Value),
    /// See [`Op::Load`].
    Load(u16),
    /// See [`Op::Store`].
    Store(u16),
    /// See [`Op::Dup`].
    Dup,
    /// See [`Op::Pop`].
    Pop,
    /// See [`Op::Swap`].
    Swap,
    /// See [`Op::Add`].
    Add,
    /// See [`Op::Sub`].
    Sub,
    /// See [`Op::Mul`].
    Mul,
    /// See [`Op::Div`].
    Div,
    /// See [`Op::Rem`].
    Rem,
    /// See [`Op::Neg`].
    Neg,
    /// See [`Op::Shl`].
    Shl,
    /// See [`Op::Shr`].
    Shr,
    /// See [`Op::BitAnd`].
    BitAnd,
    /// See [`Op::BitOr`].
    BitOr,
    /// See [`Op::BitXor`].
    BitXor,
    /// See [`Op::Eq`].
    Eq,
    /// See [`Op::Ne`].
    Ne,
    /// See [`Op::Lt`].
    Lt,
    /// See [`Op::Le`].
    Le,
    /// See [`Op::Gt`].
    Gt,
    /// See [`Op::Ge`].
    Ge,
    /// See [`Op::Not`].
    Not,
    /// See [`Op::Jump`].
    Jump(u32),
    /// See [`Op::JumpIf`].
    JumpIf(u32),
    /// See [`Op::JumpIfNot`].
    JumpIfNot(u32),
    /// See [`Op::Ret`].
    Ret,
    /// See [`Op::RetVal`].
    RetVal,
    /// See [`Op::New`] — class resolved.
    New(crate::hooks::ClassId),
    /// See [`Op::GetField`] — slot and hook id resolved.
    GetField {
        /// Field slot in the object layout.
        slot: u16,
        /// Global field id (hook key).
        fid: crate::hooks::FieldId,
    },
    /// See [`Op::PutField`].
    PutField {
        /// Field slot in the object layout.
        slot: u16,
        /// Global field id (hook key).
        fid: crate::hooks::FieldId,
    },
    /// See [`Op::CallV`] — method name interned; receiver class resolved
    /// at run time (virtual dispatch).
    CallV {
        /// Interned method name.
        method: Arc<str>,
        /// Number of arguments.
        argc: u8,
    },
    /// See [`Op::CallStatic`] — resolved to a direct method id.
    CallStatic {
        /// Target method.
        mid: crate::hooks::MethodId,
        /// Number of arguments.
        argc: u8,
    },
    /// See [`Op::CallDirect`] — resolved to a direct method id; the
    /// receiver is popped and passed as `this` without a class lookup.
    CallDirect {
        /// Target method.
        mid: crate::hooks::MethodId,
        /// Number of arguments (excluding receiver).
        argc: u8,
    },
    /// See [`Op::NewArray`].
    NewArray,
    /// See [`Op::ArrGet`].
    ArrGet,
    /// See [`Op::ArrSet`].
    ArrSet,
    /// See [`Op::ArrLen`].
    ArrLen,
    /// See [`Op::NewBuffer`].
    NewBuffer,
    /// See [`Op::BufGet`].
    BufGet,
    /// See [`Op::BufSet`].
    BufSet,
    /// See [`Op::BufLen`].
    BufLen,
    /// See [`Op::Throw`] — class name interned.
    Throw(Arc<str>),
    /// See [`Op::Concat`].
    Concat,
    /// See [`Op::ToStr`].
    ToStr,
    /// See [`Op::ToInt`].
    ToInt,
    /// See [`Op::ToFloat`].
    ToFloat,
    /// See [`Op::Sys`] — resolved to a system-op index.
    Sys {
        /// Index into the system-op registry.
        sys: u32,
        /// Number of arguments.
        argc: u8,
    },
    /// See [`Op::Nop`].
    Nop,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_to_value() {
        assert_eq!(Const::Int(4).to_value(), Value::Int(4));
        assert_eq!(Const::Null.to_value(), Value::Null);
        assert_eq!(Const::from("x").to_value(), Value::str("x"));
    }

    #[test]
    fn op_wire_roundtrip_all_variants() {
        let ops = vec![
            Op::Const(Const::Int(1)),
            Op::Const(Const::Str("s".into())),
            Op::Const(Const::Float(2.5)),
            Op::Const(Const::Bool(true)),
            Op::Const(Const::Null),
            Op::Load(3),
            Op::Store(4),
            Op::Dup,
            Op::Pop,
            Op::Swap,
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Div,
            Op::Rem,
            Op::Neg,
            Op::Shl,
            Op::Shr,
            Op::BitAnd,
            Op::BitOr,
            Op::BitXor,
            Op::Eq,
            Op::Ne,
            Op::Lt,
            Op::Le,
            Op::Gt,
            Op::Ge,
            Op::Not,
            Op::Jump(9),
            Op::JumpIf(10),
            Op::JumpIfNot(11),
            Op::Ret,
            Op::RetVal,
            Op::New("Motor".into()),
            Op::GetField {
                class: "Motor".into(),
                field: "pos".into(),
            },
            Op::PutField {
                class: "Motor".into(),
                field: "pos".into(),
            },
            Op::CallV {
                method: "rotate".into(),
                argc: 2,
            },
            Op::CallStatic {
                class: "Math".into(),
                method: "abs".into(),
                argc: 1,
            },
            Op::CallDirect {
                class: "Motor".into(),
                method: "rotate".into(),
                argc: 2,
            },
            Op::NewArray,
            Op::ArrGet,
            Op::ArrSet,
            Op::ArrLen,
            Op::NewBuffer,
            Op::BufGet,
            Op::BufSet,
            Op::BufLen,
            Op::Throw("E".into()),
            Op::Concat,
            Op::ToStr,
            Op::ToInt,
            Op::ToFloat,
            Op::Sys {
                name: "print".into(),
                argc: 1,
            },
            Op::Nop,
        ];
        let bytes = pmp_wire::to_bytes(&ops);
        let back: Vec<Op> = pmp_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn body_wire_roundtrip() {
        let body = BytecodeBody {
            extra_locals: 2,
            ops: vec![Op::Const(Const::Int(1)), Op::RetVal],
            handlers: vec![HandlerDef {
                start: 0,
                end: 2,
                class: "*".into(),
                target: 1,
            }],
        };
        let bytes = pmp_wire::to_bytes(&body);
        assert_eq!(pmp_wire::from_bytes::<BytecodeBody>(&bytes).unwrap(), body);
    }
}
