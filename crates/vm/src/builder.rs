//! A small assembler for bytecode bodies: forward labels, structured
//! jump fixups, and exception-handler registration.

use crate::op::{BytecodeBody, Const, HandlerDef, Op};

/// A label that can be bound to a pc and referenced by jumps before or
/// after binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Assembles a [`BytecodeBody`].
///
/// # Examples
///
/// A loop that sums `0..n` (argument in local 1, accumulator in local 2):
///
/// ```
/// use pmp_vm::builder::MethodBuilder;
/// use pmp_vm::op::{Op, Const};
///
/// let mut b = MethodBuilder::new();
/// b.locals(2); // locals 2,3 extra
/// let top = b.label();
/// let done = b.label();
/// b.op(Op::Const(Const::Int(0))).op(Op::Store(2));   // acc = 0
/// b.op(Op::Const(Const::Int(0))).op(Op::Store(3));   // i = 0
/// b.bind(top);
/// b.op(Op::Load(3)).op(Op::Load(1)).op(Op::Lt);
/// b.jump_if_not(done);
/// b.op(Op::Load(2)).op(Op::Load(3)).op(Op::Add).op(Op::Store(2));
/// b.op(Op::Load(3)).op(Op::Const(Const::Int(1))).op(Op::Add).op(Op::Store(3));
/// b.jump(top);
/// b.bind(done);
/// b.op(Op::Load(2)).op(Op::RetVal);
/// let body = b.build();
/// assert!(body.ops.len() > 10);
/// ```
#[derive(Debug, Default)]
pub struct MethodBuilder {
    ops: Vec<Op>,
    labels: Vec<Option<u32>>,
    // (op index, label) pairs whose jump target needs patching.
    fixups: Vec<(usize, Label)>,
    handlers: Vec<(Label, Label, String, Label)>,
    extra_locals: u16,
}

impl MethodBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `n` extra local slots beyond `this` + parameters.
    pub fn locals(&mut self, n: u16) -> &mut Self {
        self.extra_locals = n;
        self
    }

    /// Current pc (index of the next op to be emitted).
    pub fn pc(&self) -> u32 {
        self.ops.len() as u32
    }

    /// Emits an op.
    pub fn op(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Emits a constant push.
    pub fn konst(&mut self, c: impl Into<Const>) -> &mut Self {
        self.ops.push(Op::Const(c.into()));
        self
    }

    /// Allocates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current pc.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound — each label binds once.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        assert!(
            self.labels[label.0].is_none(),
            "label bound twice"
        );
        self.labels[label.0] = Some(self.pc());
        self
    }

    /// Emits an unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.ops.len(), label));
        self.ops.push(Op::Jump(u32::MAX));
        self
    }

    /// Emits a jump-if-true to `label`.
    pub fn jump_if(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.ops.len(), label));
        self.ops.push(Op::JumpIf(u32::MAX));
        self
    }

    /// Emits a jump-if-false to `label`.
    pub fn jump_if_not(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.ops.len(), label));
        self.ops.push(Op::JumpIfNot(u32::MAX));
        self
    }

    /// Registers an exception handler: exceptions of class `class`
    /// (or any, for `"*"`) raised in `[start, end)` transfer control to
    /// `target` with the exception message on the stack.
    pub fn guard(
        &mut self,
        start: Label,
        end: Label,
        class: impl Into<String>,
        target: Label,
    ) -> &mut Self {
        self.handlers.push((start, end, class.into(), target));
        self
    }

    /// Resolves labels and produces the body.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn build(mut self) -> BytecodeBody {
        let resolve = |labels: &[Option<u32>], l: Label| -> u32 {
            labels[l.0].expect("jump to unbound label")
        };
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let pc = resolve(&self.labels, label);
            match &mut self.ops[idx] {
                Op::Jump(t) | Op::JumpIf(t) | Op::JumpIfNot(t) => *t = pc,
                other => unreachable!("fixup on non-jump op {other:?}"),
            }
        }
        let handlers = self
            .handlers
            .iter()
            .map(|(s, e, c, t)| HandlerDef {
                start: resolve(&self.labels, *s),
                end: resolve(&self.labels, *e),
                class: c.clone(),
                target: resolve(&self.labels, *t),
            })
            .collect();
        BytecodeBody {
            extra_locals: self.extra_locals,
            ops: self.ops,
            handlers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_jumps_resolve() {
        let mut b = MethodBuilder::new();
        let fwd = b.label();
        b.jump(fwd);
        b.op(Op::Nop);
        b.bind(fwd);
        b.op(Op::Ret);
        let body = b.build();
        assert_eq!(body.ops[0], Op::Jump(2));
    }

    #[test]
    fn guard_ranges_resolve() {
        let mut b = MethodBuilder::new();
        let start = b.label();
        let end = b.label();
        let handler = b.label();
        b.bind(start);
        b.op(Op::Nop);
        b.bind(end);
        b.op(Op::Ret);
        b.bind(handler);
        b.op(Op::Pop).op(Op::Ret);
        b.guard(start, end, "*", handler);
        let body = b.build();
        assert_eq!(body.handlers.len(), 1);
        assert_eq!(body.handlers[0].start, 0);
        assert_eq!(body.handlers[0].end, 1);
        assert_eq!(body.handlers[0].target, 2);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = MethodBuilder::new();
        let l = b.label();
        b.jump(l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = MethodBuilder::new();
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn konst_shorthand() {
        let mut b = MethodBuilder::new();
        b.konst(5i64).konst("x").konst(true);
        let body = b.build();
        assert_eq!(body.ops.len(), 3);
    }
}
