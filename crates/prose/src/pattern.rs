//! Crosscut pattern primitives: glob-style name patterns, type patterns,
//! and parameter-list patterns (supporting the paper's `..`/`REST`).

use pmp_vm::types::{MethodSig, TypeSig};
use std::fmt;

/// A glob pattern over a single name: literal characters plus `*`
/// matching any (possibly empty) substring.
///
/// # Examples
///
/// ```
/// use pmp_prose::pattern::NamePat;
///
/// let p = NamePat::new("send*");
/// assert!(p.matches("sendBytes"));
/// assert!(p.matches("send"));
/// assert!(!p.matches("resend"));
/// assert!(NamePat::new("*").matches("anything"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NamePat {
    raw: String,
}

impl NamePat {
    /// Creates a pattern from its textual form.
    pub fn new(pattern: impl Into<String>) -> Self {
        Self {
            raw: pattern.into(),
        }
    }

    /// The wildcard pattern `*`.
    pub fn any() -> Self {
        Self::new("*")
    }

    /// The textual form of the pattern.
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// Returns `true` if the pattern matches every name.
    pub fn is_wildcard(&self) -> bool {
        self.raw == "*"
    }

    /// Glob match against `name`.
    pub fn matches(&self, name: &str) -> bool {
        glob_match(self.raw.as_bytes(), name.as_bytes())
    }
}

impl fmt::Display for NamePat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.raw)
    }
}

/// Iterative glob matcher (`*` only), linear in `text` with
/// backtracking bounded by the last-star trick.
fn glob_match(pat: &[u8], text: &[u8]) -> bool {
    let (mut p, mut t) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while t < text.len() {
        if p < pat.len() && pat[p] != b'*' && pat[p] == text[t] {
            p += 1;
            t += 1;
        } else if p < pat.len() && pat[p] == b'*' {
            star = p;
            mark = t;
            p += 1;
        } else if star != usize::MAX {
            p = star + 1;
            mark += 1;
            t = mark;
        } else {
            return false;
        }
    }
    while p < pat.len() && pat[p] == b'*' {
        p += 1;
    }
    p == pat.len()
}

/// A pattern over one type position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypePat {
    /// Matches any type (`*`).
    Any,
    /// Matches exactly this type. For `Object` types, the class name is
    /// matched as a [`NamePat`], so `Motor*` works.
    Exact(TypeSig),
}

impl TypePat {
    /// Parses the textual form: `*` or a type name.
    pub fn parse(s: &str) -> Option<TypePat> {
        let s = s.trim();
        if s == "*" {
            Some(TypePat::Any)
        } else {
            TypeSig::parse(s).map(TypePat::Exact)
        }
    }

    /// Does `ty` satisfy this pattern?
    pub fn matches(&self, ty: &TypeSig) -> bool {
        match self {
            TypePat::Any => true,
            TypePat::Exact(TypeSig::Object(pat)) => match ty {
                TypeSig::Object(name) => NamePat::new(pat.as_ref()).matches(name),
                _ => false,
            },
            TypePat::Exact(t) => t == ty,
        }
    }
}

impl fmt::Display for TypePat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypePat::Any => write!(f, "*"),
            TypePat::Exact(t) => write!(f, "{t}"),
        }
    }
}

/// A pattern over a parameter list: a fixed prefix of [`TypePat`]s,
/// optionally followed by `..` (the paper's `REST`) matching any tail.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ParamsPat {
    /// Patterns for the leading parameters.
    pub prefix: Vec<TypePat>,
    /// Whether additional trailing parameters are allowed.
    pub rest: bool,
}

impl ParamsPat {
    /// Matches any parameter list (`(..)`).
    pub fn any() -> Self {
        Self {
            prefix: Vec::new(),
            rest: true,
        }
    }

    /// Matches exactly the given patterns.
    pub fn exact(prefix: Vec<TypePat>) -> Self {
        Self {
            prefix,
            rest: false,
        }
    }

    /// Does `params` satisfy this pattern?
    pub fn matches(&self, params: &[TypeSig]) -> bool {
        if self.rest {
            if params.len() < self.prefix.len() {
                return false;
            }
        } else if params.len() != self.prefix.len() {
            return false;
        }
        self.prefix
            .iter()
            .zip(params.iter())
            .all(|(p, t)| p.matches(t))
    }
}

impl fmt::Display for ParamsPat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = self.prefix.iter().map(ToString::to_string).collect();
        if self.rest {
            parts.push("..".to_string());
        }
        write!(f, "({})", parts.join(", "))
    }
}

/// A full method-signature pattern, e.g. `void *.send*(byte[], ..)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodPattern {
    /// Return-type pattern.
    pub ret: TypePat,
    /// Class-name pattern.
    pub class: NamePat,
    /// Method-name pattern.
    pub name: NamePat,
    /// Parameter-list pattern.
    pub params: ParamsPat,
}

impl MethodPattern {
    /// A pattern matching every method of every class.
    pub fn any() -> Self {
        Self {
            ret: TypePat::Any,
            class: NamePat::any(),
            name: NamePat::any(),
            params: ParamsPat::any(),
        }
    }

    /// A pattern matching any method of classes matching `class`
    /// (the paper's `ANYMETHOD(Motor, REST)`).
    pub fn any_method_of(class: impl Into<String>) -> Self {
        Self {
            class: NamePat::new(class),
            ..Self::any()
        }
    }

    /// Does `sig` satisfy this pattern?
    pub fn matches(&self, sig: &MethodSig) -> bool {
        self.ret.matches(&sig.ret)
            && self.class.matches(&sig.class)
            && self.name.matches(&sig.name)
            && self.params.matches(&sig.params)
    }
}

impl fmt::Display for MethodPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}.{}{}", self.ret, self.class, self.name, self.params)
    }
}

/// A field pattern: class-name and field-name globs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldPattern {
    /// Class-name pattern (matches the *declaring* class).
    pub class: NamePat,
    /// Field-name pattern.
    pub field: NamePat,
}

impl FieldPattern {
    /// Creates a field pattern.
    pub fn new(class: impl Into<String>, field: impl Into<String>) -> Self {
        Self {
            class: NamePat::new(class),
            field: NamePat::new(field),
        }
    }

    /// Does the named field satisfy this pattern?
    pub fn matches(&self, class: &str, field: &str) -> bool {
        self.class.matches(class) && self.field.matches(field)
    }
}

impl fmt::Display for FieldPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.class, self.field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sig(ret: TypeSig, class: &str, name: &str, params: Vec<TypeSig>) -> MethodSig {
        MethodSig {
            class: Arc::from(class),
            name: Arc::from(name),
            params,
            ret,
        }
    }

    #[test]
    fn glob_basics() {
        assert!(NamePat::new("send").matches("send"));
        assert!(!NamePat::new("send").matches("sendX"));
        assert!(NamePat::new("send*").matches("sendBytes"));
        assert!(NamePat::new("*send*").matches("resendAll"));
        assert!(NamePat::new("*or").matches("Motor"));
        assert!(NamePat::new("M*t*r").matches("Motor"));
        assert!(!NamePat::new("M*t*r").matches("Sensor"));
        assert!(NamePat::new("*").matches(""));
        assert!(NamePat::new("").matches(""));
        assert!(!NamePat::new("").matches("x"));
    }

    #[test]
    fn paper_example_pattern() {
        // before methods-with-signature 'void *.send*(byte[], ..)'
        let p = MethodPattern {
            ret: TypePat::Exact(TypeSig::Void),
            class: NamePat::any(),
            name: NamePat::new("send*"),
            params: ParamsPat {
                prefix: vec![TypePat::Exact(TypeSig::Bytes)],
                rest: true,
            },
        };
        assert!(p.matches(&sig(
            TypeSig::Void,
            "Radio",
            "sendPacket",
            vec![TypeSig::Bytes, TypeSig::Int]
        )));
        assert!(p.matches(&sig(TypeSig::Void, "Port", "send", vec![TypeSig::Bytes])));
        // wrong first param
        assert!(!p.matches(&sig(TypeSig::Void, "Port", "send", vec![TypeSig::Int])));
        // no params at all
        assert!(!p.matches(&sig(TypeSig::Void, "Port", "send", vec![])));
        // wrong return type
        assert!(!p.matches(&sig(
            TypeSig::Int,
            "Port",
            "send",
            vec![TypeSig::Bytes]
        )));
        // wrong name
        assert!(!p.matches(&sig(
            TypeSig::Void,
            "Port",
            "transmit",
            vec![TypeSig::Bytes]
        )));
    }

    #[test]
    fn any_method_of_class() {
        let p = MethodPattern::any_method_of("Motor");
        assert!(p.matches(&sig(TypeSig::Void, "Motor", "rotate", vec![TypeSig::Int])));
        assert!(p.matches(&sig(TypeSig::Int, "Motor", "position", vec![])));
        assert!(!p.matches(&sig(TypeSig::Void, "Sensor", "read", vec![])));
    }

    #[test]
    fn object_type_patterns_glob_class_names() {
        let p = TypePat::Exact(TypeSig::object("Motor*"));
        assert!(p.matches(&TypeSig::object("MotorProxy")));
        assert!(!p.matches(&TypeSig::object("Sensor")));
        assert!(!p.matches(&TypeSig::Int));
    }

    #[test]
    fn params_exact_vs_rest() {
        let exact = ParamsPat::exact(vec![TypePat::Exact(TypeSig::Int)]);
        assert!(exact.matches(&[TypeSig::Int]));
        assert!(!exact.matches(&[TypeSig::Int, TypeSig::Int]));
        assert!(!exact.matches(&[]));
        let rest = ParamsPat {
            prefix: vec![TypePat::Exact(TypeSig::Int)],
            rest: true,
        };
        assert!(rest.matches(&[TypeSig::Int]));
        assert!(rest.matches(&[TypeSig::Int, TypeSig::Str]));
        assert!(!rest.matches(&[]));
    }

    #[test]
    fn field_pattern() {
        let p = FieldPattern::new("Motor", "*");
        assert!(p.matches("Motor", "position"));
        assert!(!p.matches("Sensor", "position"));
    }

    #[test]
    fn display_roundtrip_shape() {
        let p = MethodPattern {
            ret: TypePat::Exact(TypeSig::Void),
            class: NamePat::any(),
            name: NamePat::new("send*"),
            params: ParamsPat {
                prefix: vec![TypePat::Exact(TypeSig::Bytes)],
                rest: true,
            },
        };
        assert_eq!(p.to_string(), "void *.send*(byte[], ..)");
    }

    // Property tests need the external `proptest` crate; the offline
    // default build gates them behind the (empty) `proptest` feature.
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_literal_patterns_match_themselves(name in "[a-zA-Z0-9_]{0,20}") {
                prop_assert!(NamePat::new(name.clone()).matches(&name));
            }

            #[test]
            fn prop_wildcard_matches_everything(name in ".{0,40}") {
                prop_assert!(NamePat::any().matches(&name));
            }

            #[test]
            fn prop_star_prefix_suffix(name in "[a-z]{1,20}") {
                let prefix = format!("{name}*");
                let suffix = format!("*{name}");
                let both = format!("*{name}*");
                prop_assert!(NamePat::new(prefix).matches(&name));
                prop_assert!(NamePat::new(suffix).matches(&name));
                prop_assert!(NamePat::new(both).matches(&name));
            }

            #[test]
            fn prop_glob_never_panics(pat in ".{0,20}", text in ".{0,40}") {
                let _ = NamePat::new(pat).matches(&text);
            }
        }
    }
}
