//! Property-based soundness check for the bytecode verifier: any
//! random program the verifier *accepts* must execute in the real VM
//! without hitting the faults the verifier claims to rule out — no
//! operand-stack underflow, no bad local slot, no out-of-range jump
//! (all surfaced by the interpreter as `VmError::Link`). Type
//! exceptions and fuel exhaustion are allowed: the verifier tracks
//! stack *depth*, not types, and loops are bounded by fuel, not
//! rejected.
//!
//! Needs the external `proptest` crate; the offline default build gates
//! the whole file behind the (empty) `proptest` feature.
#![cfg(feature = "proptest")]

use pmp_analyze::{verifier, AnalyzeOptions, Severity};
use pmp_vm::builder::MethodBuilder;
use pmp_vm::class::ClassDef;
use pmp_vm::op::{BytecodeBody, Op};
use pmp_vm::prelude::*;
use proptest::prelude::*;

const EXTRA_LOCALS: u16 = 2;

/// Decodes one (selector, payload-int, payload-target) triple into an
/// op from the stack-pure alphabet. Selector weights favour pushes so
/// a useful fraction of random programs stay depth-consistent and pass
/// the verifier.
fn decode(sel: u8, imm: i64, raw_target: u32, len: usize) -> Op {
    // Targets land in 0..len+2: mostly valid, occasionally out of
    // range so the verifier's jump check gets exercised too.
    let target = (raw_target as usize % (len + 2)) as u32;
    match sel % 20 {
        0..=4 => Op::Const(Const::Int(imm)),
        5 | 6 => Op::Const(Const::Bool(imm & 1 == 0)),
        7 => Op::Dup,
        8 => Op::Pop,
        9 => Op::Swap,
        10 => Op::Add,
        11 => Op::Eq,
        12 => Op::Not,
        13 => Op::Neg,
        14 => Op::Jump(target),
        15 => Op::JumpIf(target),
        16 => Op::JumpIfNot(target),
        // Slots 0..4 on a method with 3 slots: sometimes out of range.
        17 => Op::Load((raw_target % 4) as u16),
        18 => Op::Store((raw_target % 4) as u16),
        _ => Op::Nop,
    }
}

fn program(raw: &[(u8, i64, u32)], trailing_ret: bool) -> Vec<Op> {
    let len = raw.len() + usize::from(trailing_ret);
    let mut ops: Vec<Op> = raw
        .iter()
        .map(|(sel, imm, t)| decode(*sel, *imm, *t, len))
        .collect();
    if trailing_ret {
        ops.push(Op::Ret);
    }
    ops
}

proptest! {
    #[test]
    fn accepted_programs_never_link_fault(
        raw in prop::collection::vec((any::<u8>(), -8i64..8, any::<u32>()), 1..24),
        trailing_ret in prop::bool::weighted(0.9),
    ) {
        let ops = program(&raw, trailing_ret);
        let body = BytecodeBody {
            extra_locals: EXTRA_LOCALS,
            ops: ops.clone(),
            handlers: vec![],
        };
        let findings = verifier::verify_body("m", 0, &body, &AnalyzeOptions::default());
        if findings.iter().any(|f| f.severity >= Severity::Error) {
            // Rejected: nothing to check — admission would refuse it.
            return Ok(());
        }

        // Accepted: the program must register (the JIT re-checks jump
        // targets) and run without any link fault.
        let mut vm = Vm::new(VmConfig::default());
        vm.register_class(
            ClassDef::build("T")
                .method("m", [], TypeSig::Void, |b: &mut MethodBuilder| {
                    b.locals(EXTRA_LOCALS);
                    for op in &ops {
                        b.op(op.clone());
                    }
                })
                .done(),
        )
        .unwrap_or_else(|e| panic!("verifier accepted {ops:?} but JIT refused: {e}"));

        let this = vm.new_object("T").unwrap();
        // Finite fuel bounds verifier-accepted loops.
        let scope = vm.begin_advice(Permissions::all(), Some(10_000));
        let result = vm.call("T", "m", this, vec![]);
        vm.end_advice(scope);
        if let Err(VmError::Link(msg)) = &result {
            panic!("verifier accepted {ops:?} but execution link-faulted: {msg}");
        }
    }
}
