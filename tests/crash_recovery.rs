//! End-to-end crash recovery: a base station dies mid-scenario and
//! comes back from its WAL + snapshot image (DESIGN.md §11).
//!
//! The full cycle — adapt, checkpoint, post-snapshot traffic, power
//! cut, restart — runs under both epoch drivers, and every recovered
//! observable (FNV state digest, lease table, catalog, hall database)
//! must match its pre-crash value exactly. Separate tests injure the
//! committed image (torn tail, bit flip) and assert recovery degrades
//! to a clean prefix instead of panicking.

use pmp::core::{Driver, ParallelDriver, ProductionHalls, SerialDriver};
use pmp::durable::RecoverReport;

const SEC: u64 = 1_000_000_000;

/// Pre-crash fingerprint of everything the base must get back.
#[derive(Debug, PartialEq)]
struct BaseState {
    digest: u64,
    leases: String,
    catalog: Vec<String>,
    movements: Vec<String>,
}

fn base_state(w: &ProductionHalls) -> BaseState {
    let b = w.platform.base(w.base_a);
    BaseState {
        digest: b.durable_digest(),
        leases: format!("{:?}", b.base.lease_table()),
        catalog: b.base.catalog.ids(),
        movements: movements(w),
    }
}

fn movements(w: &ProductionHalls) -> Vec<String> {
    w.platform
        .base(w.base_a)
        .store
        .range(0, u64::MAX)
        .iter()
        .map(|r| format!("{} {} {:?} {}ns", r.robot, r.command, r.args, r.duration_ns))
        .collect()
}

/// Adapt in hall A, checkpoint, then draw so post-snapshot movement
/// records accumulate in the WAL.
fn warmed_world(seed: u64, driver: Box<dyn Driver>) -> ProductionHalls {
    let mut w = ProductionHalls::build(seed);
    w.platform.set_driver(driver);
    w.platform.pump(6 * SEC);
    // The scenario seeds catalogs straight into memory; the checkpoint
    // folds them — plus the freshly granted leases — into the snapshot
    // baseline, so post-snapshot records are pure WAL replay.
    w.platform.checkpoint_base(w.base_a);
    let draw = w.platform.rpc(
        w.base_a,
        w.robot,
        "operator:1",
        "DrawingService",
        "drawLine",
        vec![0, 0, 10, 0],
    );
    w.platform.pump(2 * SEC);
    let outcomes = w.platform.take_rpc_outcomes();
    assert!(
        outcomes.iter().find(|o| o.req == draw).expect("reply").ok,
        "the warm-up draw must succeed"
    );
    w
}

/// The happy path: crash, restart, byte-identical state, then keep
/// serving. Returns the pre-crash fingerprint and the recovery report
/// so the cross-driver test can compare runs.
fn crash_cycle(driver: Box<dyn Driver>) -> (BaseState, RecoverReport) {
    let mut w = warmed_world(17, driver);
    let before = base_state(&w);
    assert!(!before.movements.is_empty(), "movements were logged");
    assert!(before.leases.contains("robot:1:1"), "{}", before.leases);

    // Power cut. The rest of the world keeps running around the corpse.
    w.platform.crash_base(w.base_a);
    w.platform.pump(2 * SEC);

    let report = w.platform.restart_base(w.base_a);
    assert!(report.is_clean(), "{report:?}");
    assert!(report.snapshot_seq.is_some(), "checkpoint used: {report:?}");
    assert!(
        report.replayed > 0,
        "post-snapshot movements replayed from the WAL: {report:?}"
    );

    let after = base_state(&w);
    assert_eq!(after.digest, before.digest, "FNV digest survived the crash");
    assert_eq!(after.leases, before.leases, "lease table survived");
    assert_eq!(after.catalog, before.catalog, "catalog survived");
    assert_eq!(after.movements, before.movements, "hall database survived");

    // Liveness: the recovered base still renews leases and still logs
    // movements from fresh calls.
    w.platform.pump(6 * SEC);
    let draw = w.platform.rpc(
        w.base_a,
        w.robot,
        "operator:1",
        "DrawingService",
        "drawLine",
        vec![10, 0, 10, 5],
    );
    w.platform.pump(2 * SEC);
    let outcomes = w.platform.take_rpc_outcomes();
    let outcome = outcomes.iter().find(|o| o.req == draw).expect("reply");
    assert!(outcome.ok, "recovered base still serves: {outcome:?}");
    assert!(
        movements(&w).len() > before.movements.len(),
        "new movements land in the recovered store"
    );
    (before, report)
}

#[test]
fn base_recovers_byte_identically_under_the_serial_driver() {
    crash_cycle(Box::new(SerialDriver));
}

#[test]
fn base_recovers_byte_identically_under_the_parallel_driver() {
    crash_cycle(Box::new(ParallelDriver::default()));
}

#[test]
fn crash_recovery_is_driver_invariant() {
    let (serial_state, serial_report) = crash_cycle(Box::new(SerialDriver));
    let (parallel_state, parallel_report) = crash_cycle(Box::new(ParallelDriver::default()));
    assert_eq!(serial_state, parallel_state, "pre-crash worlds diverged");
    assert_eq!(
        serial_report, parallel_report,
        "recovery itself must be driver-invariant"
    );
}

#[test]
fn torn_final_record_is_truncated_and_the_base_survives() {
    let mut w = warmed_world(23, Box::new(SerialDriver));
    w.platform.crash_base(w.base_a);

    // Shear bytes off the newest committed segment: the classic
    // half-written-record crash shape.
    let seg = w
        .platform
        .base(w.base_a)
        .durable
        .with(|e| e.segments().last().cloned())
        .expect("a post-snapshot segment exists");
    assert!(w
        .platform
        .base_mut(w.base_a)
        .durable
        .with(|e| e.disk_mut().inject_torn_tail(&seg, 3)));

    let report = w.platform.restart_base(w.base_a);
    let torn = report.torn.as_ref().expect("torn tail reported");
    assert_eq!(torn.file, seg);
    assert!(report.corrupt.is_none(), "{report:?}");

    // Whatever replayed is a strict prefix of the pre-crash database,
    // and the base keeps working afterwards.
    w.platform.pump(6 * SEC);
    assert!(
        !w.platform.base(w.base_a).base.catalog.ids().is_empty(),
        "catalog restored from the snapshot"
    );
}

#[test]
fn bit_flip_stops_replay_at_the_snapshot_baseline() {
    let mut w = warmed_world(29, Box::new(SerialDriver));
    let before = movements(&w);
    w.platform.crash_base(w.base_a);

    // Flip one bit inside the first post-snapshot record's body: the
    // CRC catches it and replay stops at the frame boundary.
    let seg = w
        .platform
        .base(w.base_a)
        .durable
        .with(|e| e.segments().first().cloned())
        .expect("a post-snapshot segment exists");
    assert!(w
        .platform
        .base_mut(w.base_a)
        .durable
        .with(|e| e.disk_mut().inject_bit_flip(&seg, 6)));

    let report = w.platform.restart_base(w.base_a);
    let corrupt = report.corrupt.as_ref().expect("corruption reported");
    assert_eq!(corrupt.file, seg);
    assert_eq!(corrupt.offset, 0, "offset names the poisoned frame");
    assert!(report.torn.is_none(), "{report:?}");

    // Replay stopped before the flip: the recovered database is a
    // strict prefix of the pre-crash one, never reordered or invented.
    let after = movements(&w);
    assert!(after.len() < before.len());
    assert_eq!(after[..], before[..after.len()]);

    // No panic, and the platform pumps on.
    w.platform.pump(6 * SEC);
}
