//! An in-memory simulated disk with an explicit durability boundary.
//!
//! Real storage engines only get crash-safety guarantees from `fsync`;
//! everything written since the last sync may or may not survive.
//! [`SimDisk`] models exactly that: appends land in a *pending* overlay
//! and only become part of the *committed* image on [`SimDisk::sync`].
//! A [`SimDisk::crash`] drops the pending overlay, which naturally
//! produces torn tails (a partially-flushed final record) without any
//! special casing in the engine.
//!
//! Fault injection mutates the **committed** image — the bytes a real
//! recovery would read back — so torn-tail, bit-flip, and lost-segment
//! scenarios exercise the same code paths as genuine media faults.

use std::collections::BTreeMap;

/// A named-file byte store with committed/pending separation.
#[derive(Debug, Default, Clone)]
pub struct SimDisk {
    committed: BTreeMap<String, Vec<u8>>,
    pending: BTreeMap<String, Vec<u8>>,
    syncs: u64,
}

impl SimDisk {
    /// An empty disk.
    #[must_use]
    pub fn new() -> SimDisk {
        SimDisk::default()
    }

    /// Appends bytes to a file's pending overlay. The bytes are not
    /// durable until the next [`SimDisk::sync`].
    pub fn append(&mut self, file: &str, bytes: &[u8]) {
        self.pending
            .entry(file.to_string())
            .or_default()
            .extend_from_slice(bytes);
    }

    /// The simulated `fsync`: folds every pending overlay into the
    /// committed image.
    pub fn sync(&mut self) {
        for (file, bytes) in std::mem::take(&mut self.pending) {
            self.committed.entry(file).or_default().extend(bytes);
        }
        self.syncs += 1;
    }

    /// Simulates power loss: all unsynced bytes vanish.
    pub fn crash(&mut self) {
        self.pending.clear();
    }

    /// The committed (crash-surviving) contents of a file.
    #[must_use]
    pub fn read(&self, file: &str) -> Option<&[u8]> {
        self.committed.get(file).map(Vec::as_slice)
    }

    /// Committed length of a file (0 when absent).
    #[must_use]
    pub fn len(&self, file: &str) -> usize {
        self.committed.get(file).map_or(0, Vec::len)
    }

    /// Whether the disk holds no committed files.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty()
    }

    /// Deletes a file (committed and pending). Returns whether any
    /// committed bytes existed.
    pub fn remove(&mut self, file: &str) -> bool {
        self.pending.remove(file);
        self.committed.remove(file).is_some()
    }

    /// Committed file names with the given prefix, in sorted order.
    #[must_use]
    pub fn files_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.committed
            .range(prefix.to_string()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// Total committed bytes across all files.
    #[must_use]
    pub fn committed_bytes(&self) -> usize {
        self.committed.values().map(Vec::len).sum()
    }

    /// Number of syncs performed.
    #[must_use]
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Truncates a committed file to `keep` bytes (recovery repairs a
    /// torn tail this way). Returns false when the file is absent.
    pub fn truncate(&mut self, file: &str, keep: usize) -> bool {
        match self.committed.get_mut(file) {
            Some(bytes) => {
                bytes.truncate(keep);
                true
            }
            None => false,
        }
    }

    // -- Fault injection (committed image) --

    /// Drops the last `drop_bytes` committed bytes of a file, emulating
    /// a write that only partially reached the platter.
    pub fn inject_torn_tail(&mut self, file: &str, drop_bytes: usize) -> bool {
        match self.committed.get_mut(file) {
            Some(bytes) => {
                let keep = bytes.len().saturating_sub(drop_bytes);
                bytes.truncate(keep);
                true
            }
            None => false,
        }
    }

    /// Flips one bit of a committed byte, emulating media corruption.
    pub fn inject_bit_flip(&mut self, file: &str, offset: usize) -> bool {
        match self.committed.get_mut(file) {
            Some(bytes) if offset < bytes.len() => {
                bytes[offset] ^= 0x01;
                true
            }
            _ => false,
        }
    }

    /// Deletes a committed file outright, emulating a lost segment.
    pub fn inject_remove(&mut self, file: &str) -> bool {
        self.remove(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynced_bytes_do_not_survive_a_crash() {
        let mut d = SimDisk::new();
        d.append("wal/0.seg", b"abc");
        d.sync();
        d.append("wal/0.seg", b"def");
        d.crash();
        assert_eq!(d.read("wal/0.seg"), Some(&b"abc"[..]));
    }

    #[test]
    fn sync_makes_appends_durable() {
        let mut d = SimDisk::new();
        d.append("f", b"ab");
        d.append("f", b"cd");
        assert_eq!(d.read("f"), None, "nothing committed before sync");
        d.sync();
        d.crash();
        assert_eq!(d.read("f"), Some(&b"abcd"[..]));
        assert_eq!(d.syncs(), 1);
    }

    #[test]
    fn prefix_listing_is_sorted_and_scoped() {
        let mut d = SimDisk::new();
        for name in ["wal/00000002.seg", "wal/00000001.seg", "snap/a"] {
            d.append(name, b"x");
        }
        d.sync();
        assert_eq!(
            d.files_with_prefix("wal/"),
            vec!["wal/00000001.seg", "wal/00000002.seg"]
        );
    }

    #[test]
    fn faults_mutate_the_committed_image() {
        let mut d = SimDisk::new();
        d.append("f", &[0xff; 8]);
        d.sync();
        assert!(d.inject_torn_tail("f", 3));
        assert_eq!(d.len("f"), 5);
        assert!(d.inject_bit_flip("f", 0));
        assert_eq!(d.read("f").unwrap()[0], 0xfe);
        assert!(!d.inject_bit_flip("f", 99), "out-of-range flip refused");
        assert!(d.inject_remove("f"));
        assert!(d.is_empty());
    }
}
