//! The simulated JIT: translates portable [`Op`]s into resolved
//! [`CompiledOp`]s, planting PROSE stubs iff the VM was configured with
//! `prose_hooks` at compile time.
//!
//! The paper's PROSE "adds extension functionality by instructing the
//! JIT-compiler to insert additional actions when transforming the
//! bytecode into native code" (§3.1). The `stub` flag on a compiled
//! method is that inserted action: when set, every invocation checks the
//! hook table (cheap); when clear, invocation proceeds with zero
//! adaptation overhead — re-JIT-ing with different settings is how the
//! benchmarks measure the baseline cost.

use crate::class::MethodBody;
use crate::error::VmError;
use crate::hooks::MethodId;
use crate::op::{CompiledOp, Op};
use crate::vm::{Compiled, CompiledHandler, CompiledMethod, Vm};
use std::sync::Arc;

pub(crate) fn compile(vm: &mut Vm, mid: MethodId) -> Result<(), VmError> {
    let body = vm.method_rt(mid).body.clone();
    // Hook-check hoisting: the weave-time analyzer may prove a method
    // needs no entry/exit stub (see `Vm::hoist_hooks`); such methods
    // compile stub-free even on a hook-carrying VM.
    let stub = vm.config().prose_hooks && !vm.method_rt(mid).hoisted;
    let compiled = match body {
        MethodBody::Native(f) => Compiled::Native { f, stub },
        MethodBody::Bytecode(b) => {
            let sig = vm.method_sig(mid).clone();
            let nlocals = 1 + sig.params.len() as u16 + b.extra_locals;
            let len = b.ops.len() as u32;
            let mut ops = Vec::with_capacity(b.ops.len());
            for (pc, op) in b.ops.iter().enumerate() {
                ops.push(resolve_op(vm, mid, pc, op, len)?);
            }
            let mut handlers = Vec::with_capacity(b.handlers.len());
            for h in &b.handlers {
                if h.start > h.end || h.end > len || h.target >= len {
                    return Err(VmError::link(format!(
                        "{}: malformed handler range {}..{} -> {}",
                        sig, h.start, h.end, h.target
                    )));
                }
                handlers.push(CompiledHandler {
                    start: h.start,
                    end: h.end,
                    class: Arc::from(h.class.as_str()),
                    target: h.target,
                });
            }
            Compiled::Bytecode(Arc::new(CompiledMethod {
                mid,
                ops,
                handlers,
                nlocals,
                stub,
            }))
        }
    };
    vm.install_compiled(mid, compiled);
    Ok(())
}

fn resolve_op(vm: &Vm, mid: MethodId, pc: usize, op: &Op, len: u32) -> Result<CompiledOp, VmError> {
    let ctx = || format!("{} @{pc}", vm.method_sig(mid));
    let check_target = |t: u32| -> Result<u32, VmError> {
        if t < len {
            Ok(t)
        } else {
            Err(VmError::link(format!("{}: jump target {t} out of range", ctx())))
        }
    };
    Ok(match op {
        Op::Const(c) => CompiledOp::Const(c.to_value()),
        Op::Load(i) => CompiledOp::Load(*i),
        Op::Store(i) => CompiledOp::Store(*i),
        Op::Dup => CompiledOp::Dup,
        Op::Pop => CompiledOp::Pop,
        Op::Swap => CompiledOp::Swap,
        Op::Add => CompiledOp::Add,
        Op::Sub => CompiledOp::Sub,
        Op::Mul => CompiledOp::Mul,
        Op::Div => CompiledOp::Div,
        Op::Rem => CompiledOp::Rem,
        Op::Neg => CompiledOp::Neg,
        Op::Shl => CompiledOp::Shl,
        Op::Shr => CompiledOp::Shr,
        Op::BitAnd => CompiledOp::BitAnd,
        Op::BitOr => CompiledOp::BitOr,
        Op::BitXor => CompiledOp::BitXor,
        Op::Eq => CompiledOp::Eq,
        Op::Ne => CompiledOp::Ne,
        Op::Lt => CompiledOp::Lt,
        Op::Le => CompiledOp::Le,
        Op::Gt => CompiledOp::Gt,
        Op::Ge => CompiledOp::Ge,
        Op::Not => CompiledOp::Not,
        Op::Jump(t) => CompiledOp::Jump(check_target(*t)?),
        Op::JumpIf(t) => CompiledOp::JumpIf(check_target(*t)?),
        Op::JumpIfNot(t) => CompiledOp::JumpIfNot(check_target(*t)?),
        Op::Ret => CompiledOp::Ret,
        Op::RetVal => CompiledOp::RetVal,
        Op::New(name) => {
            let cid = vm
                .class_id(name)
                .ok_or_else(|| VmError::link(format!("{}: unknown class {name:?}", ctx())))?;
            CompiledOp::New(cid)
        }
        Op::GetField { class, field } => {
            let (slot, fid) = vm.resolve_field(class, field).ok_or_else(|| {
                VmError::link(format!("{}: unknown field {class}.{field}", ctx()))
            })?;
            CompiledOp::GetField { slot, fid }
        }
        Op::PutField { class, field } => {
            let (slot, fid) = vm.resolve_field(class, field).ok_or_else(|| {
                VmError::link(format!("{}: unknown field {class}.{field}", ctx()))
            })?;
            CompiledOp::PutField { slot, fid }
        }
        Op::CallV { method, argc } => CompiledOp::CallV {
            method: Arc::from(method.as_str()),
            argc: *argc,
        },
        Op::CallStatic {
            class,
            method,
            argc,
        } => {
            let cid = vm
                .class_id(class)
                .ok_or_else(|| VmError::link(format!("{}: unknown class {class:?}", ctx())))?;
            let target = vm.resolve_virtual(cid, method).ok_or_else(|| {
                VmError::link(format!("{}: unknown method {class}.{method}", ctx()))
            })?;
            CompiledOp::CallStatic {
                mid: target,
                argc: *argc,
            }
        }
        Op::CallDirect {
            class,
            method,
            argc,
        } => {
            let cid = vm
                .class_id(class)
                .ok_or_else(|| VmError::link(format!("{}: unknown class {class:?}", ctx())))?;
            let target = vm.resolve_virtual(cid, method).ok_or_else(|| {
                VmError::link(format!("{}: unknown method {class}.{method}", ctx()))
            })?;
            CompiledOp::CallDirect {
                mid: target,
                argc: *argc,
            }
        }
        Op::NewArray => CompiledOp::NewArray,
        Op::ArrGet => CompiledOp::ArrGet,
        Op::ArrSet => CompiledOp::ArrSet,
        Op::ArrLen => CompiledOp::ArrLen,
        Op::NewBuffer => CompiledOp::NewBuffer,
        Op::BufGet => CompiledOp::BufGet,
        Op::BufSet => CompiledOp::BufSet,
        Op::BufLen => CompiledOp::BufLen,
        Op::Throw(class) => CompiledOp::Throw(Arc::from(class.as_str())),
        Op::Concat => CompiledOp::Concat,
        Op::ToStr => CompiledOp::ToStr,
        Op::ToInt => CompiledOp::ToInt,
        Op::ToFloat => CompiledOp::ToFloat,
        Op::Sys { name, argc } => {
            let sys = vm
                .sys_registry()
                .lookup(name)
                .ok_or_else(|| VmError::link(format!("{}: unknown sys op {name:?}", ctx())))?;
            CompiledOp::Sys { sys, argc: *argc }
        }
        Op::Nop => CompiledOp::Nop,
    })
}
