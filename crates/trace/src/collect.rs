//! The base-tier trace collector: span trees, critical paths, exports.

use crate::span::SpanRecord;
use pmp_telemetry::Fnv64;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default cap on retained spans.
pub const DEFAULT_COLLECT_CAP: usize = 4096;

/// Absorbs spans drained from every node cell at epoch barriers and
/// reconstructs them into per-trace trees. Storage is bounded: once
/// `cap` spans are retained, the oldest *trace* is evicted whole (a
/// partial tree is worse than no tree) and counted.
#[derive(Debug)]
pub struct Collector {
    cap: usize,
    /// trace id → spans in absorb order.
    traces: BTreeMap<u64, Vec<SpanRecord>>,
    /// trace ids in first-seen order, for whole-trace eviction.
    order: Vec<u64>,
    retained: usize,
    evicted_traces: u64,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new(DEFAULT_COLLECT_CAP)
    }
}

impl Collector {
    /// An empty collector retaining at most `cap` spans.
    #[must_use]
    pub fn new(cap: usize) -> Collector {
        Collector {
            cap: cap.max(1),
            traces: BTreeMap::new(),
            order: Vec::new(),
            retained: 0,
            evicted_traces: 0,
        }
    }

    /// Absorbs one barrier's worth of drained spans.
    pub fn absorb(&mut self, spans: Vec<SpanRecord>) {
        for s in spans {
            if !self.traces.contains_key(&s.trace_id) {
                self.order.push(s.trace_id);
            }
            self.traces.entry(s.trace_id).or_default().push(s);
            self.retained += 1;
        }
        while self.retained > self.cap && self.order.len() > 1 {
            let oldest = self.order.remove(0);
            if let Some(spans) = self.traces.remove(&oldest) {
                self.retained -= spans.len();
                self.evicted_traces += 1;
            }
        }
    }

    /// Retained span count (≤ cap unless a single trace overflows it).
    #[must_use]
    pub fn retained(&self) -> usize {
        self.retained
    }

    /// The retention cap.
    #[must_use]
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Whole traces evicted so far.
    #[must_use]
    pub fn evicted_traces(&self) -> u64 {
        self.evicted_traces
    }

    /// Ids of the retained traces, ascending.
    #[must_use]
    pub fn trace_ids(&self) -> Vec<u64> {
        self.traces.keys().copied().collect()
    }

    /// The spans of one trace, canonically ordered by
    /// `(start, span_id)`.
    #[must_use]
    pub fn spans_of(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut spans = self.traces.get(&trace_id).cloned().unwrap_or_default();
        spans.sort_by_key(|s| (s.start, s.span_id));
        spans
    }

    /// Renders one trace as an indented text tree. Children sort by
    /// `(start, span_id)`; each line shows the span, its node, its
    /// sim-time, and the latency since its parent (the hop cost).
    #[must_use]
    pub fn render_tree(&self, trace_id: u64) -> String {
        let spans = self.spans_of(trace_id);
        if spans.is_empty() {
            return format!("trace {trace_id:#x}: <no spans>\n");
        }
        let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        let mut by_id: BTreeMap<u64, &SpanRecord> = BTreeMap::new();
        for s in &spans {
            by_id.insert(s.span_id, s);
        }
        let mut roots: Vec<&SpanRecord> = Vec::new();
        for s in &spans {
            if s.parent_id != 0 && by_id.contains_key(&s.parent_id) {
                children.entry(s.parent_id).or_default().push(s);
            } else {
                roots.push(s);
            }
        }
        let mut out = format!("trace {trace_id:#x} ({} spans)\n", spans.len());
        fn walk(
            out: &mut String,
            s: &SpanRecord,
            parent_start: Option<u64>,
            depth: usize,
            children: &BTreeMap<u64, Vec<&SpanRecord>>,
        ) {
            let indent = "  ".repeat(depth);
            let hop = match parent_start {
                None => String::new(),
                Some(p) => format!(" (+{} us)", s.start.saturating_sub(p) / 1_000),
            };
            let _ = writeln!(
                out,
                "{indent}{} [n{}] @{} us{hop}{}{}",
                s.name,
                s.node,
                s.start / 1_000,
                if s.detail.is_empty() { "" } else { " " },
                s.detail
            );
            if let Some(kids) = children.get(&s.span_id) {
                for k in kids {
                    walk(out, k, Some(s.start), depth + 1, children);
                }
            }
        }
        for r in roots {
            walk(&mut out, r, None, 1, &children);
        }
        out
    }

    /// The critical path of one trace: the root-to-leaf chain ending at
    /// the latest-starting reachable span (ties broken by smaller span
    /// id). Returns the chain root-first.
    #[must_use]
    pub fn critical_path(&self, trace_id: u64) -> Vec<SpanRecord> {
        let spans = self.spans_of(trace_id);
        let by_id: BTreeMap<u64, &SpanRecord> =
            spans.iter().map(|s| (s.span_id, s)).collect();
        // The latest-starting span whose ancestry reaches a root.
        let mut best: Option<&SpanRecord> = None;
        for s in &spans {
            let better = match best {
                None => true,
                Some(b) => (s.start, std::cmp::Reverse(s.span_id))
                    > (b.start, std::cmp::Reverse(b.span_id)),
            };
            if better {
                best = Some(s);
            }
        }
        let mut chain = Vec::new();
        let mut cur = best;
        while let Some(s) = cur {
            chain.push(s.clone());
            cur = by_id.get(&s.parent_id).copied();
        }
        chain.reverse();
        chain
    }

    /// Renders the critical path as one line per hop with deltas.
    #[must_use]
    pub fn render_critical_path(&self, trace_id: u64) -> String {
        let chain = self.critical_path(trace_id);
        let mut out = format!("critical path of trace {trace_id:#x}:\n");
        let mut prev: Option<u64> = None;
        for s in &chain {
            let hop = match prev {
                None => String::new(),
                Some(p) => format!(" (+{} us)", s.start.saturating_sub(p) / 1_000),
            };
            let _ = writeln!(out, "  {} [n{}] @{} us{hop}", s.name, s.node, s.start / 1_000);
            prev = Some(s.start);
        }
        let total = chain
            .last()
            .map(|l| l.start.saturating_sub(chain[0].start))
            .unwrap_or(0);
        let _ = writeln!(out, "  total: {} us over {} spans", total / 1_000, chain.len());
        out
    }

    /// Every retained span as canonical JSON lines (traces ascending,
    /// spans by `(start, span_id)`): same state, same bytes.
    #[must_use]
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for id in self.trace_ids() {
            for s in self.spans_of(id) {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"span\",\"trace\":{},\"span\":{},\"parent\":{},\"node\":{},\"start\":{},\"end\":{},\"name\":\"{}\",\"detail\":\"{}\"}}",
                    s.trace_id,
                    s.span_id,
                    s.parent_id,
                    s.node,
                    s.start,
                    s.end,
                    pmp_telemetry::export::json_escape(&s.name),
                    pmp_telemetry::export::json_escape(&s.detail),
                );
            }
        }
        out
    }

    /// Stable FNV-1a digest over every retained span in canonical
    /// order, plus the eviction counter. Byte-identical traces ⇒ equal
    /// digests, and this is what the cross-driver chaos oracle pins.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.evicted_traces);
        for id in self.trace_ids() {
            for s in self.spans_of(id) {
                s.hash_into(&mut h);
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: u64, node: u32, start: u64, name: &str) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: id,
            parent_id: parent,
            node,
            start,
            end: start,
            name: name.into(),
            detail: String::new(),
        }
    }

    fn publish_chain() -> Vec<SpanRecord> {
        let t = (1u64 << 32) | 1;
        vec![
            span(t, t, 0, 1, 0, "midas.publish"),
            span(t, (1u64 << 32) | 2, t, 1, 0, "midas.sign"),
            span(t, (1u64 << 32) | 3, t, 1, 10_000, "midas.ship"),
            span(t, (3u64 << 32) | 1, (1u64 << 32) | 3, 3, 2_000_000, "midas.verify"),
            span(
                t,
                (3u64 << 32) | 2,
                (3u64 << 32) | 1,
                3,
                2_000_000,
                "midas.weave",
            ),
            span(
                t,
                (3u64 << 32) | 3,
                (3u64 << 32) | 2,
                3,
                5_000_000,
                "midas.intercept",
            ),
        ]
    }

    #[test]
    fn tree_renders_every_hop_in_order() {
        let mut c = Collector::default();
        c.absorb(publish_chain());
        let tree = c.render_tree((1u64 << 32) | 1);
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].contains("6 spans"));
        assert!(lines[1].contains("midas.publish"));
        assert!(tree.contains("midas.intercept"));
        let verify_idx = lines.iter().position(|l| l.contains("midas.verify")).unwrap();
        assert!(lines[verify_idx].contains("(+1990 us)"), "hop latency shown: {tree}");
    }

    #[test]
    fn critical_path_follows_the_adaptation_chain() {
        let mut c = Collector::default();
        c.absorb(publish_chain());
        let names: Vec<String> = c
            .critical_path((1u64 << 32) | 1)
            .into_iter()
            .map(|s| s.name)
            .collect();
        assert_eq!(
            names,
            vec!["midas.publish", "midas.ship", "midas.verify", "midas.weave", "midas.intercept"]
        );
        let render = c.render_critical_path((1u64 << 32) | 1);
        assert!(render.contains("total: 5000 us over 5 spans"), "{render}");
    }

    #[test]
    fn digest_ignores_absorb_order() {
        let mut a = Collector::default();
        let mut b = Collector::default();
        let chain = publish_chain();
        a.absorb(chain.clone());
        let mut rev = chain;
        rev.reverse();
        b.absorb(rev);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.to_json_lines(), b.to_json_lines());
    }

    #[test]
    fn eviction_drops_whole_oldest_traces() {
        let mut c = Collector::new(4);
        let t1 = (1u64 << 32) | 1;
        let t2 = (2u64 << 32) | 1;
        c.absorb(vec![
            span(t1, t1, 0, 1, 0, "a"),
            span(t1, (1u64 << 32) | 2, t1, 1, 1, "b"),
            span(t1, (1u64 << 32) | 3, t1, 1, 2, "c"),
        ]);
        c.absorb(vec![
            span(t2, t2, 0, 2, 5, "d"),
            span(t2, (2u64 << 32) | 2, t2, 2, 6, "e"),
        ]);
        assert_eq!(c.trace_ids(), vec![t2], "t1 evicted whole");
        assert_eq!(c.retained(), 2);
        assert_eq!(c.evicted_traces(), 1);
    }
}
