//! # pmp-net — a deterministic discrete-event wireless-network simulator
//!
//! The paper's platform ran on iPAQ PDAs and robots over a wireless LAN;
//! this crate replaces that testbed with a reproducible simulation:
//! nodes with positions and radio ranges, rectangular areas (the
//! production halls), waypoint mobility, a latency/jitter/loss link
//! model, partitions, and one-shot timers — all driven by a virtual
//! clock and a seeded RNG, so every run is exactly repeatable.
//!
//! Protocol logic (discovery, MIDAS) lives in higher crates: they send
//! messages and set timers here, and a driver loop steps the simulator
//! and dispatches each node's inbox.
//!
//! # Examples
//!
//! ```
//! use pmp_net::prelude::*;
//!
//! let mut sim = Simulator::new(1);
//! let hall = sim.add_area("hall-a", Position::new(0.0, 0.0), Position::new(50.0, 50.0));
//! let base = sim.add_node("base", Position::new(25.0, 25.0), 40.0);
//! let robot = sim.add_node("robot", Position::new(30.0, 25.0), 40.0);
//! assert_eq!(sim.node_area(robot), Some(hall));
//!
//! sim.send(base, robot, "midas", b"extension bytes".to_vec());
//! sim.run_for(10_000_000); // 10 ms
//! assert_eq!(sim.drain_inbox(robot).len(), 1);
//! ```

pub mod clock;
pub mod geo;
pub mod link;
pub mod node;
pub mod port;
pub mod rng;
pub mod sim;
pub mod trace;

pub use clock::{ClockHandle, SimTime};
pub use geo::{Area, AreaId, Position};
pub use link::LinkModel;
pub use node::{Incoming, NodeId, SimNode};
pub use port::{NetCmd, NetPort, PortBuf};
pub use rng::SimRng;
pub use sim::{Epoch, Simulator, TimedIncoming};
pub use trace::{NetStats, Trace, TraceEntry};

/// Common imports for simulator users.
pub mod prelude {
    pub use crate::clock::{ClockHandle, SimTime};
    pub use crate::geo::{Area, AreaId, Position};
    pub use crate::link::LinkModel;
    pub use crate::node::{Incoming, NodeId};
    pub use crate::port::{NetCmd, NetPort, PortBuf};
    pub use crate::sim::{Epoch, Simulator, TimedIncoming};
    pub use crate::trace::NetStats;
}
