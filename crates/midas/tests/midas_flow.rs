//! End-to-end MIDAS tests: a base station (registrar + extension base)
//! and a robot (VM + PROSE + adaptation service) over the simulated
//! wireless network — the paper's Fig. 2 lifecycle.

use pmp_crypto::{KeyPair, Principal};
use pmp_discovery::Registrar;
use pmp_midas::{
    AdaptationService, BaseEvent, ExtensionBase, ExtensionMeta, ExtensionPackage, ReceiverEvent,
    ReceiverPolicy, SignedExtension,
};
use pmp_net::prelude::*;
use pmp_prose::{Aspect, Crosscut, PortableAspect, PortableClass, PortableMethod, Prose};
use pmp_vm::builder::MethodBuilder;
use pmp_vm::prelude::*;

// ---------------------------------------------------------------------
// Extension fixtures
// ---------------------------------------------------------------------

fn any5() -> Vec<String> {
    vec!["any".into(), "str".into(), "any".into(), "any".into(), "any".into()]
}

/// A monitoring script aspect counting Motor calls and printing them.
fn monitoring_aspect(class_name: &str) -> PortableAspect {
    let mut body = MethodBuilder::new();
    body.op(Op::Load(2));
    body.op(Op::Sys {
        name: "print".into(),
        argc: 1,
    });
    body.op(Op::Pop).op(Op::Ret);
    let class = PortableClass {
        name: class_name.into(),
        fields: vec![],
        methods: vec![PortableMethod {
            name: "onCall".into(),
            params: any5(),
            ret: "any".into(),
            body: body.build(),
        }],
    };
    let aspect = Aspect::script(
        "monitoring",
        class,
        vec![(
            Crosscut::parse("before * Motor.*(..)").unwrap(),
            "onCall".into(),
            0,
        )],
    );
    PortableAspect::try_from(&aspect).unwrap()
}

fn package(
    id: &str,
    version: u32,
    requires: Vec<String>,
    implicit: bool,
    aspect: PortableAspect,
) -> ExtensionPackage {
    ExtensionPackage {
        meta: ExtensionMeta {
            id: id.into(),
            version,
            description: format!("{id} extension"),
            requires,
            permissions: vec!["print".into()],
            implicit,
        },
        aspect,
    }
}

fn noop_aspect(aspect_name: &str, class_name: &str) -> PortableAspect {
    let mut body = MethodBuilder::new();
    body.op(Op::Ret);
    let class = PortableClass {
        name: class_name.into(),
        fields: vec![],
        methods: vec![PortableMethod {
            name: "onCall".into(),
            params: any5(),
            ret: "any".into(),
            body: body.build(),
        }],
    };
    let aspect = Aspect::script(
        aspect_name,
        class,
        vec![(
            Crosscut::parse("before * Motor.*(..)").unwrap(),
            "onCall".into(),
            0,
        )],
    );
    PortableAspect::try_from(&aspect).unwrap()
}

// ---------------------------------------------------------------------
// World driver
// ---------------------------------------------------------------------

struct World {
    sim: Simulator,
    // base station
    base_node: NodeId,
    registrar: Registrar,
    base: ExtensionBase,
    base_events: Vec<BaseEvent>,
    // robot
    robot_node: NodeId,
    vm: Vm,
    prose: Prose,
    receiver: AdaptationService,
    receiver_events: Vec<ReceiverEvent>,
    // credentials
    authority: KeyPair,
}

fn robot_vm() -> (Vm, Prose) {
    let mut vm = Vm::new(VmConfig::default());
    vm.register_class(
        ClassDef::build("Motor")
            .field("position", TypeSig::Int)
            .method("rotate", [TypeSig::Int], TypeSig::Void, |b| {
                b.op(Op::Ret);
            })
            .method("stop", [], TypeSig::Void, |b| {
                b.op(Op::Ret);
            })
            .done(),
    )
    .unwrap();
    let prose = Prose::attach(&mut vm);
    (vm, prose)
}

fn world() -> World {
    let mut sim = Simulator::new(77);
    sim.add_area("hall-a", Position::new(0.0, 0.0), Position::new(50.0, 50.0));
    let base_node = sim.add_node("base:hall-a", Position::new(25.0, 25.0), 60.0);
    let robot_node = sim.add_node("robot:1:1", Position::new(30.0, 25.0), 60.0);

    let mut registrar = Registrar::new(base_node, "lookup:hall-a");
    registrar.start(&mut sim);
    let mut base = ExtensionBase::new(base_node, base_node);
    base.start(&mut sim);

    let authority = KeyPair::from_seed(b"authority:hall-a");
    let mut policy = ReceiverPolicy::new();
    policy
        .trust
        .add(Principal::new("authority:hall-a", authority.public_key()));
    policy.set_signer_cap(
        "authority:hall-a",
        Permissions::none().with(Permission::Print).with(Permission::Net),
    );

    let (vm, prose) = robot_vm();
    let mut receiver = AdaptationService::new(robot_node, "robot:1:1", policy);
    receiver.start(&mut sim);

    World {
        sim,
        base_node,
        registrar,
        base,
        base_events: Vec::new(),
        robot_node,
        vm,
        prose,
        receiver,
        receiver_events: Vec::new(),
        authority,
    }
}

impl World {
    fn seal(&self, pkg: &ExtensionPackage) -> SignedExtension {
        SignedExtension::seal("authority:hall-a", &self.authority, pkg)
    }

    /// Pumps the simulation for `ns`, dispatching all inboxes.
    fn pump(&mut self, ns: u64) {
        let until = self.sim.now().plus(ns);
        loop {
            match self.sim.peek_next() {
                Some(t) if t <= until => {
                    self.sim.step();
                }
                _ => break,
            }
            for inc in self.sim.drain_inbox(self.base_node) {
                self.registrar.handle(&mut self.sim, &inc);
                self.base_events
                    .extend(self.base.handle(&mut self.sim, &inc));
            }
            for inc in self.sim.drain_inbox(self.robot_node) {
                self.receiver_events.extend(self.receiver.handle(
                    &mut self.sim,
                    &mut self.vm,
                    &self.prose,
                    &inc,
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[test]
fn robot_entering_hall_gets_adapted() {
    let mut w = world();
    let pkg = package("hall-a/monitoring", 1, vec![], false, monitoring_aspect("Mon1"));
    let sealed = w.seal(&pkg);
    w.base.catalog.put(sealed);

    w.pump(5_000_000_000);

    assert!(w.receiver.is_installed("hall-a/monitoring"));
    assert!(w
        .receiver_events
        .iter()
        .any(|e| matches!(e, ReceiverEvent::Installed { ext_id, .. } if ext_id == "hall-a/monitoring")));
    assert!(w
        .base_events
        .iter()
        .any(|e| matches!(e, BaseEvent::NodeDiscovered { node_name, delivered }
            if node_name == "robot:1:1" && *delivered == 1)));
    assert!(w
        .base_events
        .iter()
        .any(|e| matches!(e, BaseEvent::InstallAck { ok: true, .. })));

    // The woven extension actually intercepts the application.
    let motor = w.vm.new_object("Motor").unwrap();
    w.vm
        .call("Motor", "rotate", motor, vec![Value::Int(30)])
        .unwrap();
    assert_eq!(w.vm.take_output(), vec!["Motor.rotate".to_string()]);
}

#[test]
fn extensions_revoked_when_robot_leaves() {
    let mut w = world();
    w.base.set_lease(2_000_000_000);
    let pkg = package("hall-a/monitoring", 1, vec![], false, monitoring_aspect("Mon1"));
    let sealed = w.seal(&pkg);
    w.base.catalog.put(sealed);
    w.pump(5_000_000_000);
    assert!(w.receiver.is_installed("hall-a/monitoring"));

    // The robot drives away; renewals stop; the lease lapses.
    w.sim.move_node(w.robot_node, Position::new(500.0, 500.0));
    w.pump(10_000_000_000);

    assert!(!w.receiver.is_installed("hall-a/monitoring"));
    assert!(w.receiver_events.iter().any(|e| matches!(
        e,
        ReceiverEvent::Removed { reason, .. } if reason.contains("lease expired")
    )));
    assert!(w
        .base_events
        .iter()
        .any(|e| matches!(e, BaseEvent::NodeDeparted { node_name } if node_name == "robot:1:1")));
    // Interception is gone.
    let motor = w.vm.new_object("Motor").unwrap();
    w.vm
        .call("Motor", "rotate", motor, vec![Value::Int(5)])
        .unwrap();
    assert!(w.vm.take_output().is_empty());
}

#[test]
fn untrusted_base_is_rejected() {
    let mut w = world();
    let pkg = package("evil/monitoring", 1, vec![], false, monitoring_aspect("Evil1"));
    // Signed by an unknown key claiming an untrusted name.
    let mallory = KeyPair::from_seed(b"mallory");
    let sealed = SignedExtension::seal("mallory", &mallory, &pkg);
    w.base.catalog.put(sealed);

    w.pump(5_000_000_000);

    assert!(!w.receiver.is_installed("evil/monitoring"));
    assert!(w.receiver_events.iter().any(|e| matches!(
        e,
        ReceiverEvent::Rejected { reason, .. } if reason.contains("not trusted")
    )));
    assert!(w
        .base_events
        .iter()
        .any(|e| matches!(e, BaseEvent::InstallAck { ok: false, .. })));
}

#[test]
fn forged_signature_is_rejected() {
    let mut w = world();
    let pkg = package("hall-a/monitoring", 1, vec![], false, monitoring_aspect("Mon1"));
    // Mallory claims the trusted name but signs with her own key.
    let mallory = KeyPair::from_seed(b"mallory");
    let sealed = SignedExtension::seal("authority:hall-a", &mallory, &pkg);
    w.base.catalog.put(sealed);

    w.pump(5_000_000_000);

    assert!(!w.receiver.is_installed("hall-a/monitoring"));
    assert!(w.receiver_events.iter().any(|e| matches!(
        e,
        ReceiverEvent::Rejected { reason, .. } if reason.contains("signature")
    )));
}

#[test]
fn implicit_dependencies_install_first_and_cascade_out() {
    let mut w = world();
    let session = package(
        "hall-a/session",
        1,
        vec![],
        true, // implicit
        noop_aspect("session", "Session1"),
    );
    let access = package(
        "hall-a/access-control",
        1,
        vec!["hall-a/session".into()],
        false,
        noop_aspect("access-control", "Access1"),
    );
    let s1 = w.seal(&session);
    let s2 = w.seal(&access);
    w.base.catalog.put(s1);
    w.base.catalog.put(s2);

    w.pump(5_000_000_000);

    assert!(w.receiver.is_installed("hall-a/session"));
    assert!(w.receiver.is_installed("hall-a/access-control"));

    // Installation order: session (dependency) before access control.
    let installs: Vec<&String> = w
        .receiver_events
        .iter()
        .filter_map(|e| match e {
            ReceiverEvent::Installed { ext_id, .. } => Some(ext_id),
            _ => None,
        })
        .collect();
    let pos = |id: &str| installs.iter().position(|x| *x == id).unwrap();
    assert!(pos("hall-a/session") < pos("hall-a/access-control"));

    // Revoking the dependent also removes the now-unused implicit dep.
    w.base
        .revoke_extension(&mut w.sim, "hall-a/access-control", "policy change");
    w.pump(2_000_000_000);
    assert!(!w.receiver.is_installed("hall-a/access-control"));
    assert!(
        !w.receiver.is_installed("hall-a/session"),
        "implicit dependency removed with its last dependent"
    );
}

#[test]
fn policy_update_replaces_extension_on_live_nodes() {
    let mut w = world();
    let v1 = package("hall-a/policy", 1, vec![], false, monitoring_aspect("Policy_v1"));
    let s1 = w.seal(&v1);
    w.base.catalog.put(s1);
    w.pump(5_000_000_000);
    assert!(w.receiver.is_installed("hall-a/policy"));

    // The hall's policy evolves: v2 replaces v1 on the live robot.
    let v2 = package("hall-a/policy", 2, vec![], false, noop_aspect("policy", "Policy_v2"));
    let s2 = w.seal(&v2);
    w.base.update_extension(&mut w.sim, s2);
    w.pump(3_000_000_000);

    assert!(w.receiver.is_installed("hall-a/policy"));
    assert!(w.receiver_events.iter().any(|e| matches!(
        e,
        ReceiverEvent::Removed { reason, .. } if reason.contains("replaced")
    )));
    assert!(w.receiver_events.iter().any(|e| matches!(
        e,
        ReceiverEvent::Installed { ext_id, version, .. }
            if ext_id == "hall-a/policy" && *version == 2
    )));
    // v2 is a no-op monitor: no more prints.
    let motor = w.vm.new_object("Motor").unwrap();
    w.vm
        .call("Motor", "rotate", motor, vec![Value::Int(1)])
        .unwrap();
    assert!(w.vm.take_output().is_empty());
}

#[test]
fn version_downgrade_refused() {
    let mut w = world();
    let v2 = package("hall-a/policy", 2, vec![], false, noop_aspect("policy", "PolicyB_v2"));
    let s2 = w.seal(&v2);
    w.base.catalog.put(s2);
    w.pump(5_000_000_000);
    assert!(w.receiver.is_installed("hall-a/policy"));

    // A stale v1 delivery must be refused (delivered directly, bypassing
    // the catalog's own downgrade check).
    let v1 = package("hall-a/policy", 1, vec![], false, noop_aspect("policy", "PolicyB_v1"));
    let s1 = w.seal(&v1);
    let msg = pmp_midas::MidasMsg::Deliver {
        ext: s1,
        lease_ns: 4_000_000_000,
        grant: 999,
    };
    w.sim.send(
        w.base_node,
        w.robot_node,
        pmp_midas::CHANNEL,
        pmp_trace::TraceCtx::NIL.wrap(&msg),
    );
    w.pump(2_000_000_000);
    assert!(w.receiver_events.iter().any(|e| matches!(
        e,
        ReceiverEvent::Rejected { reason, .. } if reason.contains("downgrade")
    )));
}

#[test]
fn leases_keep_extensions_alive_while_present() {
    let mut w = world();
    w.base.set_lease(1_500_000_000); // 1.5 s lease, run 12 s
    let pkg = package("hall-a/monitoring", 1, vec![], false, monitoring_aspect("MonL"));
    let sealed = w.seal(&pkg);
    w.base.catalog.put(sealed);
    w.pump(12_000_000_000);
    assert!(
        w.receiver.is_installed("hall-a/monitoring"),
        "base renewals kept the extension alive across 8 lease periods"
    );
}

#[test]
fn roaming_handoff_reaches_neighbour_base() {
    let mut w = world();
    // A second base in range (simplified: same radio neighbourhood).
    let base_b = w.sim.add_node("base:hall-b", Position::new(45.0, 25.0), 60.0);
    let mut nb_base = ExtensionBase::new(base_b, base_b);
    w.base.add_neighbor(base_b);

    let pkg = package("hall-a/monitoring", 1, vec![], false, monitoring_aspect("MonR"));
    let sealed = w.seal(&pkg);
    w.base.catalog.put(sealed);
    w.pump(5_000_000_000);
    assert!(w.receiver.is_installed("hall-a/monitoring"));

    // Robot leaves hall A.
    w.sim.move_node(w.robot_node, Position::new(500.0, 500.0));
    // Pump and let the neighbour base drain its inbox.
    let mut handoffs = Vec::new();
    let until = w.sim.now().plus(10_000_000_000);
    loop {
        match w.sim.peek_next() {
            Some(t) if t <= until => {
                w.sim.step();
            }
            _ => break,
        }
        for inc in w.sim.drain_inbox(w.base_node) {
            w.registrar.handle(&mut w.sim, &inc);
            w.base_events.extend(w.base.handle(&mut w.sim, &inc));
        }
        for inc in w.sim.drain_inbox(base_b) {
            handoffs.extend(nb_base.handle(&mut w.sim, &inc));
        }
        for inc in w.sim.drain_inbox(w.robot_node) {
            w.receiver_events.extend(w.receiver.handle(
                &mut w.sim,
                &mut w.vm,
                &w.prose,
                &inc,
            ));
        }
    }
    assert!(handoffs.iter().any(|e| matches!(
        e,
        BaseEvent::HandoffReceived { node_name, ext_ids }
            if node_name == "robot:1:1" && ext_ids.contains(&"hall-a/monitoring".to_string())
    )));
    assert!(nb_base.roaming_cache.contains_key("robot:1:1"));
}

/// The full roaming algorithm: a robot adapted in hall A drives into
/// hall B. Hall B holds the handoff record (grants + packages), so when
/// the robot registers there its lease is *migrated* — one
/// `GrantTransfer`, zero re-`Deliver` messages for the roamed set — and
/// only hall B's own catalog entry is delivered on top.
#[test]
fn roaming_migration_rebinds_grants_without_redelivery() {
    let mut w = world();
    w.base.set_lease(20_000_000_000); // survive the transit
    let base_b = w.sim.add_node("base:hall-b", Position::new(500.0, 25.0), 60.0);
    // The halls are far apart; the handoff rides the wired backhaul.
    w.sim.add_wired_link(w.base_node, base_b);
    let mut reg_b = Registrar::new(base_b, "lookup:hall-b");
    reg_b.start(&mut w.sim);
    let mut nb_base = ExtensionBase::new(base_b, base_b);
    nb_base.start(&mut w.sim);
    w.base.add_neighbor(base_b);
    // Federated halls (one administrative domain): hall B adopts hall
    // A's foreign grants instead of letting their leases lapse.
    w.base.add_replica(base_b);
    nb_base.add_replica(w.base_node);

    let pkg = package("hall-a/monitoring", 1, vec![], false, monitoring_aspect("MonM"));
    let sealed = w.seal(&pkg);
    w.base.catalog.put(sealed);
    // Hall B distributes its own policy on top.
    let local = package("hall-b/local", 1, vec![], false, noop_aspect("local", "LocB"));
    let sealed_local = w.seal(&local);
    nb_base.catalog.put(sealed_local);

    w.pump(5_000_000_000);
    assert!(w.receiver.is_installed("hall-a/monitoring"));

    // Drive out of hall A through the uncovered corridor: hall A
    // detects the departure and hands the robot's state to hall B
    // before the robot gets there.
    w.sim.move_node(w.robot_node, Position::new(250.0, 500.0));
    let mut nb_events = Vec::new();
    let mut arrived = false;
    let until = w.sim.now().plus(18_000_000_000);
    loop {
        match w.sim.peek_next() {
            Some(t) if t <= until => {
                w.sim.step();
            }
            _ => break,
        }
        for inc in w.sim.drain_inbox(w.base_node) {
            w.registrar.handle(&mut w.sim, &inc);
            w.base_events.extend(w.base.handle(&mut w.sim, &inc));
        }
        for inc in w.sim.drain_inbox(base_b) {
            reg_b.handle(&mut w.sim, &inc);
            nb_events.extend(nb_base.handle(&mut w.sim, &inc));
        }
        for inc in w.sim.drain_inbox(w.robot_node) {
            w.receiver_events.extend(w.receiver.handle(
                &mut w.sim,
                &mut w.vm,
                &w.prose,
                &inc,
            ));
        }
        // Once hall B holds the handoff record, the robot arrives.
        if !arrived && nb_base.roaming_cache.contains_key("robot:1:1") {
            arrived = true;
            w.sim.move_node(w.robot_node, Position::new(505.0, 25.0));
        }
    }
    assert!(arrived, "hall B received the handoff record");

    // The lease moved: the handoff record was adopted (grants rebound
    // in place), not redelivered.
    assert!(nb_events.iter().any(|e| matches!(
        e,
        BaseEvent::NodeMigrated { node_name, rebound, .. }
            if node_name == "robot:1:1" && *rebound >= 1
    )));
    assert!(w.receiver_events.iter().any(|e| matches!(
        e,
        ReceiverEvent::Rebound { base, ext_ids }
            if *base == base_b && ext_ids.contains(&"hall-a/monitoring".to_string())
    )));
    // The roamed extension was installed exactly once (in hall A) and
    // never removed: zero re-`Deliver` for the roamed set.
    let installs = w
        .receiver_events
        .iter()
        .filter(|e| matches!(e, ReceiverEvent::Installed { ext_id, .. } if ext_id == "hall-a/monitoring"))
        .count();
    assert_eq!(installs, 1, "migration must not re-deliver");
    assert!(!w.receiver_events.iter().any(|e| matches!(
        e,
        ReceiverEvent::Removed { ext_id, .. } if ext_id == "hall-a/monitoring"
    )));
    assert!(w.receiver.is_installed("hall-a/monitoring"));
    assert_eq!(
        w.receiver.lease_holder("hall-a/monitoring"),
        Some(base_b),
        "the lease now belongs to hall B"
    );
    // Hall B's own policy arrived the normal way.
    assert!(w.receiver.is_installed("hall-b/local"));
    // The roam record was consumed by the adoption.
    assert!(!nb_base.roaming_cache.contains_key("robot:1:1"));

    // Hall B keeps the migrated lease alive.
    let deadline_before = w
        .receiver
        .lease_deadlines()
        .iter()
        .find(|(id, _)| id == "hall-a/monitoring")
        .map(|(_, d)| *d)
        .unwrap();
    let mut renew_until = w.sim.now().plus(6_000_000_000);
    loop {
        match w.sim.peek_next() {
            Some(t) if t <= renew_until => {
                w.sim.step();
            }
            _ => break,
        }
        for inc in w.sim.drain_inbox(base_b) {
            reg_b.handle(&mut w.sim, &inc);
            nb_base.handle(&mut w.sim, &inc);
        }
        for inc in w.sim.drain_inbox(w.robot_node) {
            w.receiver.handle(&mut w.sim, &mut w.vm, &w.prose, &inc);
        }
    }
    renew_until = w.sim.now();
    let _ = renew_until;
    let deadline_after = w
        .receiver
        .lease_deadlines()
        .iter()
        .find(|(id, _)| id == "hall-a/monitoring")
        .map(|(_, d)| *d)
        .unwrap();
    assert!(
        deadline_after > deadline_before,
        "hall B renews the migrated grant"
    );
    assert!(w.receiver.is_installed("hall-a/monitoring"));
}

#[test]
fn reentering_hall_readapts() {
    let mut w = world();
    let pkg = package("hall-a/monitoring", 1, vec![], false, monitoring_aspect("MonRe"));
    let sealed = w.seal(&pkg);
    w.base.catalog.put(sealed);
    w.pump(5_000_000_000);
    assert!(w.receiver.is_installed("hall-a/monitoring"));

    w.sim.move_node(w.robot_node, Position::new(500.0, 500.0));
    w.pump(10_000_000_000);
    assert!(!w.receiver.is_installed("hall-a/monitoring"));

    w.sim.move_node(w.robot_node, Position::new(30.0, 25.0));
    w.pump(8_000_000_000);
    assert!(
        w.receiver.is_installed("hall-a/monitoring"),
        "re-entry re-adapts the robot"
    );
}

#[test]
fn missing_dependency_is_requested_and_resolved() {
    let mut w = world();
    let session = package(
        "hall-a/session",
        1,
        vec![],
        true,
        noop_aspect("session", "SessionD1"),
    );
    let access = package(
        "hall-a/access-control",
        1,
        vec!["hall-a/session".into()],
        false,
        noop_aspect("access-control", "AccessD1"),
    );
    let s_session = w.seal(&session);
    let s_access = w.seal(&access);
    // Catalog the dependency so the base can serve RequestDep...
    w.base.catalog.put(s_session);
    w.pump(3_000_000_000);

    // ...but deliver ONLY the dependent directly, out of order.
    let msg = pmp_midas::MidasMsg::Deliver {
        ext: s_access,
        lease_ns: 8_000_000_000,
        grant: 777,
    };
    w.sim.send(
        w.base_node,
        w.robot_node,
        pmp_midas::CHANNEL,
        pmp_trace::TraceCtx::NIL.wrap(&msg),
    );
    w.pump(4_000_000_000);

    // The receiver requested the dependency, the base served it, and
    // both ended up installed — dependency first.
    assert!(w
        .receiver_events
        .iter()
        .any(|e| matches!(e, ReceiverEvent::DependencyRequested { ext_id }
            if ext_id == "hall-a/session")));
    assert!(w.receiver.is_installed("hall-a/session"));
    assert!(w.receiver.is_installed("hall-a/access-control"));
    let installs: Vec<&String> = w
        .receiver_events
        .iter()
        .filter_map(|e| match e {
            ReceiverEvent::Installed { ext_id, .. } => Some(ext_id),
            _ => None,
        })
        .collect();
    let pos = |id: &str| installs.iter().position(|x| *x == id).unwrap();
    assert!(pos("hall-a/session") < pos("hall-a/access-control"));
}

/// Catalog anti-entropy and lease-table sync between replica bases:
/// hall A's catalog entry reaches hall B via digest → pull → push, and
/// hall B shadows hall A's lease table so it could adopt hall A's
/// robots without redelivery.
#[test]
fn replicas_converge_catalogs_and_shadow_lease_tables() {
    let mut w = world();
    let base_b = w.sim.add_node("base:hall-b", Position::new(500.0, 25.0), 60.0);
    w.sim.add_wired_link(w.base_node, base_b);
    let mut nb_base = ExtensionBase::new(base_b, base_b);
    nb_base.start(&mut w.sim);
    w.base.add_replica(base_b);
    nb_base.add_replica(w.base_node);

    let pkg = package("hall-a/monitoring", 1, vec![], false, monitoring_aspect("MonAE"));
    let sealed = w.seal(&pkg);
    w.base.catalog.put(sealed);

    let until = w.sim.now().plus(6_000_000_000);
    loop {
        match w.sim.peek_next() {
            Some(t) if t <= until => {
                w.sim.step();
            }
            _ => break,
        }
        for inc in w.sim.drain_inbox(w.base_node) {
            w.registrar.handle(&mut w.sim, &inc);
            w.base_events.extend(w.base.handle(&mut w.sim, &inc));
        }
        for inc in w.sim.drain_inbox(base_b) {
            nb_base.handle(&mut w.sim, &inc);
        }
        for inc in w.sim.drain_inbox(w.robot_node) {
            w.receiver_events.extend(w.receiver.handle(
                &mut w.sim,
                &mut w.vm,
                &w.prose,
                &inc,
            ));
        }
    }

    // Anti-entropy replicated the catalog entry.
    assert_eq!(nb_base.catalog.ids(), ["hall-a/monitoring"]);
    assert_eq!(nb_base.catalog_digest(), w.base.catalog_digest());
    // The lease table was shadowed: hall B can adopt robot:1:1 with
    // the exact grants hall A issued.
    let shadow = nb_base
        .roaming_cache
        .get("robot:1:1")
        .expect("lease sync shadowed the adapted robot");
    assert_eq!(shadow.from, w.base_node.0);
    assert_eq!(
        shadow.grants.iter().map(|(k, v)| (k.clone(), *v)).collect::<Vec<_>>(),
        w.receiver.grants(),
        "shadow grants match the robot's live grants"
    );
}

/// The roaming table is bounded: at capacity the oldest record is
/// evicted FIFO, so a base flooded with handoffs cannot grow without
/// limit (the unbounded `roaming_cache` this replaces).
#[test]
fn roaming_cache_is_bounded_with_fifo_eviction() {
    let mut w = world();
    w.base.set_roam_cap(2);
    let peer = w.sim.add_node("base:peer", Position::new(20.0, 25.0), 60.0);
    for i in 0..3 {
        let mut grants = std::collections::BTreeMap::new();
        grants.insert("hall-x/mon".to_string(), 10 + i);
        let msg = pmp_midas::MidasMsg::HandoffState {
            node_name: format!("wanderer:{i}"),
            grants,
            exts: vec![],
        };
        w.sim.send(
            peer,
            w.base_node,
            pmp_midas::CHANNEL,
            pmp_trace::TraceCtx::NIL.wrap(&msg),
        );
        w.pump(100_000_000);
    }
    assert_eq!(w.base.roaming_cache.len(), 2, "capped at 2");
    assert!(
        !w.base.roaming_cache.contains_key("wanderer:0"),
        "oldest record evicted first"
    );
    assert!(w.base.roaming_cache.contains_key("wanderer:1"));
    assert!(w.base.roaming_cache.contains_key("wanderer:2"));
}
