//! Receiver-side security policy: which signers are trusted and how
//! many permissions each may grant its extensions.

use pmp_analyze::Severity;
use pmp_crypto::TrustStore;
use pmp_vm::perm::Permissions;
use std::collections::HashMap;

/// How the receiver runs the static-analysis admission gate
/// (`pmp-analyze`) on verified packages, before weaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisPolicy {
    /// Run the gate at all. Off reproduces the paper's behaviour:
    /// cryptographic trust plus the run-time sandbox, nothing static.
    pub enabled: bool,
    /// Findings at or above this severity reject the package. The
    /// default (`Error`) rejects malformed bytecode and undeclared
    /// permissions while letting lints (unknown sys ops, fuel-bounded
    /// loops) through; lower it to `Warning` for paranoid nodes.
    pub reject_at: Severity,
    /// Treat post-weave aspect interference (shared field writes,
    /// equal-priority ordering) as fatal: the newcomer is unwoven
    /// again and nacked. Off by default — interference is usually a
    /// lint, not an attack.
    pub reject_on_interference: bool,
}

impl Default for AnalysisPolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            reject_at: Severity::Error,
            reject_on_interference: false,
        }
    }
}

/// A receiver's policy: trust store plus per-signer permission caps.
/// The effective permissions of an installed extension are
/// `requested ∩ cap(signer)`.
#[derive(Debug, Clone, Default)]
pub struct ReceiverPolicy {
    /// Who may sign extensions for this node.
    pub trust: TrustStore,
    /// The static-analysis admission gate.
    pub analysis: AnalysisPolicy,
    default_cap: Permissions,
    per_signer: HashMap<String, Permissions>,
}

impl ReceiverPolicy {
    /// A policy trusting no one, granting nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the cap applied to signers without an explicit entry.
    pub fn set_default_cap(&mut self, cap: Permissions) {
        self.default_cap = cap;
    }

    /// Sets the cap for one signer.
    pub fn set_signer_cap(&mut self, signer: impl Into<String>, cap: Permissions) {
        self.per_signer.insert(signer.into(), cap);
    }

    /// The cap for `signer`.
    pub fn cap_for(&self, signer: &str) -> Permissions {
        self.per_signer
            .get(signer)
            .copied()
            .unwrap_or(self.default_cap)
    }

    /// Effective permissions for a package: requested ∩ cap.
    pub fn effective(&self, signer: &str, requested: &[String]) -> Permissions {
        let requested = Permissions::from_names(requested.iter().map(String::as_str));
        requested.intersect(self.cap_for(signer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_vm::perm::Permission;

    #[test]
    fn caps_apply_per_signer() {
        let mut p = ReceiverPolicy::new();
        p.set_default_cap(Permissions::none().with(Permission::Print));
        p.set_signer_cap(
            "hall-a",
            Permissions::none().with(Permission::Net).with(Permission::Store),
        );

        // Known signer: capped to its entry.
        let eff = p.effective("hall-a", &["net".into(), "device".into()]);
        assert!(eff.allows(Permission::Net));
        assert!(!eff.allows(Permission::Device));

        // Unknown signer: default cap.
        let eff = p.effective("other", &["net".into(), "print".into()]);
        assert!(!eff.allows(Permission::Net));
        assert!(eff.allows(Permission::Print));
    }

    #[test]
    fn analysis_gate_defaults_to_rejecting_errors_only() {
        let p = ReceiverPolicy::new();
        assert!(p.analysis.enabled);
        assert_eq!(p.analysis.reject_at, Severity::Error);
        assert!(!p.analysis.reject_on_interference);
    }

    #[test]
    fn empty_policy_grants_nothing() {
        let p = ReceiverPolicy::new();
        let eff = p.effective("anyone", &["print".into(), "net".into()]);
        assert_eq!(eff, Permissions::none());
    }
}
